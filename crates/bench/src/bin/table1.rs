//! Table 1: real-world graph datasets used in the experiments.
//!
//! Prints the same columns as the paper — name, description, nodes, edges,
//! largest SCC size, (sampled) diameter — for the nine dataset analogs.
//! The `*` convention (randomly oriented undirected originals) is carried
//! over in the descriptions.

use swscc_bench::{print_header, scale};
use swscc_core::{detect_scc, Algorithm, SccConfig};
use swscc_graph::datasets::Dataset;
use swscc_graph::stats::estimate_diameter;

fn main() {
    print_header("Table 1: dataset analogs");
    println!(
        "{:<9} {:<50} {:>10} {:>12} {:>12} {:>9}",
        "Name", "Description", "# Nodes", "# Edges", "Largest SCC", "Diameter"
    );
    for d in Dataset::all() {
        let g = d.load(scale(), 42);
        let (scc, _) = detect_scc(&g, Algorithm::Tarjan, &SccConfig::default());
        let diam = estimate_diameter(&g, 16, 1);
        println!(
            "{:<9} {:<50} {:>10} {:>12} {:>12} {:>9}",
            d.name(),
            d.description(),
            g.num_nodes(),
            g.num_edges(),
            scc.largest_component_size(),
            diam
        );
    }
    println!();
    println!("paper Table 1 giant-SCC fractions for comparison:");
    for d in Dataset::all() {
        println!("  {:<9} {:.2}", d.name(), d.table1_giant_frac());
    }
}
