//! The Coloring (max-label propagation) SCC algorithm — a related-work
//! comparator.
//!
//! Orzan's coloring heuristic (2004) is the other classic
//! distributed/parallel SCC family next to FW-BW; the comparisons the
//! paper cites (\[8\], \[9\]) and its follow-on work (Slota et al.'s
//! Multistep) evaluate against it. One round:
//!
//! 1. every alive node starts with `color = own id`;
//! 2. colors propagate **forward** to a fixpoint, taking the max
//!    (`label(v) = max(label(v), label(u))` over alive in-neighbors `u`);
//!    afterwards each label class is exactly the forward-reachable region
//!    of its *root* (the node whose id equals the label) minus regions of
//!    larger-id roots;
//! 3. for each root `r`, the SCC of `r` is the *backward*-reachable set of
//!    `r` within its label class (Lemma 1 specialized: the class is a
//!    subset of FW(r));
//! 4. detected SCCs are removed; repeat on the residue.
//!
//! Strengths: massively parallel steps, many SCCs per round (one per
//! root). Weakness (why FW-BW-Trim beats it on small-world graphs): the
//! giant SCC's max-id member floods nearly the whole graph each round, so
//! label propagation costs O(diameter · M) per round and small SCCs
//! hidden "behind" the giant one only appear in later rounds.

use crate::config::SccConfig;
use crate::driver;
use crate::error::{RunGuard, SccError};
use crate::instrument::{Collector, Phase, RunReport};
use crate::result::SccResult;
use crate::state::AlgoState;
use crate::trim::par_trim;
use rayon::prelude::*;
use std::sync::Arc;
use swscc_graph::{CsrGraph, NodeId};
use swscc_parallel::pool::with_pool;
use swscc_sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};

/// Runs the Coloring algorithm (legacy entry point; see
/// [`coloring_scc_checked`] for the cancellable form).
pub fn coloring_scc(g: &CsrGraph, cfg: &SccConfig) -> (SccResult, RunReport) {
    coloring_scc_checked(g, cfg, &RunGuard::new())
        .expect("coloring run with a fresh guard cannot abort")
}

/// Runs the Coloring algorithm (with an initial Par-Trim round, as every
/// practical implementation does) under `guard`: cancellable,
/// deadline-aware, and panic-isolating. Statistics land in the usual
/// [`RunReport`]: label-propagation work is attributed to `ParFwbw` (it
/// plays the same "find SCC seeds by reachability" role) and the
/// backward-collection to `RecurFwbw`.
pub fn coloring_scc_checked(
    g: &CsrGraph,
    cfg: &SccConfig,
    guard: &RunGuard,
) -> Result<(SccResult, RunReport), SccError> {
    with_pool(cfg.threads, || {
        let state =
            AlgoState::with_interrupt(g, Arc::clone(guard.interrupt()), cfg.watchdog_factor);
        let collector = Collector::new(cfg.task_log_limit);

        // The whole parallel body runs under panic capture: Coloring has
        // no task queue, so any panic is dirty (a partial backward
        // collection can split an SCC) and recovery is a full restart.
        let body = driver::catch_phase(|| coloring_body(g, cfg, &state, &collector));
        let rounds = match body {
            Ok(rounds) => rounds,
            Err(message) => return driver::recover_full_restart(g, collector, cfg, message),
        };
        driver::check_interrupt(&state)?;

        let mut report = collector.into_report(Default::default(), rounds);
        // Reuse `fwbw_trials` to surface the round count.
        report.fwbw_trials = rounds;
        Ok((state.into_result(), report))
    })
}

/// The Coloring rounds proper; returns the round count.
fn coloring_body(
    g: &CsrGraph,
    cfg: &SccConfig,
    state: &AlgoState<'_>,
    collector: &Collector,
) -> usize {
    let n = g.num_nodes();
    collector.phase(Phase::ParTrim, || (par_trim(state), ()));

    let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let mut rounds = 0usize;
    loop {
        swscc_sync::fault::point("coloring-round");
        if state.should_stop() {
            break;
        }
        // Round setup: compact the live set (each round resolves whole
        // label classes, so the residue shrinks fast), then gather the
        // alive nodes from it — O(|residue|) instead of O(N) per round.
        state.compact_live(cfg.live_set_compaction);
        let alive: Vec<NodeId> = state.collect_alive();
        if alive.is_empty() {
            break;
        }
        rounds += 1;
        // ordering: per-round label reset — each worker writes only
        // its own chunk's entries and the par_iter join publishes
        // them before the propagation loop reads any.
        alive
            .par_iter()
            .for_each(|&v| labels[v as usize].store(v, Ordering::Relaxed));

        // Forward max-propagation to fixpoint. The max label needs at
        // most one round per node on the longest alive path plus one
        // no-change round to detect convergence, hence the n + 1 bound.
        collector.phase(Phase::ParFwbw, || {
            let mut watchdog = state.watchdog("coloring-propagation", n + 1);
            loop {
                if watchdog.check().is_some() {
                    break;
                }
                let changed = AtomicBool::new(false);
                alive.par_iter().for_each(|&v| {
                    // ordering: monotone fetch_max convergence — labels
                    // only increase, stale reads merely defer an update
                    // to a later sweep, and the atomic fetch_max never
                    // loses the larger value. `changed` is a sticky
                    // flag read after the sweep's join (which is what
                    // publishes it), so Relaxed suffices there too.
                    let mut max = labels[v as usize].load(Ordering::Relaxed);
                    for &u in state.g.in_neighbors(v) {
                        if u != v && state.alive(u) {
                            max = max.max(labels[u as usize].load(Ordering::Relaxed));
                        }
                    }
                    if max > labels[v as usize].load(Ordering::Relaxed) {
                        labels[v as usize].fetch_max(max, Ordering::Relaxed);
                        changed.store(true, Ordering::Relaxed);
                    }
                });
                // ordering: read after the par_iter join above.
                if !changed.load(Ordering::Relaxed) {
                    break;
                }
            }
            (0, ())
        });
        if state.should_stop() {
            // Labels may be mid-fixpoint; collecting classes now would
            // resolve sets that are not SCCs. The driver surfaces the
            // abort, so partial state is discarded anyway.
            break;
        }

        // Collect one SCC per root: backward BFS within the label class.
        let resolved_this_round = collector.phase(Phase::RecurFwbw, || {
            let resolved = AtomicUsize::new(0);
            // ordering: the propagation fixpoint completed and its
            // joins published the final labels; these reads race with
            // nothing.
            let roots: Vec<NodeId> = alive
                .par_iter()
                .copied()
                .filter(|&v| labels[v as usize].load(Ordering::Relaxed) == v)
                .collect();
            // Roots own disjoint label classes, so their backward
            // searches touch disjoint node sets and can run in parallel.
            roots.par_iter().for_each(|&r| {
                let comp = state.alloc_component();
                // claim via color: alive + same label + not yet claimed
                debug_assert!(state.alive(r));
                state.resolve_into(r, comp);
                // ordering: statistic counter — atomicity keeps the
                // total exact, the join below publishes it.
                resolved.fetch_add(1, Ordering::Relaxed);
                let mut stack = vec![r];
                while let Some(v) = stack.pop() {
                    for &u in state.g.in_neighbors(v) {
                        // ordering: label classes are frozen (fixpoint
                        // reached, published by the joins above) and
                        // disjoint per root, so these reads see final
                        // values; the counter argument is as above.
                        if u != v
                            && state.alive(u)
                            && labels[u as usize].load(Ordering::Relaxed) == r
                        {
                            state.resolve_into(u, comp);
                            resolved.fetch_add(1, Ordering::Relaxed);
                            stack.push(u);
                        }
                    }
                }
            });
            // ordering: read after the par_iter join.
            let r = resolved.load(Ordering::Relaxed);
            (r, r)
        });
        debug_assert!(resolved_this_round > 0, "a round must make progress");
    }
    rounds
}

// A note on the `resolve_into` calls above: within one round the label
// classes partition the alive nodes and each class is processed by exactly
// one root's backward search, so no two searches can claim the same node.
const _: () = {
    // (compile-time anchor for the invariant comment; nothing to check)
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tarjan::tarjan_scc;

    fn check(g: &CsrGraph, threads: usize) {
        let (r, _) = coloring_scc(g, &SccConfig::with_threads(threads));
        assert_eq!(
            r.canonical_labels(),
            tarjan_scc(g).canonical_labels(),
            "coloring disagrees with tarjan"
        );
    }

    #[test]
    fn simple_shapes() {
        check(&CsrGraph::from_edges(0, &[]), 1);
        check(&CsrGraph::from_edges(1, &[(0, 0)]), 1);
        check(
            &CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3), (4, 5)]),
            2,
        );
    }

    #[test]
    fn chain_of_cycles() {
        // (0,1) -> (2,3) -> (4,5): coloring resolves the max-id chain first
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 3),
                (3, 2),
                (3, 4),
                (4, 5),
                (5, 4),
            ],
        );
        check(&g, 2);
    }

    #[test]
    fn random_graphs_match_tarjan() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(79);
        for trial in 0..15 {
            let n = rng.random_range(1..150usize);
            let m = rng.random_range(0..5 * n);
            let edges: Vec<_> = (0..m)
                .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
                .collect();
            let g = CsrGraph::from_edges(n, &edges);
            check(&g, 1 + trial % 3);
        }
    }

    #[test]
    fn round_count_reported() {
        // a 3-chain of 2-cycles takes multiple rounds: each round peels the
        // classes whose roots are maximal
        let g = CsrGraph::from_edges(
            6,
            &[
                (5, 4),
                (4, 5),
                (4, 3),
                (3, 2),
                (2, 3),
                (2, 1),
                (1, 0),
                (0, 1),
            ],
        );
        let (r, report) = coloring_scc(&g, &SccConfig::with_threads(1));
        assert_eq!(r.num_components(), 3);
        assert!(report.fwbw_trials >= 1, "rounds = {}", report.fwbw_trials);
    }

    #[test]
    fn dag_fully_trimmed_zero_rounds() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let (r, report) = coloring_scc(&g, &SccConfig::with_threads(2));
        assert_eq!(r.num_components(), 5);
        assert_eq!(report.fwbw_trials, 0, "trim leaves nothing to color");
    }
}
