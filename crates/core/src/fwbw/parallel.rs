//! Par-FWBW (§3.2): data-parallel peel of the giant SCC.
//!
//! Phase 1 of Methods 1 and 2. All threads cooperate on one forward and one
//! backward level-synchronous BFS from a pivot; the intersection is claimed
//! as an SCC. The peel repeats — descending into the largest residual
//! partition — until an SCC of at least `giant_threshold · N` nodes is
//! found or `max_trials` pivots have been tried, exactly the paper's
//! transition rule ("when the giant SCC has been identified (i.e. an SCC
//! containing, say 1% of the nodes of the original graph), or after a
//! predefined number of iterations").
//!
//! Per §4.2, phase 1 keeps **no** compact set representation: the traversal
//! touches O(N) nodes, and the sets would be invalidated by the trimming
//! that follows anyway, so only the Color array is written and the initial
//! phase-2 work items are built later by a scan.
//!
//! Both traversal passes run on the unified
//! [`swscc_graph::traverse::EdgeMap`] kernel (§4.2), which owns
//! the hybrid sequential fallback ([`SccConfig::par_frontier_threshold`])
//! and the Beamer direction-optimizing switch
//! ([`SccConfig::direction_optimizing`]; measured by the `ablation_dobfs`
//! harness). The two passes differ only in their claim protocol, expressed
//! as [`EdgeMapOps`] implementations: the forward pass claims a single
//! color transition, the backward pass claims two (backward-only nodes and
//! the FW∩BW intersection) in one traversal.

use crate::config::{PivotStrategy, SccConfig};
use crate::state::{AlgoState, Color};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use swscc_graph::bfs::Direction;
use swscc_graph::traverse::{Adjacency, EdgeMap, EdgeMapOps};
use swscc_graph::{GraphView, NodeId};
use swscc_sync::atomic::{AtomicUsize, Ordering};

/// Result of the phase-1 peel.
#[derive(Clone, Copy, Debug)]
pub struct ParFwbwOutcome {
    /// Nodes resolved (sum of the peeled SCC sizes).
    pub resolved: usize,
    /// Pivot trials performed.
    pub trials: usize,
    /// Whether a giant SCC (≥ threshold) was found.
    pub giant_found: bool,
}

/// Runs the phase-1 parallel FW-BW peel starting from the partition
/// `start_color`. See the module docs for the stopping rule.
pub fn par_fwbw<G: GraphView>(
    state: &AlgoState<'_, G>,
    cfg: &SccConfig,
    start_color: Color,
) -> ParFwbwOutcome {
    let n = state.num_nodes();
    let giant_min = ((n as f64) * cfg.giant_threshold).ceil() as usize;
    let mut rng = match cfg.pivot {
        PivotStrategy::Random { seed } => SmallRng::seed_from_u64(seed),
        PivotStrategy::MaxDegreeProduct => SmallRng::seed_from_u64(0),
    };

    let mut candidate_color = start_color;
    // Size of the candidate partition; used for the residual-partition
    // bookkeeping and the direction-optimizing switch heuristic.
    let mut candidate_size = state.count_alive();
    let mut resolved = 0usize;
    let mut trials = 0usize;
    let mut giant_found = false;

    while trials < cfg.max_trials && candidate_size > 0 {
        // Cooperative bail-out between trials; mid-trial aborts are caught
        // at superstep granularity inside `run_reach`. Either way the
        // driver discards the state after converting the abort.
        if state.should_stop() {
            break;
        }
        let Some(pivot) = pick_pivot(state, cfg, candidate_color, &mut rng) else {
            break;
        };
        trials += 1;

        // --- Forward BFS: claim candidate_color -> fw_color --------------
        let fw_color = state.alloc_color();
        let fw_claimed = reach(
            state,
            cfg,
            pivot,
            candidate_color,
            fw_color,
            Direction::Forward,
            candidate_size,
        );

        // --- Backward BFS: candidate -> bw_color; fw ∩ bw -> scc_color ---
        let bw_color = state.alloc_color();
        let scc_color = state.alloc_color();
        let (bw, scc) = backward_reach(
            state,
            cfg,
            pivot,
            candidate_color,
            fw_color,
            bw_color,
            scc_color,
            candidate_size,
        );

        // Resolve the SCC: scan-claim every scc_color node. (Phase 1 keeps
        // no member lists — §4.2 — so this is a color sweep over the live
        // set; scc_color nodes are alive by construction, hence candidates.)
        let comp = state.alloc_component();
        state.live().par_for_each(|v| {
            if state.color(v) == scc_color {
                state.resolve_into(v, comp);
            }
        });

        resolved += scc;
        if scc >= giant_min {
            giant_found = true;
            break;
        }

        // Descend into the largest residual partition for the next trial.
        let fw_rest = fw_claimed.saturating_sub(scc);
        let remaining = candidate_size.saturating_sub(fw_claimed + bw);
        if fw_rest >= bw && fw_rest >= remaining {
            candidate_color = fw_color;
            candidate_size = fw_rest;
        } else if bw >= remaining {
            candidate_color = bw_color;
            candidate_size = bw;
        } else {
            // candidate_color unchanged: the untouched residue kept it.
            candidate_size = remaining;
        }
    }

    ParFwbwOutcome {
        resolved,
        trials,
        giant_found,
    }
}

/// Runs one reachability pass on the shared [`EdgeMap`] kernel: seeds the
/// (pre-claimed) pivot and traverses `dir` under `ops`' claim protocol.
/// Returns the number of nodes claimed beyond the pivot. Both the forward
/// and the backward pass of a trial go through here — the claim protocol
/// is the *only* thing that differs between them.
fn run_reach<G: GraphView, O: EdgeMapOps>(
    state: &AlgoState<'_, G>,
    cfg: &SccConfig,
    pivot: NodeId,
    dir: Direction,
    candidate_size: usize,
    ops: &O,
) -> usize {
    let mut em = EdgeMap::new(state.g, Adjacency::Directed(dir), cfg.traversal());
    em.seed(pivot);
    em.set_remaining(candidate_size.saturating_sub(1));
    loop {
        swscc_sync::fault::point("fwbw-superstep");
        // Superstep-granular abort check: a cancelled/expired run stops
        // mid-traversal instead of finishing an O(N) BFS first.
        if state.should_stop() {
            break;
        }
        if em.step(ops) == 0 {
            break;
        }
    }
    em.claimed()
}

/// Single-color claim protocol: `from_color -> to_color`, a test-then-CAS
/// on the Color array (the plain load filters already-claimed targets
/// before paying for the atomic RMW).
struct ColorClaimOps<'a, 'g, G: GraphView> {
    state: &'a AlgoState<'g, G>,
    from_color: Color,
    to_color: Color,
}

impl<G: GraphView> EdgeMapOps for ColorClaimOps<'_, '_, G> {
    #[inline]
    fn claim(&self, _src: NodeId, v: NodeId, _depth: u32) -> bool {
        self.state.color(v) == self.from_color
            && self.state.cas_color(v, self.from_color, self.to_color)
    }

    #[inline]
    fn candidate(&self, v: NodeId) -> bool {
        self.state.color(v) == self.from_color
    }
}

/// Dual-claim protocol of the backward pass: candidate-colored nodes join
/// the backward-only set (`bw_color`), forward-colored nodes are the FW∩BW
/// intersection and join the SCC (`scc_color`). Both transitions count.
struct DualClaimOps<'a, 'g, G: GraphView> {
    state: &'a AlgoState<'g, G>,
    candidate_color: Color,
    fw_color: Color,
    bw_color: Color,
    scc_color: Color,
    bw_claimed: AtomicUsize,
    scc_claimed: AtomicUsize,
}

impl<G: GraphView> EdgeMapOps for DualClaimOps<'_, '_, G> {
    #[inline]
    fn claim(&self, _src: NodeId, v: NodeId, _depth: u32) -> bool {
        let c = self.state.color(v);
        // ordering: counters of CAS-claim wins — exact by RMW atomicity
        // (each win adds once); the traversal's scope join publishes the
        // totals before the reads below run.
        if c == self.candidate_color && self.state.cas_color(v, self.candidate_color, self.bw_color)
        {
            self.bw_claimed.fetch_add(1, Ordering::Relaxed);
            true
        } else if c == self.fw_color && self.state.cas_color(v, self.fw_color, self.scc_color) {
            self.scc_claimed.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    #[inline]
    fn candidate(&self, v: NodeId) -> bool {
        let c = self.state.color(v);
        c == self.candidate_color || c == self.fw_color
    }
}

/// Single-color reachability claiming `from_color -> to_color` along `dir`.
/// Returns the number of nodes claimed (incl. pivot).
fn reach<G: GraphView>(
    state: &AlgoState<'_, G>,
    cfg: &SccConfig,
    pivot: NodeId,
    from_color: Color,
    to_color: Color,
    dir: Direction,
    candidate_size: usize,
) -> usize {
    if !state.cas_color(pivot, from_color, to_color) {
        return 0;
    }
    let ops = ColorClaimOps {
        state,
        from_color,
        to_color,
    };
    1 + run_reach(state, cfg, pivot, dir, candidate_size, &ops)
}

/// The backward pass of one FW-BW trial: from `pivot`, following in-edges,
/// claim `candidate_color -> bw_color` (backward-only nodes) and
/// `fw_color -> scc_color` (the SCC). Returns `(bw_count, scc_count)`.
#[allow(clippy::too_many_arguments)]
fn backward_reach<G: GraphView>(
    state: &AlgoState<'_, G>,
    cfg: &SccConfig,
    pivot: NodeId,
    candidate_color: Color,
    fw_color: Color,
    bw_color: Color,
    scc_color: Color,
    candidate_size: usize,
) -> (usize, usize) {
    // The pivot is in FW by construction, so it joins the SCC first.
    let ok = state.cas_color(pivot, fw_color, scc_color);
    debug_assert!(ok, "pivot lost its forward color");
    let ops = DualClaimOps {
        state,
        candidate_color,
        fw_color,
        bw_color,
        scc_color,
        bw_claimed: AtomicUsize::new(0),
        scc_claimed: AtomicUsize::new(1),
    };
    run_reach(state, cfg, pivot, Direction::Backward, candidate_size, &ops);
    // ordering: reads after run_reach's internal joins; no concurrent
    // writers remain.
    (
        ops.bw_claimed.load(Ordering::Relaxed),
        ops.scc_claimed.load(Ordering::Relaxed),
    )
}

/// Picks a pivot from the alive nodes of `color`, per the configured
/// strategy. Random probing first (O(1) expected when the partition is a
/// large fraction of the live set's candidates — probing samples the
/// sparse candidate list once the set has been compacted), falling back
/// to a parallel scan over the live set.
fn pick_pivot<G: GraphView>(
    state: &AlgoState<'_, G>,
    cfg: &SccConfig,
    color: Color,
    rng: &mut SmallRng,
) -> Option<NodeId> {
    let live = state.live();
    match cfg.pivot {
        PivotStrategy::Random { .. } => {
            let probed = live.with_sparse(|sparse| {
                let domain = sparse.map_or(state.num_nodes(), <[NodeId]>::len);
                if domain == 0 {
                    return None;
                }
                for _ in 0..64 {
                    let i = rng.random_range(0..domain);
                    let v = match sparse {
                        Some(list) => list[i],
                        None => i as NodeId,
                    };
                    if state.alive(v) && state.color(v) == color {
                        return Some(v);
                    }
                }
                None
            });
            probed.or_else(|| live.par_find_any(|v| state.alive(v) && state.color(v) == color))
        }
        PivotStrategy::MaxDegreeProduct => live.par_max_by_key(
            |v| state.alive(v) && state.color(v) == color,
            |v| (state.g.in_degree(v) as u64 + 1) * (state.g.out_degree(v) as u64 + 1),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swscc_graph::CsrGraph;

    fn cfg() -> SccConfig {
        SccConfig {
            threads: 2,
            giant_threshold: 0.25,
            max_trials: 5,
            ..Default::default()
        }
    }

    fn dobfs_cfg() -> SccConfig {
        SccConfig {
            direction_optimizing: true,
            ..cfg()
        }
    }

    #[test]
    fn peels_single_big_cycle() {
        let n = 100u32;
        let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = CsrGraph::from_edges(n as usize, &edges);
        let s = AlgoState::new(&g);
        let out = par_fwbw(&s, &cfg(), crate::state::INITIAL_COLOR);
        assert!(out.giant_found);
        assert_eq!(out.resolved, 100);
        assert_eq!(out.trials, 1);
        assert_eq!(s.count_alive(), 0);
    }

    #[test]
    fn partitions_residue_correctly() {
        // giant 4-cycle {0..3}; IN satellite 4 -> 0; OUT satellite 3 -> 5.
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 0), (4, 0), (3, 5)]);
        let s = AlgoState::new(&g);
        let out = par_fwbw(&s, &cfg(), crate::state::INITIAL_COLOR);
        assert!(out.giant_found);
        assert_eq!(out.resolved, 4);
        assert!(s.alive(4) && s.alive(5));
        assert_ne!(s.color(4), crate::state::DONE_COLOR);
    }

    #[test]
    fn gives_up_after_max_trials() {
        // All-singleton DAG: every peel resolves one node; threshold 25%
        // can never be reached.
        let g = CsrGraph::from_edges(10, &[(0, 1), (1, 2), (2, 3), (4, 5)]);
        let s = AlgoState::new(&g);
        let out = par_fwbw(&s, &cfg(), crate::state::INITIAL_COLOR);
        assert!(!out.giant_found);
        assert_eq!(out.trials, 5);
        assert_eq!(out.resolved, 5);
    }

    #[test]
    fn max_degree_pivot_hits_hub() {
        // star-of-cycles: central 3-cycle with high degree; pendant nodes.
        let mut edges = vec![(0u32, 1u32), (1, 2), (2, 0)];
        for i in 3..40u32 {
            edges.push((0, i));
        }
        let g = CsrGraph::from_edges(40, &edges);
        let s = AlgoState::new(&g);
        let c = SccConfig {
            pivot: PivotStrategy::MaxDegreeProduct,
            giant_threshold: 0.05,
            max_trials: 1,
            ..cfg()
        };
        let out = par_fwbw(&s, &c, crate::state::INITIAL_COLOR);
        assert!(
            out.giant_found,
            "degree-product pivot must land in the hub cycle"
        );
        assert_eq!(out.resolved, 3);
    }

    #[test]
    fn empty_partition() {
        let g = CsrGraph::from_edges(0, &[]);
        let s = AlgoState::new(&g);
        let out = par_fwbw(&s, &cfg(), crate::state::INITIAL_COLOR);
        assert_eq!(out.resolved, 0);
        assert_eq!(out.trials, 0);
    }

    #[test]
    fn resolved_nodes_share_component() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 0), (2, 3)]);
        let s = AlgoState::new(&g);
        let c = SccConfig {
            giant_threshold: 0.5,
            max_trials: 10,
            ..cfg()
        };
        let _ = par_fwbw(&s, &c, crate::state::INITIAL_COLOR);
        for v in 0..4u32 {
            if s.alive(v) {
                s.resolve_singleton(v);
            }
        }
        let r = s.into_result();
        assert!(r.same_component(0, 1));
        assert!(!r.same_component(2, 3));
    }

    #[test]
    fn direction_optimizing_same_outcome_on_cycle() {
        let n = 5000u32;
        let mut edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        // chords to give the BFS big levels so bottom-up actually triggers
        for i in 0..n / 2 {
            edges.push((i, (i * 7 + 13) % n));
        }
        let g = CsrGraph::from_edges(n as usize, &edges);

        let s1 = AlgoState::new(&g);
        let o1 = par_fwbw(&s1, &cfg(), crate::state::INITIAL_COLOR);
        let s2 = AlgoState::new(&g);
        let o2 = par_fwbw(&s2, &dobfs_cfg(), crate::state::INITIAL_COLOR);
        assert_eq!(o1.resolved, o2.resolved);
        assert_eq!(o1.giant_found, o2.giant_found);
        assert_eq!(s1.count_alive(), s2.count_alive());
    }

    #[test]
    fn direction_optimizing_full_method_matches_tarjan() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(61);
        for _ in 0..8 {
            let n = rng.random_range(50..400usize);
            let m = rng.random_range(n..6 * n);
            let edges: Vec<_> = (0..m)
                .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
                .collect();
            let g = CsrGraph::from_edges(n, &edges);
            let c = SccConfig {
                direction_optimizing: true,
                ..SccConfig::with_threads(2)
            };
            let (r, _) = crate::method2::method2_scc(&g, &c);
            assert_eq!(
                r.canonical_labels(),
                crate::tarjan::tarjan_scc(&g).canonical_labels()
            );
        }
    }
}
