//! §3.2 ablation: pivot selection for the giant-SCC peel.
//!
//! The paper picks a random pivot and retries until an SCC covering ≥ 1%
//! of the graph appears. Follow-on work (e.g. Multistep) instead picks the
//! node maximizing in-degree × out-degree, which lands inside the giant
//! SCC almost surely on the first try. This harness compares trials-to-
//! giant and peel time for both strategies.

use std::time::Instant;
use swscc_bench::{print_header, scale};
use swscc_core::fwbw::parallel::par_fwbw;
use swscc_core::state::{AlgoState, INITIAL_COLOR};
use swscc_core::trim::par_trim;
use swscc_core::{PivotStrategy, SccConfig};
use swscc_graph::datasets::Dataset;
use swscc_parallel::pool::with_pool;

fn main() {
    print_header("§3.2 ablation: random vs max-degree-product pivot");
    println!(
        "{:<9} {:<18} {:>7} {:>7} {:>10} {:>9}",
        "name", "pivot", "trials", "giant?", "resolved", "peel-ms"
    );
    for d in Dataset::small_world() {
        let g = d.load(scale(), 42);
        for (label, pivot) in [
            ("random", PivotStrategy::Random { seed: 0x5CC }),
            ("degree-product", PivotStrategy::MaxDegreeProduct),
        ] {
            let cfg = SccConfig {
                pivot,
                ..SccConfig::default()
            };
            let (trials, giant, resolved, ms) = with_pool(cfg.threads, || {
                let state = AlgoState::new(&g);
                par_trim(&state);
                let t0 = Instant::now();
                let o = par_fwbw(&state, &cfg, INITIAL_COLOR);
                (
                    o.trials,
                    o.giant_found,
                    o.resolved,
                    t0.elapsed().as_secs_f64() * 1e3,
                )
            });
            println!(
                "{:<9} {:<18} {:>7} {:>7} {:>10} {:>9.2}",
                d.name(),
                label,
                trials,
                if giant { "yes" } else { "no" },
                resolved,
                ms
            );
        }
    }
}
