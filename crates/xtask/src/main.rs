//! Workspace task runner. The one subcommand is the static-analysis
//! gate:
//!
//! ```text
//! cargo run -p xtask -- lint [--rule <name>] [--json]
//!                            [--update-baseline] [--update-inventory]
//!                            [--list-rules]
//! cargo run -p xtask -- audit          # thin alias for `lint`
//! ```
//!
//! The engine itself lives in `crates/lint` (`swscc-lint`): a token-aware
//! lexer + item-level parser and a rule catalog covering facade
//! discipline, `Relaxed`/`unsafe`/recovery justifications, engine-only
//! recovery, decode-path allocation, the DESIGN.md §8 atomic inventory,
//! SAFETY invariant tags, GraphView backend discipline, static pipeline
//! legality, and dropped-RunReport detection. See DESIGN.md §13 for the
//! catalog and the suppression-baseline workflow.
//!
//! Exit codes: **0** clean, **1** findings, **2** usage error.

use std::path::PathBuf;
use std::process::ExitCode;

use swscc_lint::{run_lint, LintOptions};

const USAGE: &str = "usage: cargo run -p xtask -- lint \
                     [--rule <name>] [--json] [--update-baseline] \
                     [--update-inventory] [--list-rules]\n\
                     (`audit` is an alias for `lint`)";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") | Some("audit") => lint(args),
        Some(other) => {
            eprintln!("unknown xtask subcommand `{other}` (available: lint, audit)");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn lint(args: impl Iterator<Item = String>) -> ExitCode {
    let mut opts = LintOptions {
        root: workspace_root(),
        rule: None,
        json: false,
        update_baseline: false,
        update_inventory: false,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rule" => match args.next() {
                Some(name) => opts.rule = Some(name),
                None => {
                    eprintln!("--rule needs a rule name");
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--json" => opts.json = true,
            "--update-baseline" => opts.update_baseline = true,
            "--update-inventory" => opts.update_inventory = true,
            "--list-rules" => {
                print!("{}", swscc_lint::rule_catalog());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown lint flag `{other}`");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    match run_lint(&opts) {
        Ok(run) => {
            if run.clean {
                print!("{}", run.output);
                ExitCode::SUCCESS
            } else if opts.json {
                // JSON always goes to stdout so `--json > lint.json`
                // captures the artifact even on a failing run.
                print!("{}", run.output);
                ExitCode::FAILURE
            } else {
                // Text findings go to stderr like the old audit, so CI
                // logs interleave them with the failure status.
                eprint!("{}", run.output);
                ExitCode::FAILURE
            }
        }
        Err(usage) => {
            eprintln!("lint: {usage}");
            ExitCode::from(2)
        }
    }
}

fn workspace_root() -> PathBuf {
    // xtask always runs via `cargo run -p xtask`, so CARGO_MANIFEST_DIR is
    // <root>/crates/xtask.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}
