//! Criterion microbenchmarks: runtime substrate (work queue, bitset) and
//! the distributed BSP pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use swscc_distributed::dist_scc;
use swscc_graph::datasets::Dataset;
use swscc_parallel::{AtomicBitSet, TwoLevelQueue};

fn bench_workqueue(c: &mut Criterion) {
    let mut group = c.benchmark_group("workqueue");
    group.sample_size(10);
    // 10k pre-seeded trivial tasks, swept over K — the §4.3 batching axis.
    for k in [1usize, 8, 64] {
        group.bench_with_input(BenchmarkId::new("drain-10k", k), &k, |b, &k| {
            b.iter(|| {
                let q = TwoLevelQueue::new(k);
                for i in 0..10_000usize {
                    q.push_global(i);
                }
                let sum = AtomicUsize::new(0);
                q.run(2, |i, _| {
                    sum.fetch_add(i, Ordering::Relaxed);
                });
                black_box(sum.load(Ordering::Relaxed))
            })
        });
    }
    // Self-spawning tree: stresses local-queue push + spill.
    group.bench_function("spawn-tree", |b| {
        b.iter(|| {
            let q = TwoLevelQueue::new(8);
            q.push_global(14u32);
            let leaves = AtomicUsize::new(0);
            q.run(2, |n, w| {
                if n < 2 {
                    leaves.fetch_add(1, Ordering::Relaxed);
                } else {
                    w.push(n - 1);
                    w.push(n - 2);
                }
            });
            black_box(leaves.load(Ordering::Relaxed))
        })
    });
    group.finish();
}

fn bench_bitset(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitset");
    group.sample_size(20);
    group.bench_function("set-1m", |b| {
        b.iter(|| {
            let bits = AtomicBitSet::new(1 << 20);
            for i in (0..1 << 20).step_by(3) {
                bits.set(i);
            }
            black_box(bits.count_ones())
        })
    });
    group.bench_function("iter-ones", |b| {
        let bits = AtomicBitSet::new(1 << 20);
        for i in (0..1 << 20).step_by(7) {
            bits.set(i);
        }
        b.iter(|| black_box(bits.iter_ones().sum::<usize>()))
    });
    group.finish();
}

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed");
    group.sample_size(10);
    let g = Dataset::Livej.generate(0.05, 42);
    for workers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("dist-scc", workers), &workers, |b, &w| {
            b.iter(|| {
                let (r, _) = dist_scc(black_box(&g), w);
                black_box(r.num_components())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_workqueue, bench_bitset, bench_distributed);
criterion_main!(benches);
