//! # swscc-bench — harness regenerating every table and figure of the paper
//!
//! One binary per artifact of the SC'13 evaluation (run with
//! `cargo run --release -p swscc-bench --bin <name>`):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table 1 — dataset statistics |
//! | `fig2_scc_sizes` | Fig. 2 — LiveJournal SCC-size histogram |
//! | `sec33_tasklog` | §3.3 — first recursive tasks + max queue depth |
//! | `fig6_speedup` | Fig. 6 — speedup vs Tarjan across threads/methods |
//! | `fig7_breakdown` | Fig. 7 — per-phase execution-time breakdown |
//! | `fig8_phase_fraction` | Fig. 8 — fraction of nodes resolved per phase |
//! | `fig9_scc_distributions` | Fig. 9 — SCC-size distributions, all graphs |
//! | `ablation_hybrid` | §4.1 — hybrid set representation (~10x claim) |
//! | `ablation_k` | §4.3 — work-queue batch size K |
//! | `ablation_trim2` | §3.4 — Trim2's effect on the WCC step |
//! | `ablation_pivot` | §3.2 — random vs degree-product pivot selection |
//! | `incr_latency` | §4.5 ext. — incremental mutation latency vs recompute (JSON artifact + 10x gate) |
//!
//! Environment knobs shared by every binary:
//!
//! * `SWSCC_SCALE` — dataset analog size multiplier (default **0.25**;
//!   1.0 reproduces the committed EXPERIMENTS.md numbers, bigger values
//!   stress-test).
//! * `SWSCC_THREADS` — comma-separated thread counts for sweep binaries
//!   (default: powers of two up to the hardware limit).
//! * `SWSCC_REPS` — timing repetitions per cell (default 3; median is
//!   reported).
//! * `SWSCC_DATA_DIR` — directory of real SNAP edge lists (`livej.txt`, …)
//!   to use instead of synthetic analogs.

use std::time::{Duration, Instant};
use swscc_core::{detect_scc, Algorithm, SccConfig};
use swscc_graph::CsrGraph;

/// Dataset scale multiplier from `SWSCC_SCALE` (default 0.25).
pub fn scale() -> f64 {
    std::env::var("SWSCC_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25)
}

/// Thread sweep from `SWSCC_THREADS` (default: 1,2,4,… up to hardware).
pub fn thread_sweep() -> Vec<usize> {
    if let Ok(s) = std::env::var("SWSCC_THREADS") {
        let v: Vec<usize> = s.split(',').filter_map(|t| t.trim().parse().ok()).collect();
        if !v.is_empty() {
            return v;
        }
    }
    swscc_parallel::pool::default_thread_sweep()
}

/// Timing repetitions from `SWSCC_REPS` (default 3).
pub fn reps() -> usize {
    std::env::var("SWSCC_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1)
}

/// Median wall-clock time of `reps` runs of `f`.
pub fn median_time(reps: usize, mut f: impl FnMut()) -> Duration {
    let mut times: Vec<Duration> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Median time of running `algo` on `g` with `cfg`.
pub fn time_algorithm(g: &CsrGraph, algo: Algorithm, cfg: &SccConfig, reps: usize) -> Duration {
    median_time(reps, || {
        let (r, _) = detect_scc(g, algo, cfg);
        std::hint::black_box(r.num_components());
    })
}

/// Formats a `Duration` in milliseconds with two decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Prints the standard harness header (dataset scale, machine info).
pub fn print_header(title: &str) {
    println!("=== {title} ===");
    println!(
        "scale={}  hardware-threads={}  reps={}",
        scale(),
        swscc_parallel::pool::hardware_threads(),
        reps()
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_time_positive() {
        let d = median_time(3, || {
            std::hint::black_box((0..1000u64).sum::<u64>());
        });
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(ms(Duration::from_millis(1500)), "1500.00");
        assert_eq!(ms(Duration::from_micros(500)), "0.50");
    }

    #[test]
    fn env_defaults() {
        // No env vars set in the test runner: check fallbacks.
        assert!(scale() > 0.0);
        assert!(reps() >= 1);
        assert!(!thread_sweep().is_empty());
    }
}
