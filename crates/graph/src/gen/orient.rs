//! Random orientation of undirected edges.
//!
//! Table 1 of the paper marks Friendster, Orkut and CA-road with `*`: "the
//! original graph is undirected; we randomly assign a direction for each
//! edge with 50% probability for each direction". This module implements
//! exactly that convention.

use crate::csr::NodeId;
use rand::RngExt;

/// Orients each undirected edge `(u, v)` as `u -> v` or `v -> u` with equal
/// probability. Self-loops keep their single orientation.
pub fn orient_randomly(
    undirected: &[(NodeId, NodeId)],
    rng: &mut impl rand::Rng,
) -> Vec<(NodeId, NodeId)> {
    undirected
        .iter()
        .map(|&(u, v)| if rng.random_bool(0.5) { (u, v) } else { (v, u) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn preserves_edge_count_and_endpoints() {
        let mut rng = SmallRng::seed_from_u64(1);
        let undirected = vec![(0u32, 1u32), (1, 2), (2, 3), (3, 0)];
        let directed = orient_randomly(&undirected, &mut rng);
        assert_eq!(directed.len(), 4);
        for (i, &(u, v)) in directed.iter().enumerate() {
            let (a, b) = undirected[i];
            assert!((u, v) == (a, b) || (u, v) == (b, a));
        }
    }

    #[test]
    fn both_orientations_occur() {
        let mut rng = SmallRng::seed_from_u64(2);
        let undirected: Vec<_> = (0..1000u32).map(|i| (i, i + 1000)).collect();
        let undirected_padded: Vec<_> = undirected.iter().map(|&(u, v)| (u, v % 2000)).collect();
        let directed = orient_randomly(&undirected_padded, &mut rng);
        let forward = directed
            .iter()
            .zip(&undirected_padded)
            .filter(|(d, u)| d == u)
            .count();
        // Binomial(1000, 0.5): wildly improbable to fall outside [350, 650].
        assert!((350..=650).contains(&forward), "forward = {forward}");
    }

    #[test]
    fn empty_input() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(orient_randomly(&[], &mut rng).is_empty());
    }
}
