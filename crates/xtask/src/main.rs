//! Workspace task runner. Currently one subcommand:
//!
//! ```text
//! cargo run -p xtask -- audit
//! ```
//!
//! walks every `.rs` file in the workspace and enforces the concurrency
//! hygiene rules that keep the lock-free substrate auditable:
//!
//! 1. **Facade discipline** — no direct `std::sync::atomic`, `std::thread`
//!    thread-control, or `parking_lot` use outside `swscc-sync` (and the
//!    few allowlisted infrastructure crates). All concurrency primitives
//!    must flow through the facade so the `--cfg model` checker sees them.
//! 2. **Relaxed justification** — every `Ordering::Relaxed` in non-test
//!    code must carry a `// ordering:` comment (same line or earlier in
//!    the same paragraph) explaining why relaxed is sufficient.
//! 3. **Unsafe justification** — every `unsafe` block/fn must carry a
//!    `// SAFETY:` comment.
//! 4. **Recovery justification** — every `catch_unwind` must carry a
//!    `// recovery:` comment stating what state the caught panic leaves
//!    behind and how the caller recovers (retry, degrade, restart, or
//!    test-local assertion). Swallowing a panic without that argument is
//!    how a split SCC masquerades as a clean run.
//! 5. **Engine-only recovery surface** — only the pipeline engine
//!    (`crates/core/src/pipeline.rs`) and the driver module itself may
//!    call the driver's interrupt/recovery machinery (`check_guard`,
//!    `check_interrupt`, `catch_phase`, `run_queue_with_recovery`,
//!    `recover_full_restart`). An algorithm that polls or recovers on its
//!    own re-creates the per-driver boilerplate the engine exists to
//!    collapse, and its recovery path escapes the engine's single
//!    retry/degrade/restart policy. Escape hatch: an `// engine:` comment
//!    arguing why the call must live outside the engine.
//! 6. **Allocation-free decode loops** — the compressed-CSR decode path
//!    (`DECODE_HOT_FILES`) sits inside every kernel's innermost edge
//!    loop, so any heap allocation there (`Vec::new`, `collect`,
//!    `to_vec`, ...) turns an O(1)-space neighbor stream into a per-edge
//!    allocator visit. Non-test allocation in those files must carry a
//!    `// decode:` comment arguing it is on a cold path (construction,
//!    validation, materialization) and never runs inside a traversal.
//!
//! The audit is line-based on purpose: it has zero dependencies, runs in
//! milliseconds, and its false-positive escape hatch is an explicit,
//! greppable justification comment — which is the artifact we actually
//! want in the tree.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("audit") => audit(),
        Some(other) => {
            eprintln!("unknown xtask subcommand `{other}` (available: audit)");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- audit");
            ExitCode::FAILURE
        }
    }
}

struct Finding {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

fn audit() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs_files(&root, &mut files);
    files.sort();

    let mut findings = Vec::new();
    for file in &files {
        let Ok(text) = std::fs::read_to_string(file) else {
            continue;
        };
        let rel = file.strip_prefix(&root).unwrap_or(file);
        check_file(rel, &text, &mut findings);
    }

    if findings.is_empty() {
        println!(
            "audit: OK — {} files clean (facade discipline; Relaxed, unsafe, and \
             decode-path allocation all justified)",
            files.len()
        );
        ExitCode::SUCCESS
    } else {
        let mut out = String::new();
        for f in &findings {
            let _ = writeln!(
                out,
                "{}:{}: [{}] {}",
                f.file.display(),
                f.line,
                f.rule,
                f.message
            );
        }
        eprint!("{out}");
        eprintln!(
            "audit: FAILED — {} finding(s) in {} files",
            findings.len(),
            files.len()
        );
        ExitCode::FAILURE
    }
}

fn workspace_root() -> PathBuf {
    // xtask always runs via `cargo run -p xtask`, so CARGO_MANIFEST_DIR is
    // <root>/crates/xtask.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Paths (relative, `/`-separated prefixes) exempt from the facade rule:
/// the facade itself, this linter, and the compat shims that *implement*
/// std-level plumbing (parking_lot wraps std::sync; proptest/criterion/
/// rand are test/bench infrastructure outside the modeled substrate). The
/// rayon shim is deliberately NOT exempt — its scoped workers must run
/// under the model scheduler.
const FACADE_EXEMPT: &[&str] = &[
    "crates/sync/",
    "crates/xtask/",
    "crates/compat/parking_lot/",
    "crates/compat/proptest/",
    "crates/compat/criterion/",
    "crates/compat/rand/",
];

/// Raw-primitive patterns the facade rule rejects, with what to use
/// instead.
const FACADE_BANNED: &[(&str, &str)] = &[
    ("std::sync::atomic", "swscc_sync::atomic"),
    ("std::thread::scope", "swscc_sync::thread::scope"),
    ("std::thread::spawn", "swscc_sync::thread::scope"),
    ("std::thread::yield_now", "swscc_sync::thread::yield_now"),
    ("std::thread::sleep", "swscc_sync::thread::sleep"),
    ("std::hint::spin_loop", "swscc_sync::hint::spin_loop"),
    ("parking_lot::", "swscc_sync::{Mutex, RwLock}"),
];

/// Files allowed to call the driver's interrupt/recovery machinery
/// directly: the engine that owns the policy, and the driver defining it.
const ENGINE_EXEMPT: &[&str] = &[
    "crates/core/src/pipeline.rs",
    "crates/core/src/driver.rs",
    "crates/xtask/",
];

/// Call-site patterns rule 5 restricts to the pipeline engine.
const ENGINE_ONLY: &[&str] = &[
    "check_guard(",
    "check_interrupt(",
    "catch_phase(",
    "run_queue_with_recovery(",
    "recover_full_restart(",
];

/// Files whose non-test code is the neighbor-decode hot path: every
/// kernel's inner edge loop streams through them, so allocation is a
/// per-edge cost there, not a one-time one.
const DECODE_HOT_FILES: &[&str] = &["crates/graph/src/compressed.rs"];

/// Heap-allocation patterns rule 6 flags inside `DECODE_HOT_FILES`.
const DECODE_ALLOC: &[&str] = &[
    "Vec::new",
    "Vec::with_capacity",
    "vec!",
    ".to_vec()",
    ".collect()",
    "Box::new(",
    "String::new",
    ".to_string()",
    "format!(",
];

fn check_file(rel: &Path, text: &str, findings: &mut Vec<Finding>) {
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    let facade_exempt = FACADE_EXEMPT.iter().any(|p| rel_str.starts_with(p));
    let engine_exempt = ENGINE_EXEMPT.iter().any(|p| rel_str.starts_with(p));
    let decode_hot = DECODE_HOT_FILES.contains(&rel_str.as_str());
    // Test-only code is exempt from the Relaxed-justification rule (its
    // atomics are assertion plumbing, not protocols) but NOT from the
    // facade rule — tests must exercise the same primitives the model
    // checker instruments.
    let is_test_code = rel_str.contains("/tests/")
        || rel_str.contains("/benches/")
        || rel_str.starts_with("tests/")
        || rel_str.starts_with("benches/");

    let lines: Vec<&str> = text.lines().collect();
    let mut in_cfg_test = usize::MAX; // brace depth at #[cfg(test)] module start
    let mut depth = 0usize;

    for (i, raw) in lines.iter().enumerate() {
        let line = strip_line_comment_and_strings(raw);
        let lineno = i + 1;

        // Track #[cfg(test)] regions by brace depth so inline unit-test
        // modules get the same Relaxed exemption as tests/ files.
        if in_cfg_test == usize::MAX && raw.trim_start().starts_with("#[cfg(test)]") {
            in_cfg_test = depth;
        }
        let opens = line.matches('{').count();
        let closes = line.matches('}').count();

        let in_tests = is_test_code || in_cfg_test != usize::MAX;

        // Rule 1: facade discipline.
        if !facade_exempt {
            for (pat, instead) in FACADE_BANNED {
                if line.contains(pat) {
                    findings.push(Finding {
                        file: rel.to_path_buf(),
                        line: lineno,
                        rule: "facade",
                        message: format!("direct `{pat}` — use `{instead}` so the model checker can instrument it"),
                    });
                }
            }
        }

        // Rule 2: Relaxed justification (non-test code only).
        if !in_tests
            && !facade_exempt
            && line.contains("Ordering::Relaxed")
            && !has_justification(&lines, i, "// ordering:")
        {
            findings.push(Finding {
                file: rel.to_path_buf(),
                line: lineno,
                rule: "relaxed",
                message: "`Ordering::Relaxed` without a `// ordering:` justification comment \
                          (same line or earlier in the same paragraph)"
                    .to_string(),
            });
        }

        // Rule 4: recovery justification (applies everywhere, tests too —
        // a test that absorbs a panic is asserting something about
        // recovery and must say what).
        // Match call sites only — `catch_unwind(` — so imports stay clean.
        if line.contains("catch_unwind(") && !has_justification(&lines, i, "// recovery:") {
            findings.push(Finding {
                file: rel.to_path_buf(),
                line: lineno,
                rule: "recovery",
                message: "`catch_unwind` without a `// recovery:` comment explaining what \
                          state the caught panic leaves and how the caller recovers"
                    .to_string(),
            });
        }

        // Rule 5: engine-only recovery surface.
        if !engine_exempt {
            for pat in ENGINE_ONLY {
                if line.contains(pat) && !has_justification(&lines, i, "// engine:") {
                    findings.push(Finding {
                        file: rel.to_path_buf(),
                        line: lineno,
                        rule: "engine",
                        message: format!(
                            "`{}` outside the pipeline engine — route the phase through a \
                             PhaseKernel, or add an `// engine:` justification",
                            pat.trim_end_matches('(')
                        ),
                    });
                }
            }
        }

        // Rule 6: allocation-free decode loops. Test code is exempt
        // (tests collect neighbor streams to compare against oracles).
        if decode_hot && !in_tests {
            for pat in DECODE_ALLOC {
                if line.contains(pat) && !has_justification(&lines, i, "// decode:") {
                    findings.push(Finding {
                        file: rel.to_path_buf(),
                        line: lineno,
                        rule: "decode",
                        message: format!(
                            "`{pat}` in the neighbor-decode hot path — move it off the \
                             per-edge loop, or add a `// decode:` comment arguing this \
                             is a cold (construction/validation) path"
                        ),
                    });
                }
            }
        }

        // Rule 3: unsafe justification (applies everywhere, tests too).
        if mentions_unsafe(&line) && !has_justification(&lines, i, "// SAFETY:") {
            findings.push(Finding {
                file: rel.to_path_buf(),
                line: lineno,
                rule: "unsafe",
                message: "`unsafe` without a `// SAFETY:` comment (same line or earlier in \
                          the same paragraph)"
                    .to_string(),
            });
        }

        depth += opens;
        depth = depth.saturating_sub(closes);
        if in_cfg_test != usize::MAX && depth <= in_cfg_test && closes > opens {
            in_cfg_test = usize::MAX;
        }
    }
}

/// True if `needle` appears on the same line (as a trailing comment) or
/// anywhere in the same paragraph above — scanning upward until a blank
/// line (capped), so one comment can justify a multi-line statement or a
/// tight cluster of related operations, while staying adjacent to the
/// code it justifies.
const JUSTIFY_PARAGRAPH_CAP: usize = 25;

fn has_justification(lines: &[&str], i: usize, needle: &str) -> bool {
    if lines[i].contains(needle) {
        return true;
    }
    for l in lines[..i].iter().rev().take(JUSTIFY_PARAGRAPH_CAP) {
        if l.trim().is_empty() {
            return false;
        }
        if l.contains(needle) {
            return true;
        }
    }
    false
}

/// Matches the `unsafe` keyword as a whole word (skips identifiers like
/// `unsafe_op` and, because comments/strings are already stripped, prose).
fn mentions_unsafe(line: &str) -> bool {
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(pos) = line[start..].find("unsafe") {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let after = at + "unsafe".len();
        let after_ok = after >= bytes.len() || !is_ident(bytes[after]);
        if before_ok && after_ok {
            return true;
        }
        start = after;
    }
    false
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Crude but adequate lexical stripping: removes `//` comments (so doc
/// text mentioning `std::sync::atomic` doesn't trip the lint) and blanks
/// out string-literal contents. Doesn't handle block comments or raw
/// strings spanning lines — the workspace style doesn't use them around
/// concurrency code, and a false positive is fixable with a justification
/// comment anyway.
fn strip_line_comment_and_strings(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            if c == '\\' {
                let _ = chars.next();
            } else if c == '"' {
                in_str = false;
                out.push('"');
                continue;
            }
            continue;
        }
        match c {
            '/' if chars.peek() == Some(&'/') => break,
            '"' => {
                in_str = true;
                out.push('"');
            }
            _ => out.push(c),
        }
    }
    out
}
