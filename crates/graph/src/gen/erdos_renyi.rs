//! Erdős–Rényi G(n, m) directed random graphs.
//!
//! Not a small-world *SCC-structure* model (no planted giant component,
//! Poisson-ish degrees) but a vital property-test workload: above the
//! percolation threshold it develops a giant SCC organically, below it the
//! graph is almost all trivial SCCs, and both regimes exercise different
//! code paths of the algorithms.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, NodeId};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Generates a directed G(n, m) graph: `m` edges sampled uniformly with
/// replacement, then deduplicated and self-loop-filtered (so the realized
/// edge count may be slightly under `m`).
///
/// # Examples
///
/// ```
/// use swscc_graph::gen::erdos_renyi;
///
/// let g = erdos_renyi(1000, 5000, 7);
/// assert_eq!(g.num_nodes(), 1000);
/// assert!(g.num_edges() <= 5000);
/// ```
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(n > 0 || m == 0, "edges require nodes");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    for _ in 0..m {
        let u = rng.random_range(0..n) as NodeId;
        let v = rng.random_range(0..n) as NodeId;
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_shape() {
        let g = erdos_renyi(100, 400, 1);
        assert_eq!(g.num_nodes(), 100);
        assert!(g.num_edges() > 300 && g.num_edges() <= 400);
    }

    #[test]
    fn deterministic() {
        let a: Vec<_> = erdos_renyi(50, 200, 9).edges().collect();
        let b: Vec<_> = erdos_renyi(50, 200, 9).edges().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_edges() {
        let g = erdos_renyi(10, 0, 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn empty_graph() {
        let g = erdos_renyi(0, 0, 1);
        assert_eq!(g.num_nodes(), 0);
    }
}
