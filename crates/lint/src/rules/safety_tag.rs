//! Rule (b) — unsafe proof obligations: every `// SAFETY:` comment in
//! non-test code must name an invariant tag (`[inv:kebab-name]`), and
//! that tag must be mentioned by at least one test or model-checker
//! protocol — so each unsafe block's safety argument is anchored to an
//! artifact that actually exercises it, not just to prose.
//!
//! Convention (DESIGN.md §13): the SAFETY comment embeds `[inv:<tag>]`;
//! a test (a `tests/`/`benches/` file or a `#[cfg(test)]` region — the
//! model-checker protocol batteries live in `tests/` too) mentions the
//! same `[inv:<tag>]` in a comment near the assertion or schedule that
//! validates the invariant.

use std::collections::BTreeSet;

use crate::engine::{Finding, Rule, Workspace};

pub struct SafetyTag;

/// Extracts every `[inv:…]` tag in `text`.
fn tags_in(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(at) = rest.find("[inv:") {
        let after = &rest[at + 5..];
        if let Some(close) = after.find(']') {
            out.push(after[..close].trim().to_string());
            rest = &after[close..];
        } else {
            break;
        }
    }
    out
}

impl Rule for SafetyTag {
    fn name(&self) -> &'static str {
        "safety-tag"
    }

    fn description(&self) -> &'static str {
        "every non-test `// SAFETY:` names an `[inv:…]` tag cross-referenced by a test"
    }

    fn check_workspace(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        // Pass 1: the reference set — every tag mentioned anywhere in
        // test-classified code (including its comments and strings).
        let mut referenced: BTreeSet<String> = BTreeSet::new();
        for file in &ws.files {
            if file.path_is_test() {
                referenced.extend(tags_in(&file.text));
                continue;
            }
            for t in &file.tokens {
                if file.in_test_code(t.start) {
                    referenced.extend(tags_in(t.text(&file.text)));
                }
            }
        }

        // Pass 2: every non-test SAFETY comment must carry a referenced
        // tag.
        for file in &ws.files {
            if ws.config.is_safety_tag_exempt(&file.rel_path) || file.path_is_test() {
                continue;
            }
            for t in &file.tokens {
                if !t.kind.is_plain_comment() || file.in_test_code(t.start) {
                    continue;
                }
                let text = t.text(&file.text);
                let Some(safety_at) = text.find("SAFETY:") else {
                    continue;
                };
                // Only the first line of a multi-line block comment is
                // attributed here; tags may appear anywhere in it.
                let tags = tags_in(text);
                let line = t.line as usize + text[..safety_at].matches('\n').count();
                let anchor = text
                    .lines()
                    .find(|l| l.contains("SAFETY:"))
                    .unwrap_or("")
                    .trim()
                    .to_string();
                if tags.is_empty() {
                    out.push(Finding {
                        rule: self.name(),
                        file: file.rel_path.clone(),
                        line,
                        message: "`// SAFETY:` without an `[inv:<tag>]` invariant tag — name \
                                  the invariant and reference it from the test or \
                                  model-checker protocol that exercises it (DESIGN.md §13)"
                            .to_string(),
                        anchor,
                    });
                    continue;
                }
                for tag in tags {
                    if !referenced.contains(&tag) {
                        out.push(Finding {
                            rule: self.name(),
                            file: file.rel_path.clone(),
                            line,
                            message: format!(
                                "invariant tag `[inv:{tag}]` is not mentioned by any test or \
                                 model-checker protocol — add the tag to the test that \
                                 exercises this invariant, or fix the tag name"
                            ),
                            anchor: anchor.clone(),
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::tags_in;

    #[test]
    fn tag_extraction() {
        assert_eq!(
            tags_in("// SAFETY: [inv:varint-bounds] and [inv:claim-once]"),
            ["varint-bounds", "claim-once"]
        );
        assert!(tags_in("// SAFETY: no tag here").is_empty());
        assert!(tags_in("[inv:unclosed").is_empty());
    }
}
