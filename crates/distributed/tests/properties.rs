//! Property-based tests for the distributed pipeline: random graphs,
//! random worker counts, always the exact Tarjan partition.

use proptest::prelude::*;
use swscc_core::tarjan::tarjan_scc;
use swscc_distributed::{dist_scc, Partition};
use swscc_graph::CsrGraph;

fn arb_graph(max_n: usize) -> impl Strategy<Value = CsrGraph> {
    (1..max_n).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..4 * n)
            .prop_map(move |edges| CsrGraph::from_edges(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dist_scc_matches_tarjan(g in arb_graph(100), workers in 1usize..9) {
        let (r, report) = dist_scc(&g, workers);
        prop_assert_eq!(r.canonical_labels(), tarjan_scc(&g).canonical_labels());
        prop_assert_eq!(
            report.trim_resolved + report.peel_resolved + report.residual_nodes,
            g.num_nodes()
        );
    }

    #[test]
    fn partition_owner_is_consistent(n in 0usize..500, workers in 1usize..17) {
        let p = Partition::new(n, workers);
        let mut total = 0;
        for w in 0..p.num_workers() {
            let range = p.range(w);
            total += range.len();
            for node in range {
                prop_assert_eq!(p.owner(node), w);
                prop_assert!(p.local_index(node) < p.range(w).len());
            }
        }
        prop_assert_eq!(total, n);
    }

    #[test]
    fn worker_count_invariant(g in arb_graph(60)) {
        let (r1, _) = dist_scc(&g, 1);
        let (r5, _) = dist_scc(&g, 5);
        prop_assert_eq!(r1.canonical_labels(), r5.canonical_labels());
    }
}
