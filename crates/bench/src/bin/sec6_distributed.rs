//! §6: the distributed implementation the paper proposes as future work.
//!
//! "Our extensions can be easily implemented in such an environment as
//! they only require data from direct neighbors." This harness runs the
//! BSP message-passing pipeline on every dataset analog and reports the
//! communication profile: supersteps (≈ diameter-bound rounds), message
//! volume, and how much of the graph each distributed phase resolved —
//! including the CA-road counterexample, whose huge diameter inflates the
//! superstep count exactly as §5 predicts for its WCC iterations.

use std::time::Instant;
use swscc_bench::{print_header, scale};
use swscc_core::{detect_scc, Algorithm, SccConfig};
use swscc_distributed::dist_scc;
use swscc_graph::datasets::Dataset;

fn main() {
    print_header("§6: distributed (BSP) pipeline on the dataset analogs");
    let workers: usize = std::env::var("SWSCC_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    println!("workers = {workers}\n");
    println!(
        "{:<9} {:>9} {:>11} {:>10} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "name", "nodes", "supersteps", "messages", "trim", "peel", "residual", "wcc-groups", "ms"
    );
    for d in Dataset::all() {
        let g = d.load(scale(), 42);
        let t0 = Instant::now();
        let (r, report) = dist_scc(&g, workers);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        // cross-check against the shared-memory implementation
        let (want, _) = detect_scc(&g, Algorithm::Tarjan, &SccConfig::default());
        assert_eq!(
            r.canonical_labels(),
            want.canonical_labels(),
            "{}",
            d.name()
        );
        println!(
            "{:<9} {:>9} {:>11} {:>10} {:>9} {:>9} {:>9} {:>10} {:>9.1}",
            d.name(),
            g.num_nodes(),
            report.supersteps,
            report.messages,
            report.trim_resolved,
            report.peel_resolved,
            report.residual_nodes,
            report.wcc_groups,
            ms,
        );
    }
    println!("\nall distributed results verified against Tarjan ✓");
}
