//! Criterion benchmarks: the compressed CSR backend vs raw CSR.
//!
//! Three questions the `--compressed` flag raises, answered on the same
//! LiveJournal analog and RMAT fabrics the other groups use:
//!
//! 1. **Footprint** — bytes/edge for the VarInt byte-delta encoding vs
//!    the raw `u32` arrays, per direction, printed as the
//!    [`MemoryFootprint`] reports before the timings (the `stats`
//!    subcommand shows the same numbers on arbitrary inputs).
//! 2. **Decode tax** — the `EdgeMap` kernel (level-synchronous BFS, the
//!    traversal under every parallel phase) on both backends. The
//!    acceptance bar is compressed within 1.5x of raw.
//! 3. **End to end** — the Method 2 pipeline on both backends, where
//!    decode overlaps the label/CAS work and the gap shrinks further.
//!
//! The `streaming` group times the construction paths: materialize +
//! compress vs `from_edge_stream` sharded generation, whose peak
//! transient memory is O(M / shards) edge pairs instead of O(M).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use swscc_core::{run_pipeline, Algorithm, Pipeline, RunGuard, SccConfig};
use swscc_graph::bfs::{par_bfs_levels_with, Direction};
use swscc_graph::datasets::Dataset;
use swscc_graph::gen::rmat::{rmat, rmat_compressed, RmatConfig};
use swscc_graph::{Adjacency, CompressedCsr, CsrGraph, GraphView, TraversalConfig};

/// Print both backends' footprint reports and the headline ratio — the
/// satellite numbers (bytes/edge, % of raw) that EXPERIMENTS.md tabulates.
fn report_footprint(label: &str, g: &CsrGraph, z: &CompressedCsr) {
    let raw = g.memory_footprint();
    let packed = z.memory_footprint();
    eprintln!("[{label}] raw:        {raw}");
    eprintln!("[{label}] compressed: {packed}");
    eprintln!(
        "[{label}] ratio: {:.1}% of raw ({:.2} vs {:.2} B/edge)",
        packed.ratio_vs_raw() * 100.0,
        packed.bytes_per_edge(),
        raw.bytes_per_edge(),
    );
}

/// The decode tax in isolation: the same EdgeMap BFS (the traversal
/// kernel under trim, FW-BW, WCC, and multi-search) on raw `u32` slices
/// vs chunk-decoded VarInt streams. Throughput is edges/second, so the
/// two bars are directly comparable.
///
/// Two scales on purpose. The livej analog (~700 KB raw) lives in
/// cache, so raw slice reads are nearly free and the bars show the pure
/// CPU cost of VarInt decode — the worst case. rmat-s20 (~82 MB raw vs
/// ~43 MB compressed) is where a compression backend actually operates:
/// out of cache, the raw traversal is memory-bound and the halved byte
/// traffic buys back most of the decode arithmetic.
fn bench_edgemap(c: &mut Criterion) {
    let cfg = TraversalConfig::default();
    let adj = Adjacency::Directed(Direction::Forward);
    let mut group = c.benchmark_group("compression/edgemap");
    group.sample_size(10);

    let g = Dataset::Livej.generate(0.05, 42);
    let z = CompressedCsr::from_csr(&g);
    report_footprint("livej-0.05", &g, &z);
    group.throughput(criterion::Throughput::Elements(g.num_edges() as u64));
    group.bench_function("bfs-raw/livej", |b| {
        b.iter(|| black_box(par_bfs_levels_with(&g, 0, adj, &cfg).len()))
    });
    group.bench_function("bfs-compressed/livej", |b| {
        b.iter(|| black_box(par_bfs_levels_with(&z, 0, adj, &cfg).len()))
    });

    let big = rmat(&RmatConfig::graph500(20, 8, 0x5cc));
    let zbig = CompressedCsr::from_csr(&big);
    report_footprint("rmat-s20", &big, &zbig);
    assert!(
        zbig.memory_footprint().ratio_vs_raw() < 0.6,
        "rmat-s20 must compress below 60% of raw"
    );
    group.throughput(criterion::Throughput::Elements(big.num_edges() as u64));
    group.bench_function("bfs-raw/rmat-s20", |b| {
        b.iter(|| black_box(par_bfs_levels_with(&big, 0, adj, &cfg).len()))
    });
    group.bench_function("bfs-compressed/rmat-s20", |b| {
        b.iter(|| black_box(par_bfs_levels_with(&zbig, 0, adj, &cfg).len()))
    });
    group.finish();
}

/// Full Method 2 on both backends: every phase (trim, trim2, FW-BW,
/// coloring, the task tail) runs through the `GraphView` seam, so this
/// is the whole-pipeline cost of never materializing the raw arrays.
fn bench_pipeline(c: &mut Criterion) {
    let g = Dataset::Livej.generate(0.05, 42);
    let z = CompressedCsr::from_csr(&g);
    let pipeline = Pipeline::stock(Algorithm::Method2).unwrap();
    let cfg = SccConfig::with_threads(2);

    let mut group = c.benchmark_group("compression/pipeline");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(g.num_edges() as u64));
    group.bench_function("method2-raw", |b| {
        b.iter(|| {
            let (r, _) = run_pipeline(&g, &pipeline, &cfg, &RunGuard::new()).unwrap();
            black_box(r.num_components())
        })
    });
    group.bench_function("method2-compressed", |b| {
        b.iter(|| {
            let (r, _) = run_pipeline(&z, &pipeline, &cfg, &RunGuard::new()).unwrap();
            black_box(r.num_components())
        })
    });
    group.finish();
}

/// Construction: `rmat` (materialize the full edge list + CSR, then
/// compress) vs `rmat_compressed` at several shard counts (replay the
/// edge stream per shard; peak transient memory divides by the shard
/// count — the path that fits 10-100x larger corpora in the same RAM).
fn bench_streaming(c: &mut Criterion) {
    let cfg = RmatConfig::graph500(14, 8, 0x5cc);
    let mut group = c.benchmark_group("compression/streaming");
    group.sample_size(10);
    group.bench_function("materialize-then-compress", |b| {
        b.iter(|| black_box(CompressedCsr::from_csr(&rmat(&cfg)).num_edges()))
    });
    for shards in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("edge-stream", shards),
            &shards,
            |b, &shards| b.iter(|| black_box(rmat_compressed(&cfg, shards).num_edges())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_edgemap, bench_pipeline, bench_streaming);
criterion_main!(benches);
