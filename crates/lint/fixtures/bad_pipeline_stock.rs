//@ path: crates/core/src/pipeline.rs
//! Known-bad STOCK table (virtual stand-in for the real pipeline file).

pub(crate) static STOCK: &[(Algorithm, &[Stage])] = &[
    (Algorithm::Baseline, &[Stage::Trim, Stage::Tasks]),
    (Algorithm::BadTail, &[Stage::Trim, Stage::Wcc]), //~ pipeline
    (Algorithm::BadPeel, &[Stage::Wcc, Stage::Peel, Stage::Tasks]), //~ pipeline
    (Algorithm::BadNewStage, &[Stage::Frobnicate, Stage::Tasks]), //~ pipeline
];
