//! Multistep SCC (Slota, Rajamanickam, Madduri — IPDPS'14), the direct
//! follow-on of the paper.
//!
//! Multistep took this paper's two-phase idea further: **Trim → one
//! FW-BW peel with a max-degree-product pivot → Coloring for the mid-size
//! tail → serial Tarjan for the tiny residue**. Each stage handles the
//! regime it is best at: the peel takes the giant SCC with data
//! parallelism, Coloring mops up the power-law tail (many SCCs per round,
//! no task queue needed), and the residue is small enough for a sequential
//! finish. Implemented here as an extension/future-work feature; every
//! building block is a kernel from this crate.

use crate::config::{PivotStrategy, SccConfig};
use crate::driver;
use crate::error::{RunGuard, SccError};
use crate::fwbw::parallel::par_fwbw;
use crate::instrument::{Collector, Phase, RunReport};
use crate::result::SccResult;
use crate::state::{AlgoState, INITIAL_COLOR};
use crate::tarjan::tarjan_scc;
use crate::trim::par_trim;
use rayon::prelude::*;
use std::sync::Arc;
use swscc_graph::{CsrGraph, NodeId};
use swscc_parallel::pool::with_pool;
use swscc_sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};

/// Below this many alive nodes, stop parallel rounds and finish with
/// sequential Tarjan on the induced residual subgraph.
const SERIAL_CUTOFF: usize = 512;
/// Cap on Coloring rounds before falling through to the serial finish
/// regardless of residue size.
const MAX_COLOR_ROUNDS: usize = 8;

/// Runs Multistep (legacy entry point; see [`multistep_scc_checked`] for
/// the cancellable form).
pub fn multistep_scc(g: &CsrGraph, cfg: &SccConfig) -> (SccResult, RunReport) {
    multistep_scc_checked(g, cfg, &RunGuard::new())
        .expect("multistep run with a fresh guard cannot abort")
}

/// Runs Multistep under `guard`: cancellable, deadline-aware, and
/// panic-isolating. Phase attribution in the report: the FW-BW peel under
/// `ParFwbw`, Coloring rounds under `ParWcc` (the label-propagation slot),
/// and the serial finish under `RecurFwbw`.
pub fn multistep_scc_checked(
    g: &CsrGraph,
    cfg: &SccConfig,
    guard: &RunGuard,
) -> Result<(SccResult, RunReport), SccError> {
    with_pool(cfg.threads, || {
        let state =
            AlgoState::with_interrupt(g, Arc::clone(guard.interrupt()), cfg.watchdog_factor);
        let collector = Collector::new(cfg.task_log_limit);

        // The whole pipeline runs under panic capture: Multistep has no
        // task queue, so any panic is dirty (a partial peel or collection
        // can split an SCC) and recovery is a full restart.
        let body = driver::catch_phase(|| multistep_body(g, cfg, &state, &collector));
        let rounds = match body {
            Ok(rounds) => rounds,
            Err(message) => return driver::recover_full_restart(g, collector, cfg, message),
        };
        driver::check_interrupt(&state)?;

        let mut report = collector.into_report(Default::default(), 0);
        report.fwbw_trials += rounds; // surface the round count too
        Ok((state.into_result(), report))
    })
}

/// The Multistep pipeline proper; returns the Coloring round count.
fn multistep_body(
    g: &CsrGraph,
    cfg: &SccConfig,
    state: &AlgoState<'_>,
    collector: &Collector,
) -> usize {
    let n = g.num_nodes();

    // 1. Trim (then a live-set hand-off compaction — power-law graphs
    // can lose a large node fraction to the first trim alone).
    collector.phase(Phase::ParTrim, || (par_trim(state), ()));
    state.compact_live(cfg.live_set_compaction);

    // 2. One FW-BW peel aimed straight at the giant SCC.
    let peel_cfg = SccConfig {
        pivot: PivotStrategy::MaxDegreeProduct,
        max_trials: 1,
        ..*cfg
    };
    let outcome = collector.phase(Phase::ParFwbw, || {
        let o = par_fwbw(state, &peel_cfg, INITIAL_COLOR);
        (o.resolved, o)
    });
    // ordering: single-threaded driver statistic (phases run under
    // the pool but this add happens between them).
    collector
        .fwbw_trials
        .fetch_add(outcome.trials, Ordering::Relaxed);
    collector.phase(Phase::ParTrim2, || (par_trim(state), ()));

    // 3. Coloring rounds on the tail. Each hand-off compacts the live
    // set, so the per-round alive gather costs O(|residue|).
    let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let mut rounds = 0usize;
    loop {
        swscc_sync::fault::point("coloring-round");
        if state.should_stop() {
            break;
        }
        state.compact_live(cfg.live_set_compaction);
        let alive: Vec<NodeId> = state.collect_alive();
        if alive.len() <= SERIAL_CUTOFF || rounds >= MAX_COLOR_ROUNDS {
            break;
        }
        rounds += 1;
        collector.phase(Phase::ParWcc, || {
            (coloring_round(state, &labels, &alive), ())
        });
        collector.phase(Phase::ParTrim2, || (par_trim(state), ()));
    }

    // 4. Serial finish on the induced residue (gathered from the
    // already-compacted live set). Skipped on abort: the residue is
    // discarded by the driver anyway, and finishing it would only
    // delay the cancellation.
    if !state.should_stop() {
        serial_finish(state, collector, g);
    }

    rounds
}

/// Sequential Tarjan on the induced residual subgraph; resolves every
/// remaining alive node into a fresh component.
fn serial_finish(state: &AlgoState<'_>, collector: &Collector, g: &CsrGraph) {
    collector.phase(Phase::RecurFwbw, || {
        let alive: Vec<NodeId> = state.collect_alive();
        let count = alive.len();
        if !alive.is_empty() {
            let sub = g.induced_subgraph(&alive);
            let sub_scc = tarjan_scc(&sub);
            let mut comp_map = vec![u32::MAX; sub_scc.num_components()];
            for (i, &v) in alive.iter().enumerate() {
                let sc = sub_scc.component(i as u32) as usize;
                if comp_map[sc] == u32::MAX {
                    comp_map[sc] = state.alloc_component();
                }
                state.resolve_into(v, comp_map[sc]);
            }
        }
        (count, ())
    });
}

/// One Coloring round restricted to nodes whose colors partition the
/// residue: labels respect the color classes (max-label flows only between
/// same-color alive nodes), so every detected SCC stays within one class.
/// Returns the number of nodes resolved.
fn coloring_round(state: &AlgoState<'_>, labels: &[AtomicU32], alive: &[NodeId]) -> usize {
    // ordering: disjoint per-round reset published by the par_iter join
    // (same argument as the Coloring method's round setup).
    alive
        .par_iter()
        .for_each(|&v| labels[v as usize].store(v, Ordering::Relaxed));
    // Bound as in the Coloring method: the max label travels at most one
    // hop per round, plus one no-change round to detect convergence.
    let mut watchdog = state.watchdog("multistep-coloring", state.g.num_nodes() + 1);
    loop {
        if watchdog.check().is_some() {
            // Mid-fixpoint labels are unusable for collection; the caller
            // polls the interrupt and surfaces the abort.
            return 0;
        }
        let changed = AtomicBool::new(false);
        alive.par_iter().for_each(|&v| {
            let cv = state.color(v);
            // ordering: monotone fetch_max convergence — labels only
            // increase, a stale read defers the update to a later sweep,
            // fetch_max never loses the larger value, and the sticky
            // `changed` flag is read only after the sweep's join.
            let mut max = labels[v as usize].load(Ordering::Relaxed);
            for &u in state.g.in_neighbors(v) {
                if u != v && state.color(u) == cv {
                    max = max.max(labels[u as usize].load(Ordering::Relaxed));
                }
            }
            if max > labels[v as usize].load(Ordering::Relaxed) {
                labels[v as usize].fetch_max(max, Ordering::Relaxed);
                changed.store(true, Ordering::Relaxed);
            }
        });
        // ordering: read after the par_iter join above.
        if !changed.load(Ordering::Relaxed) {
            break;
        }
    }
    let resolved = AtomicUsize::new(0);
    // ordering: fixpoint reached; final labels were published by the
    // sweep joins, so root selection races with nothing.
    let roots: Vec<NodeId> = alive
        .par_iter()
        .copied()
        .filter(|&v| labels[v as usize].load(Ordering::Relaxed) == v)
        .collect();
    roots.par_iter().for_each(|&r| {
        let comp = state.alloc_component();
        let cr = state.color(r);
        state.resolve_into(r, comp);
        // ordering: statistic counter — exactness from RMW atomicity,
        // published by the join before the load below.
        resolved.fetch_add(1, Ordering::Relaxed);
        let mut stack = vec![r];
        while let Some(v) = stack.pop() {
            for &u in state.g.in_neighbors(v) {
                // ordering: frozen label classes (see roots above); the
                // counter argument is as above.
                if u != v && state.color(u) == cr && labels[u as usize].load(Ordering::Relaxed) == r
                {
                    state.resolve_into(u, comp);
                    resolved.fetch_add(1, Ordering::Relaxed);
                    stack.push(u);
                }
            }
        }
    });
    // ordering: read after the par_iter join.
    resolved.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(g: &CsrGraph, threads: usize) {
        let (r, _) = multistep_scc(g, &SccConfig::with_threads(threads));
        assert_eq!(
            r.canonical_labels(),
            tarjan_scc(g).canonical_labels(),
            "multistep disagrees with tarjan"
        );
    }

    #[test]
    fn simple_shapes() {
        check(&CsrGraph::from_edges(0, &[]), 1);
        check(&CsrGraph::from_edges(3, &[(0, 1), (1, 0), (2, 2)]), 2);
        check(
            &CsrGraph::from_edges(
                7,
                &[
                    (0, 1),
                    (1, 2),
                    (2, 0),
                    (2, 3),
                    (3, 4),
                    (4, 5),
                    (5, 3),
                    (5, 6),
                ],
            ),
            2,
        );
    }

    #[test]
    fn random_graphs_match_tarjan() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(83);
        for trial in 0..12 {
            let n = rng.random_range(1..200usize);
            let m = rng.random_range(0..4 * n);
            let edges: Vec<_> = (0..m)
                .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
                .collect();
            let g = CsrGraph::from_edges(n, &edges);
            check(&g, 1 + trial % 4);
        }
    }

    #[test]
    fn giant_scc_taken_by_peel() {
        // hub-heavy cycle so the degree-product pivot lands inside it
        let n = 2000u32;
        let mut edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        for i in 0..200u32 {
            edges.push((0, n + i)); // tendrils
        }
        let g = CsrGraph::from_edges((n + 200) as usize, &edges);
        let (r, report) = multistep_scc(&g, &SccConfig::with_threads(2));
        assert_eq!(r.largest_component_size(), 2000);
        assert_eq!(report.resolved_in(Phase::ParFwbw), 2000);
        assert_eq!(report.resolved_in(Phase::ParTrim), 200);
    }

    #[test]
    fn report_covers_all_nodes() {
        use crate::instrument::Phase;
        let g = CsrGraph::from_edges(
            10,
            &[
                (0, 1),
                (1, 0),
                (2, 3),
                (3, 4),
                (4, 2),
                (5, 6),
                (6, 5),
                (7, 8),
                (8, 9),
            ],
        );
        let (_, report) = multistep_scc(&g, &SccConfig::with_threads(2));
        let total: usize = report.phase_resolved.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 10);
        let _ = Phase::all();
    }
}
