//! §4.1 ablation: hybrid set representation vs Color-array-only.
//!
//! "we adopt a hybrid representation … Our experiments revealed that such a
//! hybrid approach resulted in ~10x better performance than using one
//! representation only." With `hybrid_sets = false`, every pivot selection
//! in the recursive phase degenerates to an O(N) scan of the Color array;
//! the gap grows with the number of phase-2 tasks, so Method 2 on a
//! satellite-rich analog shows it best.

use swscc_bench::{ms, print_header, reps, scale, time_algorithm};
use swscc_core::{Algorithm, SccConfig};
use swscc_graph::datasets::Dataset;

fn main() {
    print_header("§4.1 ablation: hybrid sets vs color-scan pivot selection");
    let reps = reps();
    println!(
        "{:<9} {:>12} {:>14} {:>8}",
        "name", "hybrid (ms)", "color-only (ms)", "ratio"
    );
    for d in [
        Dataset::Baidu,
        Dataset::Flickr,
        Dataset::Livej,
        Dataset::Wiki,
    ] {
        let g = d.load(scale(), 42);
        let hybrid_cfg = SccConfig::default();
        let scan_cfg = SccConfig {
            hybrid_sets: false,
            ..SccConfig::default()
        };
        let t_hybrid = time_algorithm(&g, Algorithm::Method2, &hybrid_cfg, reps);
        let t_scan = time_algorithm(&g, Algorithm::Method2, &scan_cfg, reps);
        println!(
            "{:<9} {:>12} {:>14} {:>7.1}x",
            d.name(),
            ms(t_hybrid),
            ms(t_scan),
            t_scan.as_secs_f64() / t_hybrid.as_secs_f64()
        );
    }
    println!("\npaper: hybrid ≈ 10x faster than a single representation");
}
