//! Per-file analysis layered on the token stream: line classification
//! (code / comment / blank), `#[cfg(test)]` / `#[test]` region tracking,
//! and the paragraph-scoped justification lookup shared by every
//! justification-comment rule.

use crate::lexer::{lex, Token, TokenKind};

/// How far above a flagged line a justification comment may sit, in
/// lines, bounded by the first blank line (same contract as the old
/// line-based audit, now fed by real comment tokens).
pub const JUSTIFY_PARAGRAPH_CAP: usize = 25;

/// One `.rs` file: path, text, tokens, and derived line/region info.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    pub text: String,
    pub tokens: Vec<Token>,
    /// Per 1-based line: concatenated text of *plain* (non-doc) comments
    /// touching that line. Doc comments and comment-looking text inside
    /// strings contribute nothing — that's the point.
    comment_on_line: Vec<String>,
    /// Per 1-based line: does any non-trivia token touch it?
    code_on_line: Vec<bool>,
    /// Byte ranges covered by `#[cfg(test)]` / `#[test]` items.
    test_regions: Vec<(usize, usize)>,
    /// Whether the whole file is test/bench code by path.
    path_is_test: bool,
    line_count: usize,
}

impl SourceFile {
    pub fn parse(rel_path: &str, text: String) -> SourceFile {
        let tokens = lex(&text);
        let line_count = text.lines().count().max(1);
        let mut comment_on_line = vec![String::new(); line_count + 2];
        let mut code_on_line = vec![false; line_count + 2];

        for t in &tokens {
            match t.kind {
                TokenKind::Whitespace => {}
                TokenKind::LineComment { doc } | TokenKind::BlockComment { doc } => {
                    if !doc {
                        // Attribute each physical line of the comment its
                        // own slice, so paragraph scans see multi-line
                        // block comments line by line.
                        for (i, part) in t.text(&text).split('\n').enumerate() {
                            let ln = t.line as usize + i;
                            if ln < comment_on_line.len() {
                                comment_on_line[ln].push_str(part);
                            }
                        }
                    }
                }
                _ => {
                    let first = t.line as usize;
                    let last = first + t.text(&text).matches('\n').count();
                    for markable in code_on_line
                        .iter_mut()
                        .take(last.min(line_count) + 1)
                        .skip(first)
                    {
                        *markable = true;
                    }
                }
            }
        }

        let test_regions = find_test_regions(&text, &tokens);
        let path_is_test = {
            let p = rel_path;
            p.contains("/tests/")
                || p.contains("/benches/")
                || p.starts_with("tests/")
                || p.starts_with("benches/")
        };

        SourceFile {
            rel_path: rel_path.to_string(),
            text,
            tokens,
            comment_on_line,
            code_on_line,
            test_regions,
            path_is_test,
            line_count,
        }
    }

    /// Is the byte offset inside test-classified code (a tests/ or
    /// benches/ file, a `#[cfg(test)]` item, or a `#[test]` fn)?
    pub fn in_test_code(&self, offset: usize) -> bool {
        self.path_is_test
            || self
                .test_regions
                .iter()
                .any(|&(s, e)| offset >= s && offset < e)
    }

    /// Whole-file test classification by path alone.
    pub fn path_is_test(&self) -> bool {
        self.path_is_test
    }

    /// 1-based line → is it blank (no tokens but whitespace)?
    fn is_blank(&self, line: usize) -> bool {
        !self.code_on_line.get(line).copied().unwrap_or(false)
            && self
                .comment_on_line
                .get(line)
                .map(|c| c.is_empty())
                .unwrap_or(true)
    }

    /// Does `needle` appear in a plain (non-doc) comment on `line`, or on
    /// an earlier line of the same paragraph (no blank line between,
    /// capped at [`JUSTIFY_PARAGRAPH_CAP`])? This is the justification
    /// contract: a `// SAFETY:` inside a string literal or a doc comment
    /// does not count.
    pub fn has_justification(&self, line: usize, needle: &str) -> bool {
        if self.comment_contains(line, needle) {
            return true;
        }
        for l in (1..line).rev().take(JUSTIFY_PARAGRAPH_CAP) {
            if self.is_blank(l) {
                return false;
            }
            if self.comment_contains(l, needle) {
                return true;
            }
        }
        false
    }

    fn comment_contains(&self, line: usize, needle: &str) -> bool {
        self.comment_on_line
            .get(line)
            .is_some_and(|c| c.contains(needle))
    }

    /// The plain-comment text attributed to a 1-based line.
    pub fn comment_text(&self, line: usize) -> &str {
        self.comment_on_line
            .get(line)
            .map(String::as_str)
            .unwrap_or("")
    }

    pub fn line_count(&self) -> usize {
        self.line_count
    }

    /// Indices (into `self.tokens`) of non-trivia tokens, in order.
    pub fn code_token_indices(&self) -> Vec<usize> {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.kind.is_trivia())
            .map(|(i, _)| i)
            .collect()
    }
}

/// A lightweight pass over the code tokens to find `#[cfg(test)]` /
/// `#[test]` item spans. An attribute whose argument list mentions `test`
/// as a word under `cfg(…)` (covers `cfg(test)` and `cfg(any(test, …))`),
/// or the bare `#[test]`, marks the *next item*: from the attribute to
/// the item's closing `}` (brace-matched on real tokens, so strings and
/// comments can't desynchronize the depth) or terminating `;`.
fn find_test_regions(src: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.kind.is_trivia()).collect();
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        let t = code[i];
        if t.kind == TokenKind::Punct && t.text(src) == "#" {
            // Inner attribute `#![…]` applies to the enclosing item;
            // skip it (the workspace style doesn't gate whole files).
            if code.get(i + 1).is_some_and(|n| n.text(src) == "!") {
                i += 1;
                continue;
            }
            let Some((attr_text, after_attr)) = read_attr(src, &code, i) else {
                i += 1;
                continue;
            };
            if attr_marks_test(&attr_text) {
                let start = t.start;
                let end = item_end(src, &code, after_attr);
                regions.push((start, end));
                // Continue scanning *after* the region so nested attrs
                // inside it don't double-record.
                while i < code.len() && code[i].start < end {
                    i += 1;
                }
                continue;
            }
            i = after_attr;
            continue;
        }
        i += 1;
    }
    regions
}

/// Reads `#[…]` starting at code index `i` (which holds `#`); returns
/// the bracketed text and the code index one past the closing `]`.
fn read_attr(src: &str, code: &[&Token], i: usize) -> Option<(String, usize)> {
    if code.get(i + 1)?.text(src) != "[" {
        return None;
    }
    let mut depth = 0usize;
    let mut text = String::new();
    let mut j = i + 1;
    while j < code.len() {
        let t = code[j].text(src);
        match t {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some((text, j + 1));
                }
            }
            _ => {
                text.push_str(t);
                text.push(' ');
            }
        }
        j += 1;
    }
    None
}

/// `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]`, `#[cfg_attr(test, …)]`.
fn attr_marks_test(attr: &str) -> bool {
    let words: Vec<&str> = attr.split_whitespace().collect();
    if words.first() == Some(&"test") && words.len() <= 1 {
        return true;
    }
    (words.first() == Some(&"cfg") || words.first() == Some(&"cfg_attr")) && words.contains(&"test")
}

/// From the first token after an item's attributes, finds the byte end of
/// that item: the matching `}` of its first `{` (skipping over any `;`
/// inside, e.g. in a where clause default), or the first `;` at depth 0.
fn item_end(src: &str, code: &[&Token], mut j: usize) -> usize {
    // Skip any further (stacked) attributes.
    while j < code.len() && code[j].text(src) == "#" {
        match read_attr(src, code, j) {
            Some((_, after)) => j = after,
            None => break,
        }
    }
    let mut depth = 0usize;
    while j < code.len() {
        match code[j].text(src) {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return code[j].end;
                }
            }
            ";" if depth == 0 => return code[j].end,
            _ => {}
        }
        j += 1;
    }
    src.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_region_covers_module() {
        let src = "fn real() { x(); }\n\n#[cfg(test)]\nmod tests {\n    fn t() { y(); }\n}\n\nfn after() {}\n";
        let f = SourceFile::parse("crates/a/src/lib.rs", src.to_string());
        let x_at = src.find("x()").unwrap();
        let y_at = src.find("y()").unwrap();
        let after_at = src.find("after").unwrap();
        assert!(!f.in_test_code(x_at));
        assert!(f.in_test_code(y_at));
        assert!(!f.in_test_code(after_at));
    }

    #[test]
    fn test_fn_region() {
        let src = "#[test]\nfn t() { z(); }\nfn real() { w(); }\n";
        let f = SourceFile::parse("crates/a/src/lib.rs", src.to_string());
        assert!(f.in_test_code(src.find("z()").unwrap()));
        assert!(!f.in_test_code(src.find("w()").unwrap()));
    }

    #[test]
    fn braces_in_strings_do_not_desync_regions() {
        let src =
            "#[cfg(test)]\nmod t { const S: &str = \"}\"; fn a() { q(); } }\nfn real() { r(); }\n";
        let f = SourceFile::parse("crates/a/src/lib.rs", src.to_string());
        assert!(f.in_test_code(src.find("q()").unwrap()));
        assert!(!f.in_test_code(src.find("r()").unwrap()));
    }

    #[test]
    fn justification_ignores_docs_and_strings() {
        let src =
            "/// // SAFETY: in doc\nlet a = 1;\n\nlet s = \"// SAFETY: in str\";\nlet b = 2;\n";
        let f = SourceFile::parse("crates/a/src/lib.rs", src.to_string());
        assert!(!f.has_justification(2, "// SAFETY:"));
        assert!(!f.has_justification(5, "// SAFETY:"));
    }

    #[test]
    fn justification_paragraph_scope() {
        let src = "// SAFETY: fine here\nlet a = 1;\nlet b = 2;\n\nlet c = 3;\n";
        let f = SourceFile::parse("crates/a/src/lib.rs", src.to_string());
        assert!(f.has_justification(2, "// SAFETY:"));
        assert!(f.has_justification(3, "// SAFETY:"));
        assert!(
            !f.has_justification(5, "// SAFETY:"),
            "blank line ends the paragraph"
        );
    }

    #[test]
    fn block_comment_justifies_each_line_it_spans() {
        let src = "/* SAFETY: spans\nlines */\nlet a = 1;\n";
        let f = SourceFile::parse("crates/a/src/lib.rs", src.to_string());
        assert!(f.has_justification(3, "SAFETY:"));
    }

    #[test]
    fn cfg_attr_and_any_forms_count() {
        for attr in [
            "#[cfg(any(test, doctest))]",
            "#[cfg_attr(test, allow(dead_code))]\n#[cfg(test)]",
        ] {
            let src = format!("{attr}\nmod m {{ fn f() {{ inner(); }} }}\n");
            let f = SourceFile::parse("crates/a/src/lib.rs", src.clone());
            assert!(
                f.in_test_code(src.find("inner").unwrap()),
                "attr {attr:?} should mark test region"
            );
        }
    }
}
