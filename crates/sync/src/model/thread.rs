//! Virtual-thread shims: `scope`/`spawn`/`join`, plus `yield_now`,
//! `sleep`, and `spin_loop` as pure scheduling points (model builds only).
//!
//! Spawned closures run on *real OS threads* (so thread-locals, stack
//! depth, and panics behave exactly as in production), but every spawned
//! thread registers as a virtual thread and immediately parks until the
//! scheduler hands it the token. Outside an explore session the same API
//! degrades to plain scoped OS threads with no instrumentation.
//!
//! The scoped-spawn lifetime erasure follows the crossbeam/std playbook:
//! the closure is boxed and transmuted to `'static` so an OS thread can
//! run it. This is sound because the scope guarantees — on every exit
//! path, including unwinding — that all spawned OS threads are joined
//! before `'scope` ends (see the SAFETY comments at the transmute and the
//! join-on-drop guard).

use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex};

use super::{current, set_current, ModelAbort, Runtime, Status};

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Per-spawned-thread bookkeeping shared between the handle and the scope
/// (the scope needs it to join stragglers and propagate unjoined panics).
struct Child {
    os: Arc<StdMutex<Option<std::thread::JoinHandle<()>>>>,
    panic: Arc<StdMutex<Option<PanicPayload>>>,
    vtid: Option<usize>,
}

pub struct Scope<'scope, 'env: 'scope> {
    children: StdMutex<Vec<Child>>,
    session: Option<(Arc<Runtime>, usize)>,
    /// Invariant over 'scope, covariant-ish over 'env — same variance
    /// story as std::thread::Scope.
    scope: PhantomData<&'scope mut &'scope ()>,
    env: PhantomData<&'env mut &'env ()>,
}

pub struct ScopedJoinHandle<'scope, T> {
    result: Arc<StdMutex<Option<T>>>,
    panic: Arc<StdMutex<Option<PanicPayload>>>,
    os: Arc<StdMutex<Option<std::thread::JoinHandle<()>>>>,
    vtid: Option<usize>,
    session: Option<Arc<Runtime>>,
    _marker: PhantomData<&'scope ()>,
}

/// Drop guard: OS-joins every spawned thread. This is what upholds the
/// `'scope` lifetime transmute even when the scope body unwinds.
struct JoinOnDrop<'a, 'scope, 'env>(&'a Scope<'scope, 'env>);

impl Drop for JoinOnDrop<'_, '_, '_> {
    fn drop(&mut self) {
        let children =
            std::mem::take(&mut *self.0.children.lock().unwrap_or_else(|e| e.into_inner()));
        for c in &children {
            // If we're unwinding under an active session, children may be
            // parked waiting for the token; the abort flag (set by the
            // failing thread) unparks them via the bounded condvar waits.
            if let Some(h) = c.os.lock().unwrap_or_else(|e| e.into_inner()).take() {
                let _ = h.join();
            }
        }
        // Re-stash so the non-unwinding path can still inspect panics.
        *self.0.children.lock().unwrap_or_else(|e| e.into_inner()) = children;
    }
}

/// Drop-in for `std::thread::scope`. Under an active explore session the
/// spawned threads become scheduler-controlled virtual threads; otherwise
/// they are plain OS threads.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
{
    let sc = Scope {
        children: StdMutex::new(Vec::new()),
        session: current(),
        scope: PhantomData,
        env: PhantomData,
    };
    let guard = JoinOnDrop(&sc);
    // recovery: the catch keeps an unwinding scope body from leaking
    // children — the JoinOnDrop guard below OS-joins every spawned thread
    // first, then the payload is re-thrown unchanged (std scope
    // semantics).
    let res = catch_unwind(AssertUnwindSafe(|| f(&sc)));
    // Virtual wait first (the parent must keep scheduling children it
    // hasn't joined — OS-joining a token-starved child would hang the
    // harness), then the guard OS-joins everyone.
    if res.is_ok() {
        if let Some((rt, tid)) = &sc.session {
            let vtids: Vec<usize> = sc
                .children
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .filter_map(|c| c.vtid)
                .collect();
            let g = rt.st();
            let mut g = rt.block_on(g, *tid, |st| {
                vtids
                    .iter()
                    .all(|&v| st.threads[v].status == Status::Finished)
            });
            // Implicit-join edges: everything the children did
            // happens-before the scope returns (std scope semantics).
            for &v in &vtids {
                let child_clock = g.threads[v].clock.clone();
                g.threads[*tid].clock.join(&child_clock);
            }
            drop(g);
        }
    }
    drop(guard);
    match res {
        Err(payload) => resume_unwind(payload),
        Ok(v) => {
            // std semantics: a panic in an unjoined child re-panics here.
            let first = sc
                .children
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .find_map(|c| c.panic.lock().unwrap_or_else(|e| e.into_inner()).take());
            if let Some(p) = first {
                resume_unwind(p);
            }
            v
        }
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let result: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
        let panic: Arc<StdMutex<Option<PanicPayload>>> = Arc::new(StdMutex::new(None));
        let os: Arc<StdMutex<Option<std::thread::JoinHandle<()>>>> = Arc::new(StdMutex::new(None));

        let session = self.session.clone();
        // Register the virtual thread *before* the OS thread exists so the
        // spawn happens-before edge (child inherits parent clock) and the
        // tid are fixed synchronously.
        let vtid = session.as_ref().map(|(rt, ptid)| {
            let mut g = rt.st();
            Runtime::tick(&mut g, *ptid);
            let child = Runtime::register_thread(&mut g);
            let pclock = g.threads[*ptid].clock.clone();
            g.threads[child].clock.join(&pclock);
            rt.wake_all();
            child
        });

        let body = {
            let result = Arc::clone(&result);
            let panic = Arc::clone(&panic);
            let session = session.clone();
            move || {
                if let (Some((rt, _)), Some(vtid)) = (&session, vtid) {
                    set_current(Some((Arc::clone(rt), vtid)));
                    let rt2 = Arc::clone(rt);
                    // recovery: a panicking virtual thread is recorded as
                    // the iteration's failure (ModelAbort unwinds are the
                    // scheduler's own teardown and stay silent); the
                    // thread still marks itself Finished and hands the
                    // token on below, so the session never wedges.
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        // Park until the scheduler picks us for the first
                        // time (this wait can unwind on abort, hence it
                        // lives inside the catch).
                        let g = rt2.st();
                        let g = rt2.wait_for_token(g, vtid);
                        drop(g);
                        f()
                    }));
                    match r {
                        Ok(v) => {
                            *result.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                        }
                        Err(p) => {
                            if p.downcast_ref::<ModelAbort>().is_none() {
                                rt.fail(format!(
                                    "virtual thread {vtid} panicked: {}",
                                    // as_ref(): the payload, not the Box.
                                    super::panic_message(p.as_ref())
                                ));
                                *panic.lock().unwrap_or_else(|e| e.into_inner()) = Some(p);
                            }
                        }
                    }
                    // Mark finished and pass the token on (never panics).
                    let mut g = rt.st();
                    g.threads[vtid].status = Status::Finished;
                    // Completion can satisfy join predicates (see wake_gen).
                    g.wake_gen += 1;
                    rt.hand_off(&mut g, vtid);
                    drop(g);
                    set_current(None);
                } else {
                    // recovery: outside a session this mirrors std scoped
                    // threads — the payload is stashed and re-thrown at
                    // join (or scope exit), never swallowed.
                    match catch_unwind(AssertUnwindSafe(f)) {
                        Ok(v) => {
                            *result.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                        }
                        Err(p) => {
                            *panic.lock().unwrap_or_else(|e| e.into_inner()) = Some(p);
                        }
                    }
                }
            }
        };

        let boxed: Box<dyn FnOnce() + Send + 'scope> = Box::new(body);
        // SAFETY: [inv:scoped-join] lifetime erasure for scoped spawn. The closure (and
        // everything it captures, all outliving 'scope) is only executed
        // by the OS thread stored in `os`, and that thread is joined
        // before 'scope ends on every path: ScopedJoinHandle::join OS-
        // joins it, and the scope's JoinOnDrop guard OS-joins any handle
        // not yet joined — including when the scope body unwinds. No
        // reference captured by the closure can therefore be used after
        // its referent is dropped.
        let boxed: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(boxed) };
        let handle = std::thread::spawn(boxed);
        *os.lock().unwrap_or_else(|e| e.into_inner()) = Some(handle);

        self.children
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Child {
                os: Arc::clone(&os),
                panic: Arc::clone(&panic),
                vtid,
            });

        // Spawning is a scheduling point: the child may run immediately.
        if let Some((rt, ptid)) = &session {
            let g = rt.st();
            let g = rt.yield_point(g, *ptid);
            drop(g);
        }

        ScopedJoinHandle {
            result,
            panic,
            os,
            vtid,
            session: session.map(|(rt, _)| rt),
            _marker: PhantomData,
        }
    }
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Same contract as `std::thread::ScopedJoinHandle::join`: blocks
    /// until the thread finishes, `Err(payload)` if it panicked.
    pub fn join(self) -> std::thread::Result<T> {
        if let (Some(rt), Some(vtid)) = (&self.session, self.vtid) {
            if let Some((_, ptid)) = current() {
                let g = rt.st();
                let mut g = rt.block_on(g, ptid, |st| st.threads[vtid].status == Status::Finished);
                // Join edge: the child's entire execution happens-before
                // the joiner continues.
                let child_clock = g.threads[vtid].clock.clone();
                g.threads[ptid].clock.join(&child_clock);
                drop(g);
            }
        }
        if let Some(h) = self.os.lock().unwrap_or_else(|e| e.into_inner()).take() {
            let _ = h.join();
        }
        if let Some(p) = self.panic.lock().unwrap_or_else(|e| e.into_inner()).take() {
            return Err(p);
        }
        match self.result.lock().unwrap_or_else(|e| e.into_inner()).take() {
            Some(v) => Ok(v),
            // Child unwound with ModelAbort: propagate the abort to the
            // joiner too (the whole run is being torn down).
            None => std::panic::panic_any(ModelAbort),
        }
    }

    pub fn is_finished(&self) -> bool {
        self.os
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .is_none_or(|h| h.is_finished())
    }
}

/// A scheduling point under the model; the real yield otherwise.
pub fn yield_now() {
    if let Some((rt, tid)) = current() {
        let mut g = rt.st();
        Runtime::tick(&mut g, tid);
        let g = rt.yield_point(g, tid);
        drop(g);
    } else {
        std::thread::yield_now();
    }
}

/// Model `sleep` is a scheduling point, not wall-clock time: the modeled
/// programs use sleep only for backoff, and backoff under a deterministic
/// scheduler is just "let somebody else run".
pub fn sleep(dur: std::time::Duration) {
    if current().is_some() {
        yield_now();
    } else {
        std::thread::sleep(dur);
    }
}

/// A spinning thread must let the scheduler run somebody else, otherwise
/// every spin-wait is an instant livelock under the model.
pub fn spin_loop() {
    if current().is_some() {
        yield_now();
    } else {
        std::hint::spin_loop();
    }
}
