//! Baseline (Algorithm 3): the paper's tuned implementation of conventional
//! FW-BW-Trim.
//!
//! Two phases: Par-Trim over the whole graph, then the recursive FW-BW
//! kernel driven by the work queue (K = 1, §4.3). This is the algorithm
//! whose poor scaling on small-world graphs (§5, Fig. 6: "the Baseline
//! method does not scale") motivates Methods 1 and 2 — a single thread ends
//! up processing the giant SCC while the others idle.

use crate::config::SccConfig;
use crate::error::{RunGuard, SccError};
use crate::instrument::RunReport;
use crate::pipeline::{run_pipeline, Pipeline};
use crate::result::SccResult;
use swscc_graph::CsrGraph;

/// Paper default work-queue batch size for the Baseline (§4.3).
pub const BASELINE_K: usize = 1;

/// Runs Algorithm 3 (legacy entry point: no cancellation, panics
/// absorbed or propagated per the default [`crate::PanicPolicy`]).
pub fn baseline_scc(g: &CsrGraph, cfg: &SccConfig) -> (SccResult, RunReport) {
    baseline_scc_checked(g, cfg, &RunGuard::new())
        .expect("baseline run with a fresh guard cannot abort")
}

/// Runs Algorithm 3 under `guard`: cancellable, deadline-aware, and
/// panic-isolating (policy [`crate::SccConfig::on_panic`]). The stage
/// list is `trim,tasks` — see [`Pipeline::stock`].
pub fn baseline_scc_checked(
    g: &CsrGraph,
    cfg: &SccConfig,
    guard: &RunGuard,
) -> Result<(SccResult, RunReport), SccError> {
    run_pipeline(
        g,
        &Pipeline::stock(crate::Algorithm::Baseline).unwrap(),
        cfg,
        guard,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::Phase;
    use crate::tarjan::tarjan_scc;

    fn check(g: &CsrGraph, threads: usize) {
        let cfg = SccConfig::with_threads(threads);
        let (r, report) = baseline_scc(g, &cfg);
        assert_eq!(
            r.canonical_labels(),
            tarjan_scc(g).canonical_labels(),
            "baseline disagrees with tarjan ({threads} threads)"
        );
        let resolved: usize = report.phase_resolved.iter().map(|(_, n)| n).sum();
        assert_eq!(
            resolved,
            g.num_nodes(),
            "phase accounting must cover all nodes"
        );
    }

    #[test]
    fn correct_on_small_graphs() {
        let g = CsrGraph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (5, 6),
            ],
        );
        for threads in [1, 2, 4] {
            check(&g, threads);
        }
    }

    #[test]
    fn correct_on_random_graphs() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(41);
        for trial in 0..10 {
            let n = rng.random_range(1..150usize);
            let m = rng.random_range(0..5 * n);
            let edges: Vec<_> = (0..m)
                .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
                .collect();
            let g = CsrGraph::from_edges(n, &edges);
            check(&g, 1 + trial % 4);
        }
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        let (r, _) = baseline_scc(&g, &SccConfig::with_threads(2));
        assert_eq!(r.num_components(), 0);
    }

    #[test]
    fn dag_fully_trimmed() {
        // On a DAG the trim phase must resolve everything; the recursive
        // phase gets no work (the Patents observation, §5).
        let g = CsrGraph::from_edges(5, &[(4, 3), (3, 2), (2, 1), (1, 0), (4, 1)]);
        let (r, report) = baseline_scc(&g, &SccConfig::with_threads(2));
        assert_eq!(r.num_components(), 5);
        assert_eq!(report.resolved_in(Phase::ParTrim), 5);
        assert_eq!(report.resolved_in(Phase::RecurFwbw), 0);
        assert_eq!(report.initial_tasks, 0);
    }

    #[test]
    fn queue_stats_populated() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        let (_, report) = baseline_scc(&g, &SccConfig::with_threads(1));
        assert!(report.queue.tasks_executed >= 1);
        assert_eq!(
            report.initial_tasks, 1,
            "one color 0 partition seeds phase 2"
        );
    }
}
