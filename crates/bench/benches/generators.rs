//! Criterion microbenchmarks: graph construction throughput.
//!
//! CSR build and the synthetic generators — the substrate costs the
//! evaluation harness amortizes away by reusing generated graphs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use swscc_graph::gen::{bowtie, citation_dag, rmat, road_grid};
use swscc_graph::gen::{BowtieConfig, CitationConfig, RmatConfig, RoadGridConfig};
use swscc_graph::CsrGraph;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);

    group.bench_function("rmat-scale14", |b| {
        b.iter(|| black_box(rmat(&RmatConfig::graph500(14, 8, 42)).num_edges()))
    });

    group.bench_function("bowtie-50k", |b| {
        b.iter(|| {
            let cfg = BowtieConfig {
                num_nodes: 50_000,
                ..Default::default()
            };
            black_box(bowtie(&cfg).graph.num_edges())
        })
    });

    group.bench_function("citation-dag-50k", |b| {
        b.iter(|| {
            let cfg = CitationConfig {
                num_nodes: 50_000,
                ..Default::default()
            };
            black_box(citation_dag(&cfg).num_edges())
        })
    });

    group.bench_function("road-grid-200x200", |b| {
        b.iter(|| {
            let cfg = RoadGridConfig {
                width: 200,
                height: 200,
                ..Default::default()
            };
            black_box(road_grid(&cfg).num_edges())
        })
    });

    group.finish();
}

fn bench_csr_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("csr");
    group.sample_size(10);
    // Pre-generate a raw edge list, then time only the CSR construction.
    let edges: Vec<(u32, u32)> = {
        let g = rmat(&RmatConfig::graph500(14, 8, 7));
        g.edges().collect()
    };
    let n = 1usize << 14;
    group.throughput(criterion::Throughput::Elements(edges.len() as u64));
    group.bench_function("from-edges", |b| {
        b.iter(|| black_box(CsrGraph::from_edges(n, &edges).num_edges()))
    });
    group.bench_function("transpose", |b| {
        let g = CsrGraph::from_edges(n, &edges);
        b.iter(|| black_box(g.transpose().num_edges()))
    });
    group.finish();
}

criterion_group!(benches, bench_generators, bench_csr_build);
criterion_main!(benches);
