//! §2.1/§2.2 ablation: the Trim step itself.
//!
//! McLendon et al.'s Trim extension is what turned the original FW-BW
//! algorithm into a practical method for real graphs: size-1 SCCs dominate
//! the SCC-size distribution, and without Trim each one costs a full
//! FW + BW reachability pair. This harness pits the original FW-BW
//! (no trim) against the paper's Baseline (FW-BW-Trim) and reports how
//! many work-queue tasks each needed.

use swscc_bench::{ms, print_header, reps, scale, time_algorithm};
use swscc_core::{detect_scc, Algorithm, CompactionPolicy, SccConfig};
use swscc_graph::datasets::Dataset;

fn main() {
    print_header("Trim ablation: original FW-BW vs FW-BW-Trim (baseline)");
    let reps = reps();
    println!(
        "{:<9} {:>11} {:>11} {:>13} {:>7} {:>12} {:>14}",
        "name", "fwbw (ms)", "base (ms)", "base-nocompact", "ratio", "fwbw tasks", "baseline tasks"
    );
    for d in [
        Dataset::Livej,
        Dataset::Baidu,
        Dataset::Wiki,
        Dataset::Patents,
    ] {
        let g = d.load(scale(), 42);
        let cfg = SccConfig::default();
        // Live-set compaction off: every post-trim sweep back to O(N).
        let cfg_nocompact = SccConfig {
            live_set_compaction: CompactionPolicy::Never,
            ..cfg
        };
        let t_fwbw = time_algorithm(&g, Algorithm::FwBw, &cfg, reps);
        let t_base = time_algorithm(&g, Algorithm::Baseline, &cfg, reps);
        let t_nocmp = time_algorithm(&g, Algorithm::Baseline, &cfg_nocompact, reps);
        let (_, rep_fwbw) = detect_scc(&g, Algorithm::FwBw, &cfg);
        let (_, rep_base) = detect_scc(&g, Algorithm::Baseline, &cfg);
        println!(
            "{:<9} {:>11} {:>11} {:>13} {:>6.1}x {:>12} {:>14}",
            d.name(),
            ms(t_fwbw),
            ms(t_base),
            ms(t_nocmp),
            t_fwbw.as_secs_f64() / t_base.as_secs_f64(),
            rep_fwbw.queue.tasks_executed,
            rep_base.queue.tasks_executed,
        );
    }
    println!("\npaper §2.1: Trim 'resulted in a significant performance improvement'");
    println!("base-nocompact: baseline with --live-compaction never (dense sweeps)");
}
