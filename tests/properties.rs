//! Property-based tests (proptest): partition validity on random graphs.

use proptest::prelude::*;
use swscc::graph::bfs::{bfs_levels, Direction, UNREACHED};
use swscc::{detect_scc, Algorithm, CsrGraph, SccConfig};

/// Strategy: a random directed graph with up to `max_n` nodes.
fn arb_graph(max_n: usize) -> impl Strategy<Value = CsrGraph> {
    (1..max_n).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..4 * n)
            .prop_map(move |edges| CsrGraph::from_edges(n, &edges))
    })
}

/// Checks that an assignment is exactly the SCC partition: nodes share a
/// component iff they are mutually reachable. O(N·(N+M)) — test-only.
fn is_scc_partition(g: &CsrGraph, r: &swscc::SccResult) -> bool {
    for src in g.nodes() {
        let fw = bfs_levels(g, src, Direction::Forward);
        let bw = bfs_levels(g, src, Direction::Backward);
        for v in g.nodes() {
            let mutual = fw[v as usize] != UNREACHED && bw[v as usize] != UNREACHED;
            if mutual != r.same_component(src, v) {
                return false;
            }
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tarjan_produces_true_scc_partition(g in arb_graph(40)) {
        let (r, _) = detect_scc(&g, Algorithm::Tarjan, &SccConfig::default());
        prop_assert!(is_scc_partition(&g, &r));
    }

    #[test]
    fn method2_produces_true_scc_partition(g in arb_graph(40)) {
        let (r, _) = detect_scc(&g, Algorithm::Method2, &SccConfig::with_threads(2));
        prop_assert!(is_scc_partition(&g, &r));
    }

    #[test]
    fn all_algorithms_agree(g in arb_graph(80)) {
        let cfg = SccConfig::with_threads(2);
        let (want, _) = detect_scc(&g, Algorithm::Tarjan, &cfg);
        let want = want.canonical_labels();
        for a in Algorithm::all().into_iter().filter(|&a| a != Algorithm::Tarjan) {
            let (r, _) = detect_scc(&g, a, &cfg);
            prop_assert_eq!(r.canonical_labels(), want.clone(), "{} disagrees", a.name());
        }
    }

    #[test]
    fn component_count_bounded(g in arb_graph(60)) {
        let (r, _) = detect_scc(&g, Algorithm::Method1, &SccConfig::default());
        prop_assert!(r.num_components() <= g.num_nodes().max(1));
        prop_assert_eq!(r.component_sizes().iter().sum::<usize>(), g.num_nodes());
        prop_assert!(r.check_dense());
    }

    #[test]
    fn condensation_edge_endpoints_valid(g in arb_graph(50)) {
        let (r, _) = detect_scc(&g, Algorithm::Method2, &SccConfig::default());
        let dag = r.condensation(&g);
        prop_assert_eq!(dag.num_nodes(), r.num_components());
        for (u, v) in dag.edges() {
            prop_assert!(u != v, "condensation self-loop {}", u);
        }
    }

    #[test]
    fn reversing_graph_preserves_sccs(g in arb_graph(50)) {
        // SCCs of G and of its transpose are identical.
        let cfg = SccConfig::default();
        let (a, _) = detect_scc(&g, Algorithm::Tarjan, &cfg);
        let (b, _) = detect_scc(&g.transpose(), Algorithm::Tarjan, &cfg);
        prop_assert_eq!(a.canonical_labels(), b.canonical_labels());
    }

    #[test]
    fn adding_parallel_edges_changes_nothing(g in arb_graph(40)) {
        let cfg = SccConfig::default();
        let (before, _) = detect_scc(&g, Algorithm::Tarjan, &cfg);
        let mut edges: Vec<_> = g.edges().collect();
        let dup: Vec<_> = edges.iter().copied().take(10).collect();
        edges.extend(dup);
        let g2 = CsrGraph::from_edges(g.num_nodes(), &edges);
        let (after, _) = detect_scc(&g2, Algorithm::Method2, &cfg);
        prop_assert_eq!(before.canonical_labels(), after.canonical_labels());
    }
}
