//@ path: crates/core/src/bad_recovery.rs
//! Known-bad: `catch_unwind` without a recovery contract.

pub fn swallows_panics(f: impl FnOnce()) {
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)); //~ recovery
}

pub fn documented(f: impl FnOnce()) {
    // recovery: the closure owns no shared state; a caught panic leaves
    // nothing torn and the caller simply retries.
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
}
