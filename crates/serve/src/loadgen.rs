//! Deterministic load generator for the serve daemon: seeded open-loop
//! clients, a configurable query mix, jittered exponential backoff on
//! `Overloaded`, and a latency/throughput report.
//!
//! Determinism contract: node ids and verb choices derive from a
//! splitmix64 chain seeded by `seed + client index`, so two runs
//! against the same server state issue the same request sequence
//! (timing, and therefore shed/deadline outcomes, still depend on the
//! machine — the *workload* is reproducible, the *weather* is not).
//!
//! Failure taxonomy mirrors the acceptance criterion "availability
//! degrades to typed errors only": every response the protocol can
//! name — including `Overloaded`, `DeadlineExceeded`, `OutOfRange`,
//! and `RecomputeFailed` — counts as *typed*; only transport-level
//! surprises that survive a reconnect retry (or a response that does
//! not parse) land in `non_typed_failures`, the counter CI asserts is
//! zero under fault injection.

use crate::client::Client;
use crate::net::Endpoint;
use crate::protocol::{FrameError, Request, Response};
use std::time::{Duration, Instant};
use swscc_sync::Mutex;

/// Relative weights of the request mix. Zero-weight verbs are never
/// issued; if every weight is zero the mix degenerates to `scc-id`.
#[derive(Clone, Copy, Debug)]
pub struct Mix {
    /// Weight of `same-scc(u, v)`.
    pub same_scc: u32,
    /// Weight of `scc-id(u)`.
    pub scc_id: u32,
    /// Weight of `condensation-reach(u, v)`.
    pub reach: u32,
    /// Weight of `stats`.
    pub stats: u32,
    /// Weight of admin `recompute`.
    pub recompute: u32,
    /// Weight of `insert-edge(u, v)` (0 by default: read-only load).
    pub insert_edge: u32,
    /// Weight of `delete-edge(u, v)` (0 by default: read-only load).
    pub delete_edge: u32,
}

impl Default for Mix {
    fn default() -> Mix {
        Mix {
            same_scc: 45,
            scc_id: 30,
            reach: 15,
            stats: 8,
            recompute: 2,
            insert_edge: 0,
            delete_edge: 0,
        }
    }
}

impl Mix {
    fn total(&self) -> u64 {
        u64::from(self.same_scc)
            + u64::from(self.scc_id)
            + u64::from(self.reach)
            + u64::from(self.stats)
            + u64::from(self.recompute)
            + u64::from(self.insert_edge)
            + u64::from(self.delete_edge)
    }
}

/// Load-generation parameters.
#[derive(Clone, Debug)]
pub struct LoadgenOptions {
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests issued per client (before retries).
    pub requests_per_client: usize,
    /// Base seed of the deterministic request stream.
    pub seed: u64,
    /// Request mix weights.
    pub mix: Mix,
    /// Deadline budget stamped on every query, milliseconds
    /// (0 = server default).
    pub deadline_ms: u32,
    /// Retry budget per request for `Overloaded` responses and for
    /// reconnects after a dropped connection.
    pub max_retries: u32,
    /// Base of the jittered exponential backoff on `Overloaded`.
    pub backoff_base_ms: u64,
    /// Client-side socket timeout, both directions.
    pub io_timeout: Duration,
}

impl Default for LoadgenOptions {
    fn default() -> LoadgenOptions {
        LoadgenOptions {
            clients: 4,
            requests_per_client: 250,
            seed: 0x10AD_6E4A,
            mix: Mix::default(),
            deadline_ms: 250,
            max_retries: 6,
            backoff_base_ms: 4,
            io_timeout: Duration::from_secs(10),
        }
    }
}

/// Aggregated outcome of one loadgen run.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Requests issued (retries of the same request not counted).
    pub attempted: u64,
    /// Requests that got a success-variant answer.
    pub ok: u64,
    /// Requests answered `OutOfRange` (typed).
    pub out_of_range: u64,
    /// `Overloaded` responses observed (every shed counts, including
    /// ones later resolved by retry).
    pub overloaded: u64,
    /// Requests that stayed `Overloaded` after the retry budget.
    pub gave_up: u64,
    /// `DeadlineExceeded` responses (typed; not retried).
    pub deadline_misses: u64,
    /// `RecomputeFailed` responses (typed — the server degraded
    /// as designed).
    pub recompute_failed: u64,
    /// `Mutated` responses — writes that published a repaired epoch
    /// (also counted in `ok`).
    pub mutated: u64,
    /// `MutateFailed` responses (typed — the engine poisoned itself
    /// and heals on the next write).
    pub mutate_failed: u64,
    /// Successful reconnects after a dropped connection.
    pub reconnects: u64,
    /// Transport/protocol failures that survived the retry budget —
    /// the count the fault soak asserts is zero.
    pub non_typed_failures: u64,
    /// Median answered-request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile answered-request latency, microseconds.
    pub p99_us: u64,
    /// Worst answered-request latency, microseconds.
    pub max_us: u64,
    /// Wall-clock of the whole run, milliseconds.
    pub elapsed_ms: u64,
    /// Answered requests per second over the whole run.
    pub throughput_rps: f64,
}

impl LoadReport {
    /// Hand-rolled JSON (no serde in this workspace); flat object,
    /// stable key order — what CI uploads as the latency artifact.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"attempted\":{},\"ok\":{},\"out_of_range\":{},\"overloaded\":{},",
                "\"gave_up\":{},\"deadline_misses\":{},\"recompute_failed\":{},",
                "\"mutated\":{},\"mutate_failed\":{},",
                "\"reconnects\":{},\"non_typed_failures\":{},\"p50_us\":{},",
                "\"p99_us\":{},\"max_us\":{},\"elapsed_ms\":{},\"throughput_rps\":{:.1}}}"
            ),
            self.attempted,
            self.ok,
            self.out_of_range,
            self.overloaded,
            self.gave_up,
            self.deadline_misses,
            self.recompute_failed,
            self.mutated,
            self.mutate_failed,
            self.reconnects,
            self.non_typed_failures,
            self.p50_us,
            self.p99_us,
            self.max_us,
            self.elapsed_ms,
            self.throughput_rps,
        )
    }
}

/// splitmix64 — the same deterministic chain the chaos battery uses.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-worker tallies merged into the final report after the join.
#[derive(Default)]
struct WorkerOutcome {
    report: LoadReport,
    latencies_us: Vec<u64>,
}

/// Runs the generator against `endpoint` and aggregates the report.
/// Fails (with a human-readable message) only if the server cannot be
/// reached at all for the initial stats probe — everything after that
/// is absorbed into the report's counters.
pub fn run(endpoint: &Endpoint, opts: &LoadgenOptions) -> Result<LoadReport, String> {
    let mut probe = Client::connect(endpoint, opts.io_timeout)
        .map_err(|e| format!("cannot connect to {endpoint}: {e}"))?;
    let stats = probe
        .stats()
        .map_err(|e| format!("initial stats probe failed: {e}"))?;
    drop(probe);
    // Draw node ids over the real id space plus a 1/64 overhang so the
    // OutOfRange path stays exercised; clamp to u32 (the wire width).
    let id_space = (stats.num_nodes + stats.num_nodes / 64 + 1).min(u64::from(u32::MAX)) as u32;

    let outcomes: Mutex<Vec<WorkerOutcome>> = Mutex::new(Vec::new());
    let started = Instant::now();
    swscc_sync::thread::scope(|s| {
        for client_idx in 0..opts.clients {
            let outcomes = &outcomes;
            s.spawn(move || {
                let outcome = run_worker(endpoint, opts, client_idx as u64, id_space);
                outcomes.lock().push(outcome);
            });
        }
    });
    let elapsed = started.elapsed();

    let mut report = LoadReport::default();
    let mut latencies: Vec<u64> = Vec::new();
    for w in outcomes.lock().drain(..) {
        report.attempted += w.report.attempted;
        report.ok += w.report.ok;
        report.out_of_range += w.report.out_of_range;
        report.overloaded += w.report.overloaded;
        report.gave_up += w.report.gave_up;
        report.deadline_misses += w.report.deadline_misses;
        report.recompute_failed += w.report.recompute_failed;
        report.mutated += w.report.mutated;
        report.mutate_failed += w.report.mutate_failed;
        report.reconnects += w.report.reconnects;
        report.non_typed_failures += w.report.non_typed_failures;
        latencies.extend(w.latencies_us);
    }
    latencies.sort_unstable();
    report.p50_us = percentile(&latencies, 50);
    report.p99_us = percentile(&latencies, 99);
    report.max_us = latencies.last().copied().unwrap_or(0);
    report.elapsed_ms = elapsed.as_millis() as u64;
    let secs = elapsed.as_secs_f64();
    report.throughput_rps = if secs > 0.0 {
        latencies.len() as f64 / secs
    } else {
        0.0
    };
    Ok(report)
}

fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() * pct).div_ceil(100).max(1) - 1;
    sorted[rank.min(sorted.len() - 1)]
}

fn pick_request(rng: &mut u64, mix: &Mix, id_space: u32, deadline_ms: u32) -> Request {
    let node = |rng: &mut u64| (splitmix64(rng) % u64::from(id_space.max(1))) as u32;
    let total = mix.total();
    if total == 0 {
        let u = node(rng);
        return Request::SccId { u, deadline_ms };
    }
    let mut draw = splitmix64(rng) % total;
    for (weight, verb) in [
        (u64::from(mix.same_scc), 0u8),
        (u64::from(mix.scc_id), 1),
        (u64::from(mix.reach), 2),
        (u64::from(mix.stats), 3),
        (u64::from(mix.recompute), 4),
        (u64::from(mix.insert_edge), 5),
        (u64::from(mix.delete_edge), 6),
    ] {
        if draw < weight {
            return match verb {
                0 => Request::SameScc {
                    u: node(rng),
                    v: node(rng),
                    deadline_ms,
                },
                1 => Request::SccId {
                    u: node(rng),
                    deadline_ms,
                },
                2 => Request::CondReach {
                    u: node(rng),
                    v: node(rng),
                    deadline_ms,
                },
                3 => Request::Stats,
                4 => Request::Recompute,
                5 => Request::InsertEdge {
                    u: node(rng),
                    v: node(rng),
                    deadline_ms,
                },
                _ => Request::DeleteEdge {
                    u: node(rng),
                    v: node(rng),
                    deadline_ms,
                },
            };
        }
        draw -= weight;
    }
    unreachable!("draw < total by construction");
}

fn run_worker(
    endpoint: &Endpoint,
    opts: &LoadgenOptions,
    client_idx: u64,
    id_space: u32,
) -> WorkerOutcome {
    let mut out = WorkerOutcome::default();
    let mut rng = opts.seed.wrapping_add(client_idx.wrapping_mul(0xA5A5_A5A5));
    let mut client = Client::connect(endpoint, opts.io_timeout).ok();
    for _ in 0..opts.requests_per_client {
        let request = pick_request(&mut rng, &opts.mix, id_space, opts.deadline_ms);
        out.report.attempted += 1;
        let mut settled = false;
        for attempt in 0..=opts.max_retries {
            let Some(c) = client.as_mut() else {
                // Reconnect path: a dropped connection is a typed,
                // recoverable condition as long as the listener answers.
                match Client::connect(endpoint, opts.io_timeout) {
                    Ok(c) => {
                        out.report.reconnects += 1;
                        client = Some(c);
                        continue;
                    }
                    Err(_) => {
                        backoff(&mut rng, opts, attempt);
                        continue;
                    }
                }
            };
            let started = Instant::now();
            match c.call(&request) {
                Ok(response) => {
                    out.latencies_us
                        .push(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                    match response {
                        Response::Overloaded { retry_after_ms } => {
                            out.report.overloaded += 1;
                            backoff_hinted(&mut rng, opts, attempt, retry_after_ms);
                            continue; // retry the same request
                        }
                        Response::DeadlineExceeded => out.report.deadline_misses += 1,
                        Response::OutOfRange => out.report.out_of_range += 1,
                        Response::RecomputeFailed { .. } => out.report.recompute_failed += 1,
                        Response::Mutated(_) => {
                            out.report.mutated += 1;
                            out.report.ok += 1;
                        }
                        Response::MutateFailed { .. } => out.report.mutate_failed += 1,
                        Response::BadRequest { .. } | Response::Internal { .. } => {
                            // The generator only sends well-formed
                            // requests; these mean a server-side bug.
                            out.report.non_typed_failures += 1;
                        }
                        _ => out.report.ok += 1,
                    }
                    settled = true;
                    break;
                }
                Err(FrameError::ConnectionClosed) | Err(FrameError::Io(_)) => {
                    client = None; // force reconnect on next attempt
                    continue;
                }
                Err(_protocol_garbage) => {
                    out.report.non_typed_failures += 1;
                    client = None;
                    settled = true;
                    break;
                }
            }
        }
        if !settled {
            // Retry budget exhausted while shed or unreachable.
            if client.is_some() {
                out.report.gave_up += 1;
            } else {
                out.report.non_typed_failures += 1;
            }
        }
    }
    out
}

/// Jittered exponential backoff: `base * 2^attempt + jitter(0..base)`,
/// capped at 200ms so an overloaded-but-alive server is re-probed at a
/// humane rate.
fn backoff(rng: &mut u64, opts: &LoadgenOptions, attempt: u32) {
    let base = opts.backoff_base_ms.max(1);
    let exp = base.saturating_mul(1u64 << attempt.min(6));
    let jitter = splitmix64(rng) % base;
    swscc_sync::thread::sleep(Duration::from_millis((exp + jitter).min(200)));
}

/// Backoff honouring the server's `retry_after` hint as a floor.
fn backoff_hinted(rng: &mut u64, opts: &LoadgenOptions, attempt: u32, retry_after_ms: u32) {
    let base = opts.backoff_base_ms.max(1);
    let exp = base.saturating_mul(1u64 << attempt.min(6));
    let jitter = splitmix64(rng) % base;
    let ms = (exp + jitter).max(u64::from(retry_after_ms)).min(200);
    swscc_sync::thread::sleep(Duration::from_millis(ms));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_draw_is_deterministic_and_respects_zero_weights() {
        let mix = Mix {
            same_scc: 0,
            scc_id: 1,
            reach: 0,
            stats: 0,
            recompute: 0,
            insert_edge: 0,
            delete_edge: 0,
        };
        let mut a = 42u64;
        let mut b = 42u64;
        for _ in 0..100 {
            let ra = pick_request(&mut a, &mix, 1000, 50);
            let rb = pick_request(&mut b, &mix, 1000, 50);
            assert_eq!(ra, rb, "same seed must give same stream");
            assert!(
                matches!(ra, Request::SccId { .. }),
                "zero-weight verbs must never be drawn, got {ra:?}"
            );
        }
    }

    #[test]
    fn all_zero_mix_degenerates_safely() {
        let mix = Mix {
            same_scc: 0,
            scc_id: 0,
            reach: 0,
            stats: 0,
            recompute: 0,
            insert_edge: 0,
            delete_edge: 0,
        };
        let mut rng = 7;
        assert!(matches!(
            pick_request(&mut rng, &mix, 10, 0),
            Request::SccId { .. }
        ));
    }

    #[test]
    fn write_mix_draws_mutation_verbs_deterministically() {
        let mix = Mix {
            same_scc: 0,
            scc_id: 0,
            reach: 0,
            stats: 0,
            recompute: 0,
            insert_edge: 3,
            delete_edge: 1,
        };
        let (mut a, mut b) = (9u64, 9u64);
        let (mut inserts, mut deletes) = (0u32, 0u32);
        for _ in 0..200 {
            let ra = pick_request(&mut a, &mix, 100, 25);
            let rb = pick_request(&mut b, &mix, 100, 25);
            assert_eq!(ra, rb, "same seed must give same stream");
            match ra {
                Request::InsertEdge { deadline_ms, .. } => {
                    assert_eq!(deadline_ms, 25);
                    inserts += 1;
                }
                Request::DeleteEdge { deadline_ms, .. } => {
                    assert_eq!(deadline_ms, 25);
                    deletes += 1;
                }
                other => panic!("read verb drawn from write-only mix: {other:?}"),
            }
        }
        assert!(inserts > deletes, "3:1 weighting must show in 200 draws");
        assert!(deletes > 0, "delete weight 1 must still be drawn");
    }

    #[test]
    fn percentile_edges() {
        assert_eq!(percentile(&[], 99), 0);
        assert_eq!(percentile(&[5], 50), 5);
        assert_eq!(percentile(&[5], 99), 5);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
    }

    #[test]
    fn report_json_is_flat_and_parsable_by_eye() {
        let r = LoadReport {
            attempted: 10,
            ok: 9,
            p99_us: 1234,
            throughput_rps: 99.95,
            ..LoadReport::default()
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"ok\":9"));
        assert!(j.contains("\"p99_us\":1234"));
        assert!(j.contains("\"throughput_rps\":"));
    }
}
