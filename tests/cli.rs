//! Integration tests for the `swscc` command-line tool, driving the real
//! binary via `CARGO_BIN_EXE`.

use std::process::{Command, Output};

fn swscc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_swscc"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

#[test]
fn help_exits_zero() {
    let o = swscc(&["help"]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("USAGE"));
}

#[test]
fn no_args_shows_help() {
    let o = swscc(&[]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let o = swscc(&["frobnicate"]);
    assert!(!o.status.success());
    assert!(String::from_utf8_lossy(&o.stderr).contains("unknown command"));
}

#[test]
fn scc_on_builtin_dataset() {
    let o = swscc(&[
        "scc",
        "dataset:baidu",
        "--scale",
        "0.02",
        "--algo",
        "method2",
    ]);
    assert!(
        o.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&o.stderr)
    );
    let out = stdout(&o);
    assert!(out.contains("components:"));
    assert!(out.contains("largest scc:"));
}

#[test]
fn scc_all_algorithms_agree_via_cli() {
    let mut counts = Vec::new();
    for algo in [
        "tarjan",
        "kosaraju",
        "pearce",
        "fwbw",
        "coloring",
        "baseline",
        "method1",
        "method2",
        "multistep",
    ] {
        let o = swscc(&["scc", "dataset:flickr", "--scale", "0.02", "--algo", algo]);
        assert!(o.status.success(), "{algo} failed");
        let out = stdout(&o);
        let line = out
            .lines()
            .find(|l| l.starts_with("components:"))
            .expect("components line");
        counts.push((algo, line.to_string()));
    }
    let first = counts[0].1.clone();
    for (algo, line) in &counts {
        assert_eq!(line, &first, "{algo} component count differs");
    }
}

#[test]
fn unknown_algorithm_fails_gracefully() {
    let o = swscc(&["scc", "dataset:baidu", "--algo", "magic"]);
    assert!(!o.status.success());
    assert!(String::from_utf8_lossy(&o.stderr).contains("unknown algorithm"));
}

#[test]
fn unknown_dataset_fails_gracefully() {
    let o = swscc(&["scc", "dataset:nope"]);
    assert!(!o.status.success());
    assert!(String::from_utf8_lossy(&o.stderr).contains("unknown dataset"));
}

#[test]
fn gen_stats_condense_pipeline() {
    let dir = std::env::temp_dir().join("swscc_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let graph_txt = dir.join("g.txt");
    let graph_bin = dir.join("g.bin");
    let dag = dir.join("dag.txt");

    // gen text + binary
    let o = swscc(&[
        "gen",
        "orkut",
        "--out",
        graph_txt.to_str().unwrap(),
        "--scale",
        "0.02",
    ]);
    assert!(o.status.success());
    let o = swscc(&[
        "gen",
        "orkut",
        "--out",
        graph_bin.to_str().unwrap(),
        "--scale",
        "0.02",
    ]);
    assert!(o.status.success());

    // stats on both formats agree on the edge count line
    let s_txt = stdout(&swscc(&["stats", graph_txt.to_str().unwrap()]));
    let s_bin = stdout(&swscc(&["stats", graph_bin.to_str().unwrap()]));
    let edges = |s: &str| {
        s.lines()
            .find(|l| l.starts_with("edges:"))
            .map(str::to_string)
            .expect("edges line")
    };
    assert_eq!(edges(&s_txt), edges(&s_bin));

    // condense produces a loadable DAG
    let o = swscc(&[
        "condense",
        graph_bin.to_str().unwrap(),
        "--out",
        dag.to_str().unwrap(),
    ]);
    assert!(o.status.success());
    let o = swscc(&["stats", dag.to_str().unwrap()]);
    assert!(o.status.success());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scc_histogram_flag() {
    let o = swscc(&["scc", "dataset:patents", "--scale", "0.02", "--histogram"]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("scc-size histogram"));
    // a DAG: every SCC is size 1, so exactly one histogram bin
    assert!(stdout(&o).contains("size ≥ 1"));
}

#[test]
fn missing_file_fails() {
    let o = swscc(&["stats", "/nonexistent/graph.txt"]);
    assert!(!o.status.success());
}

#[test]
fn pipeline_flag_runs_with_breakdown() {
    let o = swscc(&[
        "scc",
        "dataset:baidu",
        "--scale",
        "0.02",
        "--pipeline",
        "trim,fwbw,trim2,wcc,tasks",
    ]);
    assert!(
        o.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&o.stderr)
    );
    let out = stdout(&o);
    assert!(out.contains("pipeline:    trim,fwbw,trim2,wcc,tasks"));
    assert!(out.contains("components:"));
    // per-phase Fig. 7/8-style breakdown: resolved counts, not just times
    assert!(out.contains("resolved"), "breakdown missing:\n{out}");
}

#[test]
fn pipeline_matches_algo_via_cli() {
    let components = |o: &Output| {
        stdout(o)
            .lines()
            .find(|l| l.starts_with("components:"))
            .expect("components line")
            .to_string()
    };
    let by_algo = swscc(&[
        "scc",
        "dataset:flickr",
        "--scale",
        "0.02",
        "--algo",
        "method2",
    ]);
    let by_pipeline = swscc(&[
        "scc",
        "dataset:flickr",
        "--scale",
        "0.02",
        "--pipeline",
        "trim,fwbw,trim,trim2,trim,wcc,tasks",
    ]);
    assert!(by_algo.status.success() && by_pipeline.status.success());
    assert_eq!(components(&by_algo), components(&by_pipeline));
}

#[test]
fn invalid_pipeline_exits_config_code() {
    // 'wcc' is not a terminal stage: composition is rejected up front.
    let o = swscc(&["scc", "dataset:baidu", "--pipeline", "trim,wcc"]);
    assert_eq!(o.status.code(), Some(2));
    let err = String::from_utf8_lossy(&o.stderr).into_owned();
    assert!(err.contains("invalid --pipeline"), "stderr: {err}");

    // unknown stage name
    let o = swscc(&[
        "scc",
        "dataset:baidu",
        "--pipeline",
        "trim,frobnicate,tasks",
    ]);
    assert_eq!(o.status.code(), Some(2));

    // empty spec
    let o = swscc(&["scc", "dataset:baidu", "--pipeline", ","]);
    assert_eq!(o.status.code(), Some(2));
}

#[test]
fn pipeline_and_algo_flags_conflict() {
    let o = swscc(&[
        "scc",
        "dataset:baidu",
        "--algo",
        "method2",
        "--pipeline",
        "trim,tasks",
    ]);
    assert_eq!(o.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&o.stderr).contains("mutually exclusive"));
}
