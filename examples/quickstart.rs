//! Quickstart: build a graph, detect SCCs, inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use swscc::{detect_scc, Algorithm, CsrGraph, SccConfig};

fn main() {
    // A small directed graph: a 3-cycle feeding a 2-cycle, plus stragglers.
    //
    //   0 -> 1 -> 2 -> 0        (SCC A)
    //             2 -> 3
    //   3 <-> 4                 (SCC B)
    //   4 -> 5 -> 6             (trivial SCCs)
    let g = CsrGraph::from_edges(
        7,
        &[
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 4),
            (4, 3),
            (4, 5),
            (5, 6),
        ],
    );

    println!("graph: {} nodes, {} edges", g.num_nodes(), g.num_edges());

    // Run the paper's full pipeline (Method 2). For small inputs every
    // algorithm returns in microseconds; the config mainly matters at scale.
    let cfg = SccConfig::with_threads(2);
    let (result, report) = detect_scc(&g, Algorithm::Method2, &cfg);

    println!("components: {}", result.num_components());
    println!("largest:    {}", result.largest_component_size());
    println!("trivial:    {}", result.num_trivial());
    for c in 0..result.num_components() as u32 {
        println!("  component {c}: {:?}", result.members(c));
    }

    // Every algorithm in the crate produces the identical partition.
    let (tarjan, _) = detect_scc(&g, Algorithm::Tarjan, &cfg);
    assert_eq!(result.canonical_labels(), tarjan.canonical_labels());
    println!("method2 matches tarjan ✓");

    // The condensation DAG is often what applications actually consume.
    let dag = result.condensation(&g);
    println!(
        "condensation: {} super-nodes, {} edges",
        dag.num_nodes(),
        dag.num_edges()
    );

    println!("total time: {:?}", report.total_time);
}
