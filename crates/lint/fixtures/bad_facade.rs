//@ path: crates/core/src/bad_facade.rs
//! Known-bad: raw concurrency primitives outside the swscc-sync facade.
// Mentions in comments are fine: std::sync::atomic, parking_lot::Mutex.

use std::sync::atomic::AtomicUsize; //~ facade

pub fn spawn_direct() {
    std::thread::spawn(|| {}); //~ facade
}

pub fn split_path_evasion() {
    let _v = std:: //~ facade
        sync::atomic::AtomicUsize::new(0);
}

pub fn absolute_path_evasion() {
    let _m = ::parking_lot::Mutex::new(()); //~ facade
}

pub fn string_mention_is_fine() {
    let _s = "std::sync::atomic::AtomicUsize";
}
