//! Multi-pivot reachability ("MultiReach"): the batched forward+backward
//! search that resolves many SCCs per round over the live residue.
//!
//! After the giant-SCC peel the residue holds thousands of small SCCs.
//! The work-queue tail resolves them one task at a time with nested
//! sequential DFS; multi-search (Wang et al., *Parallel Strong
//! Connectivity Based on Faster Reachability*, arXiv 2303.04934) instead
//! batches `B` pivots into ONE level-synchronous BFS whose frontier
//! carries `(vertex, pivot-label)` pairs:
//!
//! * the reach sets live in a concurrent hash table ([`ReachTable`])
//!   keyed by the packed pair,
//! * the frontier is a blocked hash bag ([`HashBag`]) published in
//!   per-worker blocks and claimed whole-block by the expanding
//!   workers,
//! * each level runs **sparse** (claim frontier blocks, push neighbor
//!   pairs — top-down) or **dense** (sweep the whole alive × label
//!   domain bottom-up) depending on the pair-frontier size — the
//!   vertical-granularity switch of the paper, which pays off when a
//!   hub vertex appears in the frontier under many labels at once.
//!
//! One round runs the search twice (forward over out-edges, backward
//! over in-edges) and intersects: `v ∈ SCC(pivot_j)` iff `(v, j)` is in
//! both tables. Labels of one SCC's members agree — `L(v) = F(v) ∩ B(v)`
//! is exactly the set of pivots inside `SCC(v)` — so taking the minimum
//! label per vertex assigns every member of a multi-pivot SCC to the
//! same component, and [`resolve_round`] claims each of them exactly
//! once.
//!
//! Searches only *read* [`AlgoState`] (colors gate expansion to the
//! pivot's partition); all writes go to round-local tables and bags.
//! That asymmetry is what lets the `multisearch` pipeline kernel degrade
//! cleanly to the two-level work queue when a search panics: shared
//! state is untouched. Only [`resolve_round`] writes claims.

use crate::state::{AlgoState, Color};
use rayon::prelude::*;
use swscc_graph::bfs::Direction;
use swscc_graph::{GraphView, NodeId};
use swscc_parallel::hashbag::{HashBag, BLOCK_SIZE};
use swscc_parallel::pool::propagate_worker_panic;
use swscc_parallel::reachtable::ReachTable;
use swscc_sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Degree estimate in the dense/sparse cost model of [`go_dense`]: a
/// sparse level probes ~`frontier × degree` slots, a dense one probes
/// ~`domain + missing × degree` (one present-check per cell, an
/// early-exit neighbor scan per missing cell).
const DENSE_DEGREE_ESTIMATE: u64 = 8;

/// The vertical-granularity switch: go bottom-up when the pair frontier
/// is so fat that sweeping the remaining `alive × label` cells is
/// cheaper than expanding every frontier pair — i.e. when
/// `frontier × d̄ > domain + missing × d̄` under the
/// [`DENSE_DEGREE_ESTIMATE`] cost model. Fires on hub levels where one
/// vertex enters the frontier under many labels at once.
fn go_dense(frontier_pairs: usize, table_pairs: usize, domain: u64) -> bool {
    let missing = domain.saturating_sub(table_pairs as u64);
    frontier_pairs as u64 > domain / DENSE_DEGREE_ESTIMATE + missing
}

#[inline]
fn pack(vertex: u32, label: u32) -> u64 {
    (u64::from(vertex) << 32) | u64::from(label)
}

#[inline]
fn unpack(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

/// Picks `batch` pivots by striding the alive list: index `i * len / batch`
/// for `i in 0..batch`. Distinct for `batch <= len`, spread across the
/// residue (the alive list is in ascending vertex order, so consecutive
/// strides land in different regions of the graph).
pub fn pick_pivots(alive: &[NodeId], batch: usize) -> Vec<NodeId> {
    let batch = batch.clamp(1, alive.len());
    (0..batch).map(|i| alive[i * alive.len() / batch]).collect()
}

/// Runs one multi-source reachability search from `pivots` (forward over
/// out-edges if `forward`, else backward over in-edges), confined to each
/// pivot's color partition. Returns the reach table: `(v, j)` present
/// iff `v` is reachable from `pivots[j]` within color `pivot_colors[j]`.
///
/// Polls the interrupt once per level via the state watchdog; on an
/// abort the table is partial and the caller must check
/// [`AlgoState::should_stop`] before using it.
pub fn multi_search<G: GraphView>(
    state: &AlgoState<'_, G>,
    alive: &[NodeId],
    pivots: &[NodeId],
    pivot_colors: &[Color],
    forward: bool,
    threads: usize,
) -> ReachTable {
    let table = ReachTable::with_capacity(alive.len().max(pivots.len() * 4));
    let mut frontier = HashBag::new();

    // Seed: every pivot reaches itself under its own label.
    let mut block = Vec::with_capacity(pivots.len().min(BLOCK_SIZE));
    for (j, &p) in pivots.iter().enumerate() {
        table.insert(p, j as u32);
        block.push(pack(p, j as u32));
        if block.len() >= BLOCK_SIZE {
            frontier.publish(&mut block);
        }
    }
    frontier.publish(&mut block);

    // Each level extends every reach set by at least one BFS hop, so the
    // level count is bounded by the longest alive shortest path plus one
    // empty-frontier detection level.
    let name = if forward {
        "multisearch-forward"
    } else {
        "multisearch-backward"
    };
    let mut watchdog = state.watchdog(name, alive.len() + 1);
    let domain = alive.len() as u64 * pivots.len().max(1) as u64;
    loop {
        if watchdog.check().is_some() {
            break;
        }
        if frontier.is_empty() {
            break;
        }
        frontier = if go_dense(frontier.len(), table.len(), domain) {
            dense_level(state, &table, alive, pivot_colors, forward, threads)
        } else {
            sparse_level(state, &table, &frontier, pivot_colors, forward, threads)
        };
    }
    table
}

/// Top-down level: workers claim frontier blocks and push each pair's
/// unvisited same-color neighbors into the next frontier.
fn sparse_level<G: GraphView>(
    state: &AlgoState<'_, G>,
    table: &ReachTable,
    frontier: &HashBag,
    pivot_colors: &[Color],
    forward: bool,
    threads: usize,
) -> HashBag {
    let next = HashBag::new();
    let expand = |local: &mut Vec<u64>| {
        let mut found: Vec<u64> = Vec::new();
        while let Some(pairs) = frontier.claim() {
            // Pre-filter the block's neighbors under ONE read guard —
            // most probes hit pairs that are already present, and the
            // per-call lock acquisition would otherwise dominate. The
            // view must drop before the inserts below (see
            // ReachTable::view).
            let view = table.view();
            for &key in pairs.iter() {
                let (v, j) = unpack(key);
                let color = pivot_colors[j as usize];
                let dir = if forward {
                    Direction::Forward
                } else {
                    Direction::Backward
                };
                state.g.for_each_neighbor(dir, v, |u| {
                    // Color match implies alive: resolution repaints to
                    // DONE_COLOR, and no vertex resolves mid-search.
                    if state.color(u) == color && !view.contains(u, j) {
                        found.push(pack(u, j));
                    }
                });
            }
            drop(view);
            // The view filter races with other workers' inserts:
            // `insert` returning false drops the duplicates.
            for key in found.drain(..) {
                let (u, j) = unpack(key);
                if table.insert(u, j) {
                    local.push(key);
                    if local.len() >= BLOCK_SIZE {
                        next.publish(local);
                    }
                }
            }
        }
        next.publish(local);
    };
    run_workers(threads, &expand);
    next
}

/// Bottom-up level: sweep the alive × label domain; a missing pair joins
/// the reach set when any same-color predecessor (successor, for the
/// backward search) is already in it. Newly inserted pairs form the next
/// frontier so the driver can switch back to sparse when it thins out.
fn dense_level<G: GraphView>(
    state: &AlgoState<'_, G>,
    table: &ReachTable,
    alive: &[NodeId],
    pivot_colors: &[Color],
    forward: bool,
    threads: usize,
) -> HashBag {
    let next = HashBag::new();
    let cursor = AtomicUsize::new(0);
    // Self-scheduled chunks: sweep cost varies wildly with degree, so a
    // static split would straggle on hub-heavy chunks.
    const CHUNK: usize = 256;
    let sweep = |local: &mut Vec<u64>| {
        let mut found: Vec<u64> = Vec::new();
        loop {
            // ordering: chunk claim — RMW atomicity alone makes the
            // ranges disjoint; workers share nothing else through it.
            let start = cursor.fetch_add(CHUNK, Ordering::Relaxed);
            if start >= alive.len() {
                break;
            }
            let end = (start + CHUNK).min(alive.len());
            // Probe the whole chunk under ONE read guard (the per-call
            // lock would dominate the sweep), then drop it before
            // inserting: a view held across an insert deadlocks behind a
            // queued grower (see ReachTable::view).
            let view = table.view();
            for &v in &alive[start..end] {
                let my_color = state.color(v);
                for (j, &color) in pivot_colors.iter().enumerate() {
                    let j = j as u32;
                    if color != my_color || view.contains(v, j) {
                        continue;
                    }
                    // Incoming edges feed the *forward* reach set.
                    let dir = if forward {
                        Direction::Backward
                    } else {
                        Direction::Forward
                    };
                    let reached = state
                        .g
                        .find_neighbor(dir, v, |u| {
                            u != v && state.color(u) == color && view.contains(u, j)
                        })
                        .is_some();
                    if reached {
                        found.push(pack(v, j));
                    }
                }
            }
            drop(view);
            // A pair found via the (possibly stale) view may have been
            // inserted by another chunk meanwhile; `insert` returning
            // false filters it out of the next frontier.
            for key in found.drain(..) {
                let (v, j) = unpack(key);
                if table.insert(v, j) {
                    local.push(key);
                    if local.len() >= BLOCK_SIZE {
                        next.publish(local);
                    }
                }
            }
        }
        next.publish(local);
    };
    run_workers(threads, &sweep);
    next
}

/// Runs `work` on up to `threads` scoped workers (one inline), each with
/// its own block buffer. Panics propagate to the caller after all
/// workers are joined.
fn run_workers<F>(threads: usize, work: &F)
where
    F: Fn(&mut Vec<u64>) + Sync,
{
    let w = threads.max(1);
    if w == 1 {
        work(&mut Vec::with_capacity(BLOCK_SIZE));
        return;
    }
    swscc_sync::thread::scope(|s| {
        let handles: Vec<_> = (1..w)
            .map(|_| s.spawn(move || work(&mut Vec::with_capacity(BLOCK_SIZE))))
            .collect();
        work(&mut Vec::with_capacity(BLOCK_SIZE));
        for (i, h) in handles.into_iter().enumerate() {
            if let Err(payload) = h.join() {
                propagate_worker_panic("multisearch", i + 1, payload);
            }
        }
    });
}

/// Intersects the two reach tables and resolves every vertex that landed
/// in some pivot's SCC. Returns the number of nodes resolved.
///
/// `winner` is an N-sized scratch array owned by the kernel (reused
/// across rounds; only the alive entries are reset here). Must only be
/// called with *complete* tables — i.e. after both searches finished
/// without an interrupt — because it writes component claims.
pub fn resolve_round<G: GraphView>(
    state: &AlgoState<'_, G>,
    alive: &[NodeId],
    pivots: &[NodeId],
    fwd: &ReachTable,
    bwd: &ReachTable,
    winner: &[AtomicU32],
) -> usize {
    // ordering: per-round scratch reset — each entry is written by one
    // worker and the par_iter join publishes the stores before any
    // fetch_min below.
    alive
        .par_iter()
        .for_each(|&v| winner[v as usize].store(u32::MAX, Ordering::Relaxed));

    // winner[v] := min { j | (v,j) in fwd ∩ bwd } — the canonical label
    // of SCC(pivots[j]) for every member v.
    let pairs = fwd.pairs();
    pairs.par_iter().for_each(|&(v, j)| {
        if bwd.contains(v, j) {
            // ordering: monotone min-reduction; fetch_min never loses
            // the smaller label and the join publishes the result.
            winner[v as usize].fetch_min(j, Ordering::Relaxed);
        }
    });

    // One component id per *canonical* pivot (a pivot whose own winner is
    // its own label — the least-labeled pivot of its SCC). Non-canonical
    // pivots share the id of their canonical representative, which was
    // assigned at an earlier index because labels increase with index.
    let mut comp_of = vec![u32::MAX; pivots.len()];
    for (j, &p) in pivots.iter().enumerate() {
        // ordering: read after the par_iter joins above.
        let canon = winner[p as usize].load(Ordering::Relaxed) as usize;
        debug_assert!(canon <= j, "a pivot is always in its own reach sets");
        comp_of[j] = if canon == j {
            state.alloc_component()
        } else {
            comp_of[canon]
        };
    }

    // Claim pass: every alive vertex appears exactly once in `alive`, so
    // each winner is resolved exactly once.
    let resolved = AtomicUsize::new(0);
    alive.par_iter().for_each(|&v| {
        // ordering: read after the fetch_min sweep's join.
        let label = winner[v as usize].load(Ordering::Relaxed);
        if label != u32::MAX {
            let comp = comp_of[label as usize];
            debug_assert!(comp != u32::MAX, "winner labels are canonical");
            state.resolve_into(v, comp);
            // ordering: statistic counter; the join publishes the total.
            resolved.fetch_add(1, Ordering::Relaxed);
        }
    });
    // ordering: read after the par_iter join.
    resolved.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::INITIAL_COLOR;
    use swscc_graph::CsrGraph;

    fn search_both<'g>(
        g: &'g CsrGraph,
        pivots: &[NodeId],
        threads: usize,
    ) -> (AlgoState<'g>, ReachTable, ReachTable) {
        let state = AlgoState::new(g);
        let alive = state.collect_alive();
        let colors = vec![INITIAL_COLOR; pivots.len()];
        let fwd = multi_search(&state, &alive, pivots, &colors, true, threads);
        let bwd = multi_search(&state, &alive, pivots, &colors, false, threads);
        (state, fwd, bwd)
    }

    #[test]
    fn pick_pivots_distinct_and_bounded() {
        let alive: Vec<u32> = (0..100).map(|i| i * 3).collect();
        for batch in [1, 7, 100, 500] {
            let pivots = pick_pivots(&alive, batch);
            assert_eq!(pivots.len(), batch.min(100));
            let mut sorted = pivots.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), pivots.len(), "pivots must be distinct");
            assert!(pivots.iter().all(|p| alive.contains(p)));
        }
    }

    #[test]
    fn go_dense_follows_the_cost_model() {
        // Thin frontier over a mostly-missing domain: stay sparse.
        assert!(!go_dense(100, 200, 10_000));
        // Fat frontier, domain nearly full: one bottom-up sweep wins.
        assert!(go_dense(5_000, 9_900, 10_000));
        // Exactly at the boundary (frontier == domain/d̄ + missing):
        // strictly-greater keeps the tie sparse.
        assert!(!go_dense(1_250, 10_000, 10_000));
        // Empty domain never goes dense off an empty frontier.
        assert!(!go_dense(0, 0, 0));
    }

    /// A complete digraph with a pendant tail: level one explodes the
    /// pair frontier to nearly the whole domain, which trips the dense
    /// switch, and the tail pairs are then discovered bottom-up — so
    /// this exercises the dense path end to end and checks it produces
    /// the same reach sets as the sparse math says it must.
    #[test]
    fn dense_path_resolves_hub_plus_tail() {
        const M: u32 = 32;
        const TAIL: u32 = 4;
        let mut edges = Vec::new();
        for u in 0..M {
            for v in 0..M {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        for t in 0..TAIL {
            let src = if t == 0 { M - 1 } else { M + t - 1 };
            edges.push((src, M + t));
        }
        let g = CsrGraph::from_edges((M + TAIL) as usize, &edges);
        let pivots: Vec<NodeId> = (0..M).collect();
        let (_state, fwd, bwd) = search_both(&g, &pivots, 2);
        // Forward from any pivot reaches every clique member and the tail.
        for j in 0..M {
            for v in 0..(M + TAIL) {
                assert!(fwd.contains(v, j), "fwd missing ({v}, {j})");
            }
            // Backward reaches the clique only.
            for v in 0..M {
                assert!(bwd.contains(v, j), "bwd missing ({v}, {j})");
            }
            for t in 0..TAIL {
                assert!(!bwd.contains(M + t, j), "tail is not upstream");
            }
        }
    }

    #[test]
    fn reach_sets_on_a_cycle_and_tail() {
        // 0→1→2→0 cycle with tail 2→3.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let (_state, fwd, bwd) = search_both(&g, &[0, 3], 2);
        // Forward from 0 reaches everything; forward from 3 only itself.
        for v in 0..4 {
            assert!(fwd.contains(v, 0));
        }
        assert!(fwd.contains(3, 1) && !fwd.contains(0, 1));
        // Backward from 3 reaches everything; intersection for label 0 is
        // the cycle.
        for v in 0..4 {
            assert!(bwd.contains(v, 1));
        }
        for v in 0..3 {
            assert!(bwd.contains(v, 0));
        }
        assert!(!bwd.contains(3, 0));
    }

    #[test]
    fn resolve_round_claims_cycle_members_once() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (4, 0)]);
        let state = AlgoState::new(&g);
        let alive = state.collect_alive();
        // Two pivots inside the same SCC must share one component.
        let pivots = vec![0u32, 2];
        let colors = vec![INITIAL_COLOR; 2];
        let fwd = multi_search(&state, &alive, &pivots, &colors, true, 2);
        let bwd = multi_search(&state, &alive, &pivots, &colors, false, 2);
        let winner: Vec<AtomicU32> = (0..5).map(|_| AtomicU32::new(0)).collect();
        let resolved = resolve_round(&state, &alive, &pivots, &fwd, &bwd, &winner);
        assert_eq!(resolved, 3, "exactly the cycle {{0,1,2}} resolves");
        assert!(!state.alive(0) && !state.alive(1) && !state.alive(2));
        assert!(state.alive(3) && state.alive(4));
    }
}
