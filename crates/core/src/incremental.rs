//! Incremental SCC maintenance over a [`DeltaGraph`] — the dynamic
//! condensation engine (ROADMAP item 2, after Sa, arXiv 1804.01276).
//!
//! The engine keeps three things in lockstep with a stream of edge
//! mutations: a per-node component label, the member list of every
//! component, and a **topological position** per component — a sparse
//! `u64` rank over the condensation DAG with wide gaps, so local edits
//! rarely renumber anything outside the touched region. The maintenance
//! algebra per mutation:
//!
//! * **Insert, in order** (`pos[scc(u)] < pos[scc(v)]`, or intra-SCC):
//!   the current order already proves acyclicity — O(1), touch nothing.
//! * **Insert, back edge**: bounded bidirectional discovery on the
//!   condensation, restricted to the position window
//!   `[pos[scc(v)], pos[scc(u)]]` (the Pearce–Kelly affected region,
//!   arXiv cs/0608010 applied at SCC granularity): forward from `v`,
//!   backward from `u`, expanding whole components via their member
//!   lists. The intersection is the merge set — collapsed into one
//!   component — and the region's positions are reassigned B-side from
//!   the bottom of the old position pool, F-side from the top, which
//!   preserves every constraint against untouched components (B-side
//!   never moves up, F-side never moves down, and edges from outside the
//!   window are outside the pool's range entirely).
//! * **Delete, cross-component**: removing a condensation edge cannot
//!   create a cycle or break the order — O(1).
//! * **Delete, intra-component**: the owning SCC is dirty. Its members
//!   are extracted as a local residue subgraph and the stock pipeline
//!   re-runs on that residue only (the same LiveSet-restricted kernels
//!   as a batch run, on a |residue|-sized input); a split allocates
//!   fresh labels and packs the parts, in residue topological order,
//!   into the position gap the old component occupied.
//!
//! Any mutation whose affected region exceeds
//! [`SccConfig::incremental_residue_limit`] degrades to a full rebuild —
//! correctness never depends on the bound, only the work ceiling.
//!
//! # Failure containment
//!
//! The back-edge merge passes the `incr-merge` fault point *after*
//! discovery and *before* the first label write, so a kill there leaves
//! the partition state exactly as it was. The serve layer catches the
//! panic, marks the engine poisoned ([`IncrementalEngine::poison`]), and
//! the next operation heals through a full rebuild over the (already
//! mutated) graph. The previous epoch keeps serving throughout.

use crate::config::SccConfig;
use crate::error::{RunGuard, SccError};
use crate::pipeline::{run_pipeline, Pipeline};
use crate::result::SccResult;
use crate::snapshot::SccSnapshot;
use rustc_hash::{FxHashMap, FxHashSet};
use std::collections::BTreeSet;
use swscc_graph::bfs::Direction;
use swscc_graph::delta::CompactBackend;
use swscc_graph::{CsrGraph, DeltaGraph, GraphView, NodeId};
use swscc_sync::fault;

/// Spacing between consecutive topological positions after a (re)build.
/// Splits carve positions out of the gaps; a gap that runs dry triggers
/// one global renumbering, which restores the full spacing.
const POS_GAP: u64 = 1 << 32;

/// What one mutation did to the partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutationOutcome {
    /// The edge was already live / already absent / out of range — the
    /// graph and the partition are untouched.
    Noop,
    /// O(1) fast path: the mutation could not change any component
    /// (in-order insert, intra-SCC insert, cross-component delete).
    InOrder,
    /// A back edge that created no cycle; the affected region's
    /// topological positions were reassigned (Pearce–Kelly), components
    /// unchanged.
    Reordered,
    /// A back edge closed a cycle; `merged` components collapsed into
    /// one.
    Merged {
        /// Components folded together (≥ 2).
        merged: usize,
    },
    /// An intra-SCC delete re-ran the pipeline on the dirty residue;
    /// the component split into `parts` (1 = it survived intact).
    Repaired {
        /// Components the residue resolved into.
        parts: usize,
    },
    /// The affected region exceeded the residue limit (or the engine was
    /// healing from a poisoned state): full recompute over the current
    /// graph.
    Rebuilt,
}

/// Cumulative per-path counters, surfaced through the serve `stats` verb.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// O(1) mutations (in-order inserts + cross-component deletes).
    pub in_order: u64,
    /// Back-edge inserts that only reordered positions.
    pub reorders: u64,
    /// Back-edge inserts that merged components.
    pub merges: u64,
    /// Intra-SCC deletes repaired on the residue.
    pub dirty_repairs: u64,
    /// Repairs that actually split the component.
    pub splits: u64,
    /// Degradations to a full rebuild (limit breach or healing).
    pub full_rebuilds: u64,
}

/// One edge mutation, the unit the serve layer batches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Insert the directed edge `u -> v`.
    Insert(NodeId, NodeId),
    /// Delete the directed edge `u -> v`.
    Delete(NodeId, NodeId),
}

/// Per-component bookkeeping: members and the topological position.
#[derive(Clone, Debug)]
struct CompMeta {
    pos: u64,
    members: Vec<NodeId>,
}

/// The maintenance engine: a mutable [`DeltaGraph`] plus the maintained
/// partition and condensation order. See the module docs for the
/// algorithm; [`IncrementalEngine::snapshot`] exports the partition as
/// the same [`SccSnapshot`] the batch path builds, so the serve layer's
/// epoch cycle is unchanged.
pub struct IncrementalEngine<G: CompactBackend> {
    graph: DeltaGraph<G>,
    pipeline: Pipeline,
    cfg: SccConfig,
    /// Node -> component label. Labels are *not* dense; snapshot export
    /// densifies through [`SccResult::from_assignment`].
    labels: Vec<u32>,
    comps: FxHashMap<u32, CompMeta>,
    /// Occupied topological positions (unique), for gap queries.
    positions: BTreeSet<u64>,
    next_label: u32,
    /// Set by [`IncrementalEngine::poison`] after a caught mid-merge
    /// panic: the graph holds a mutation the partition does not reflect,
    /// so the next operation must rebuild first.
    poisoned: bool,
    counters: EngineCounters,
}

impl<G: CompactBackend> IncrementalEngine<G> {
    /// Builds the engine with an initial full run of `pipeline` over
    /// `graph`.
    pub fn new(
        graph: DeltaGraph<G>,
        pipeline: Pipeline,
        cfg: SccConfig,
        guard: &RunGuard,
    ) -> Result<IncrementalEngine<G>, SccError> {
        let mut engine = IncrementalEngine {
            graph,
            pipeline,
            cfg,
            labels: Vec::new(),
            comps: FxHashMap::default(),
            positions: BTreeSet::new(),
            next_label: 0,
            poisoned: false,
            counters: EngineCounters::default(),
        };
        engine.rebuild_state(guard)?;
        Ok(engine)
    }

    /// The maintained graph (base + live overlay).
    pub fn graph(&self) -> &DeltaGraph<G> {
        &self.graph
    }

    /// Cumulative path counters.
    pub fn counters(&self) -> EngineCounters {
        self.counters
    }

    /// Number of components in the maintained partition.
    pub fn num_components(&self) -> usize {
        self.comps.len()
    }

    /// Marks the partition out of sync with the graph — called by the
    /// serve layer after catching a mid-merge panic. The next mutation
    /// (or explicit [`IncrementalEngine::rebuild`]) heals via a full
    /// recompute; queries keep being served from the previous epoch.
    pub fn poison(&mut self) {
        self.poisoned = true;
    }

    /// Whether the engine needs a healing rebuild.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Applies one mutation, maintaining the partition.
    pub fn apply(&mut self, m: Mutation, guard: &RunGuard) -> Result<MutationOutcome, SccError> {
        match m {
            Mutation::Insert(u, v) => self.insert_edge(u, v, guard),
            Mutation::Delete(u, v) => self.delete_edge(u, v, guard),
        }
    }

    /// Inserts `u -> v` and repairs the partition. Any error (deadline,
    /// cancellation, pipeline failure) leaves the engine poisoned: the
    /// graph may already hold the edge the partition does not reflect,
    /// so the next operation heals by full rebuild first.
    pub fn insert_edge(
        &mut self,
        u: NodeId,
        v: NodeId,
        guard: &RunGuard,
    ) -> Result<MutationOutcome, SccError> {
        let r = self.insert_impl(u, v, guard);
        if r.is_err() {
            self.poisoned = true;
        }
        r
    }

    fn insert_impl(
        &mut self,
        u: NodeId,
        v: NodeId,
        guard: &RunGuard,
    ) -> Result<MutationOutcome, SccError> {
        self.heal(guard)?;
        if !self.graph.insert_edge(u, v) {
            return Ok(MutationOutcome::Noop);
        }
        let cu = self.labels[u as usize];
        let cv = self.labels[v as usize];
        if cu == cv {
            self.counters.in_order += 1;
            return Ok(MutationOutcome::InOrder);
        }
        let pu = self.comps[&cu].pos;
        let pv = self.comps[&cv].pos;
        if pu < pv {
            // The current order already witnesses acyclicity of the new
            // condensation edge — nothing to do.
            self.counters.in_order += 1;
            return Ok(MutationOutcome::InOrder);
        }
        self.back_edge(cu, cv, guard)
    }

    /// Deletes `u -> v` and repairs the partition. Errors poison the
    /// engine — see [`IncrementalEngine::insert_edge`].
    pub fn delete_edge(
        &mut self,
        u: NodeId,
        v: NodeId,
        guard: &RunGuard,
    ) -> Result<MutationOutcome, SccError> {
        let r = self.delete_impl(u, v, guard);
        if r.is_err() {
            self.poisoned = true;
        }
        r
    }

    fn delete_impl(
        &mut self,
        u: NodeId,
        v: NodeId,
        guard: &RunGuard,
    ) -> Result<MutationOutcome, SccError> {
        self.heal(guard)?;
        if !self.graph.delete_edge(u, v) {
            return Ok(MutationOutcome::Noop);
        }
        let cu = self.labels[u as usize];
        let cv = self.labels[v as usize];
        if cu != cv {
            // Dropping a condensation edge can neither create a cycle
            // nor invalidate the order.
            self.counters.in_order += 1;
            return Ok(MutationOutcome::InOrder);
        }
        self.repair_dirty(cu, guard)
    }

    /// Folds the delta overlay into a fresh base backend (labels and
    /// positions are adjacency-preserving, so the partition is
    /// untouched). Returns the overlay entries folded away.
    pub fn compact(&mut self) -> usize {
        self.graph.compact()
    }

    /// Full recompute over the current graph — the admin `recompute`
    /// verb, and the healing path.
    pub fn rebuild(&mut self, guard: &RunGuard) -> Result<(), SccError> {
        self.counters.full_rebuilds += 1;
        self.rebuild_state(guard)
    }

    /// Exports the maintained partition as the batch-path snapshot type
    /// (dense labels + condensation DAG over the current graph).
    pub fn snapshot(&self, guard: &RunGuard) -> Result<SccSnapshot, SccError> {
        guard.check()?;
        let result = SccResult::from_assignment(self.labels.clone());
        Ok(SccSnapshot::from_result(&self.graph, result))
    }

    fn heal(&mut self, guard: &RunGuard) -> Result<(), SccError> {
        if self.poisoned {
            self.counters.full_rebuilds += 1;
            self.rebuild_state(guard)?;
        }
        Ok(())
    }

    fn degrade(&mut self, guard: &RunGuard) -> Result<MutationOutcome, SccError> {
        self.counters.full_rebuilds += 1;
        self.rebuild_state(guard)?;
        Ok(MutationOutcome::Rebuilt)
    }

    /// Recomputes labels, members, and gapped topological positions from
    /// scratch. Poison is set on entry and cleared only on success, so a
    /// failed rebuild leaves the engine demanding another heal instead
    /// of serving a half-written partition.
    fn rebuild_state(&mut self, guard: &RunGuard) -> Result<(), SccError> {
        self.poisoned = true;
        let (result, _report) = run_pipeline(&self.graph, &self.pipeline, &self.cfg, guard)?;
        guard.check()?;
        let ranks = topo_ranks(&result.condensation_view(&self.graph));
        self.labels = result.assignment().to_vec();
        self.next_label = result.num_components() as u32;
        self.comps.clear();
        self.positions.clear();
        for c in 0..result.num_components() as u32 {
            let pos = (u64::from(ranks[c as usize]) + 1) * POS_GAP;
            self.comps.insert(
                c,
                CompMeta {
                    pos,
                    members: Vec::new(),
                },
            );
            self.positions.insert(pos);
        }
        for (n, &c) in self.labels.iter().enumerate() {
            self.comps
                .get_mut(&c)
                .expect("dense labels")
                .members
                .push(n as NodeId);
        }
        self.poisoned = false;
        Ok(())
    }

    /// Component-granular reachability sweep restricted to the position
    /// window `[lb, ub]`, expanding whole components via member lists.
    /// Returns `None` when the visited-vertex budget is exhausted.
    fn window_search(
        &self,
        start: u32,
        lb: u64,
        ub: u64,
        dir: Direction,
        limit: usize,
        guard: &RunGuard,
    ) -> Result<Option<FxHashSet<u32>>, SccError> {
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        seen.insert(start);
        let mut stack = vec![start];
        let mut budget = 0usize;
        while let Some(c) = stack.pop() {
            guard.check()?;
            let members = &self.comps[&c].members;
            budget += members.len();
            if budget > limit {
                return Ok(None);
            }
            for &m in members {
                self.graph.for_each_neighbor(dir, m, |w| {
                    let cw = self.labels[w as usize];
                    if !seen.contains(&cw) {
                        let pw = self.comps[&cw].pos;
                        if (lb..=ub).contains(&pw) {
                            seen.insert(cw);
                            stack.push(cw);
                        }
                    }
                });
            }
        }
        Ok(Some(seen))
    }

    /// The Pearce–Kelly affected-region pass for an order-violating
    /// insert `scc(u)=cu -> scc(v)=cv` with `pos[cu] > pos[cv]`: discover
    /// forward/backward regions, collapse the cycle set if there is one,
    /// reassign the region's positions from its own old position pool.
    fn back_edge(
        &mut self,
        cu: u32,
        cv: u32,
        guard: &RunGuard,
    ) -> Result<MutationOutcome, SccError> {
        let lb = self.comps[&cv].pos;
        let ub = self.comps[&cu].pos;
        let limit = self.cfg.incremental_residue_limit.max(1);
        let Some(rf) = self.window_search(cv, lb, ub, Direction::Forward, limit, guard)? else {
            return self.degrade(guard);
        };
        let Some(rb) = self.window_search(cu, lb, ub, Direction::Backward, limit, guard)? else {
            return self.degrade(guard);
        };
        // Merge set: components on some v ->* u path (cv ->* C ->* cu).
        let merge: Vec<u32> = rf.intersection(&rb).copied().collect();
        let mut b_side: Vec<u32> = rb.difference(&rf).copied().collect();
        let mut f_side: Vec<u32> = rf.difference(&rb).copied().collect();
        b_side.sort_unstable_by_key(|c| self.comps[c].pos);
        f_side.sort_unstable_by_key(|c| self.comps[c].pos);
        let mut pool: Vec<u64> = rf.union(&rb).map(|c| self.comps[c].pos).collect();
        pool.sort_unstable();

        let merged = merge.len();
        if merged > 0 {
            // recovery: commit point of the merge — discovery above is
            // read-only, every write happens below, so a kill here
            // (injected incr-merge fault) leaves the maintained
            // partition untouched; the serve layer poisons the engine
            // and heals by rebuild while the old epoch keeps serving.
            fault::point(fault::INCR_MERGE);
            let mut absorbed: Vec<NodeId> = Vec::new();
            for &c in &merge {
                if c == cu {
                    continue;
                }
                let meta = self.comps.remove(&c).expect("merge set is live");
                for &m in &meta.members {
                    self.labels[m as usize] = cu;
                }
                absorbed.extend(meta.members);
            }
            self.comps
                .get_mut(&cu)
                .expect("representative is live")
                .members
                .extend(absorbed);
        }
        // Reassign: B-side packs the bottom of the pool (never moves
        // up), F-side packs the top (never moves down), the merged
        // component sits between them; leftover middle values retire
        // with the components they belonged to.
        for &p in &pool {
            self.positions.remove(&p);
        }
        let nf = f_side.len();
        for (i, &c) in b_side.iter().enumerate() {
            self.set_pos(c, pool[i]);
        }
        if merged > 0 {
            self.set_pos(cu, pool[b_side.len()]);
        }
        for (i, &c) in f_side.iter().enumerate() {
            self.set_pos(c, pool[pool.len() - nf + i]);
        }
        if merged > 0 {
            self.counters.merges += 1;
            Ok(MutationOutcome::Merged { merged })
        } else {
            self.counters.reorders += 1;
            Ok(MutationOutcome::Reordered)
        }
    }

    fn set_pos(&mut self, c: u32, pos: u64) {
        self.comps.get_mut(&c).expect("component is live").pos = pos;
        self.positions.insert(pos);
    }

    /// Intra-SCC delete: re-run the stock pipeline on the dirty
    /// component's residue only, then relabel and re-position any split
    /// parts inside the gap the old component occupied.
    fn repair_dirty(&mut self, c: u32, guard: &RunGuard) -> Result<MutationOutcome, SccError> {
        let limit = self.cfg.incremental_residue_limit.max(1);
        if self.comps[&c].members.len() > limit {
            return self.degrade(guard);
        }
        self.counters.dirty_repairs += 1;
        let members = self.comps[&c].members.clone();
        // Residue extraction stays O(|residue| + residue edges): a local
        // id map instead of an O(N) scatter array.
        let mut local: FxHashMap<NodeId, u32> = FxHashMap::default();
        for (i, &m) in members.iter().enumerate() {
            local.insert(m, i as u32);
        }
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for (i, &m) in members.iter().enumerate() {
            guard.check()?;
            self.graph.for_each_neighbor(Direction::Forward, m, |w| {
                if let Some(&lw) = local.get(&w) {
                    edges.push((i as NodeId, lw));
                }
            });
        }
        let residue = CsrGraph::from_edges(members.len(), &edges);
        let (sub, _report) = run_pipeline(&residue, &self.pipeline, &self.cfg, guard)?;
        let parts = sub.num_components();
        if parts == 1 {
            // The SCC survived the deletion intact.
            return Ok(MutationOutcome::Repaired { parts: 1 });
        }
        self.counters.splits += 1;
        // Order the parts among themselves and pack them into the open
        // position interval around the old component's position — every
        // constraint against outside components held at the old position
        // and keeps holding anywhere strictly inside its gap.
        let ranks = topo_ranks(&sub.condensation_view(&residue));
        let (lo, hi) = self.gap_for(c, parts as u64);
        let step = (hi - lo) / (parts as u64 + 1);
        let meta = self.comps.remove(&c).expect("dirty component is live");
        self.positions.remove(&meta.pos);
        let mut part_label: Vec<u32> = Vec::with_capacity(parts);
        for r in 0..parts as u32 {
            // Reuse the old label for the topologically-first part; the
            // rest get fresh labels.
            let label = if r == 0 {
                c
            } else {
                self.next_label += 1;
                self.next_label
            };
            part_label.push(label);
            let pos = lo + step * (u64::from(r) + 1);
            self.comps.insert(
                label,
                CompMeta {
                    pos,
                    members: Vec::new(),
                },
            );
            self.positions.insert(pos);
        }
        for (i, &m) in meta.members.iter().enumerate() {
            let label = part_label[ranks[sub.component(i as NodeId) as usize] as usize];
            self.labels[m as usize] = label;
            self.comps
                .get_mut(&label)
                .expect("just inserted")
                .members
                .push(m);
        }
        Ok(MutationOutcome::Repaired { parts })
    }

    /// Open interval around component `c`'s position, between its
    /// neighboring occupied positions, with room for `need` distinct
    /// values strictly inside (`hi - lo > need` leaves an integer step
    /// ≥ 1) — globally renumbering first if the local gap has run dry.
    fn gap_for(&mut self, c: u32, need: u64) -> (u64, u64) {
        let pos = self.comps[&c].pos;
        let (lo, hi) = self.neighbors_of(pos);
        if hi - lo > need {
            return (lo, hi);
        }
        // Local gap exhausted by earlier splits: restore POS_GAP spacing
        // everywhere (need ≤ residue limit ≪ POS_GAP) and re-read.
        self.renumber();
        self.neighbors_of(self.comps[&c].pos)
    }

    /// Nearest occupied positions strictly below and above `pos`.
    fn neighbors_of(&self, pos: u64) -> (u64, u64) {
        let lo = self
            .positions
            .range(..pos)
            .next_back()
            .copied()
            .unwrap_or(0);
        let hi = self
            .positions
            .range(pos + 1..)
            .next()
            .copied()
            .unwrap_or(u64::MAX);
        (lo, hi)
    }

    /// Global renumbering: every component's position becomes
    /// `rank * POS_GAP` in the current order, restoring full gaps.
    fn renumber(&mut self) {
        let mut order: Vec<(u64, u32)> = self.comps.iter().map(|(&c, m)| (m.pos, c)).collect();
        order.sort_unstable();
        self.positions.clear();
        for (rank, (_, c)) in order.into_iter().enumerate() {
            let pos = (rank as u64 + 1) * POS_GAP;
            self.comps.get_mut(&c).expect("live").pos = pos;
            self.positions.insert(pos);
        }
    }
}

/// Kahn topological ranks over a condensation DAG: `ranks[c]` is the
/// position of component `c` in one valid topological order.
fn topo_ranks(cond: &CsrGraph) -> Vec<u32> {
    let n = cond.num_nodes();
    let mut indeg: Vec<u32> = (0..n).map(|c| cond.in_degree(c as NodeId) as u32).collect();
    let mut queue: std::collections::VecDeque<u32> =
        (0..n as u32).filter(|&c| indeg[c as usize] == 0).collect();
    let mut ranks = vec![0u32; n];
    let mut next = 0u32;
    while let Some(c) = queue.pop_front() {
        ranks[c as usize] = next;
        next += 1;
        cond.for_each_neighbor(Direction::Forward, c, |d| {
            indeg[d as usize] -= 1;
            if indeg[d as usize] == 0 {
                queue.push_back(d);
            }
        });
    }
    debug_assert_eq!(next as usize, n, "condensation must be acyclic");
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tarjan::tarjan_scc;
    use crate::Algorithm;

    fn engine(n: usize, edges: &[(NodeId, NodeId)]) -> IncrementalEngine<CsrGraph> {
        engine_with_limit(n, edges, SccConfig::default().incremental_residue_limit)
    }

    fn engine_with_limit(
        n: usize,
        edges: &[(NodeId, NodeId)],
        limit: usize,
    ) -> IncrementalEngine<CsrGraph> {
        let mut cfg = SccConfig::with_threads(2);
        cfg.incremental_residue_limit = limit;
        IncrementalEngine::new(
            DeltaGraph::new(CsrGraph::from_edges(n, edges)),
            Pipeline::stock(Algorithm::Method2).expect("stock pipeline"),
            cfg,
            &RunGuard::new(),
        )
        .expect("initial build")
    }

    /// The ground truth the engine must track: Tarjan over the
    /// materialized current graph, compared through canonical labels.
    fn assert_matches_oracle<G: CompactBackend>(engine: &IncrementalEngine<G>) {
        let materialized = engine.graph().materialize_csr();
        let oracle = tarjan_scc(&materialized);
        let maintained = SccResult::from_assignment(engine.labels.clone());
        assert_eq!(
            maintained.canonical_labels(),
            oracle.canonical_labels(),
            "maintained partition diverged from Tarjan"
        );
        // The maintained positions must be a topological order of the
        // maintained condensation.
        for (u, v) in materialized.edges() {
            let (cu, cv) = (engine.labels[u as usize], engine.labels[v as usize]);
            if cu != cv {
                assert!(
                    engine.comps[&cu].pos < engine.comps[&cv].pos,
                    "edge {u}->{v} violates the maintained topological order"
                );
            }
        }
    }

    #[test]
    fn in_order_and_intra_inserts_are_o1() {
        let guard = RunGuard::new();
        // 0 -> 1 -> 2 and a 2-cycle {3,4}.
        let mut e = engine(5, &[(0, 1), (1, 2), (3, 4), (4, 3)]);
        assert_eq!(e.num_components(), 4);
        assert_eq!(
            e.insert_edge(0, 2, &guard).unwrap(),
            MutationOutcome::InOrder,
            "forward edge respects the order"
        );
        assert_eq!(
            e.insert_edge(3, 4, &guard).unwrap(),
            MutationOutcome::Noop,
            "already live"
        );
        assert_eq!(e.insert_edge(4, 4, &guard).unwrap(), MutationOutcome::Noop);
        assert_eq!(e.counters().in_order, 1);
        assert_matches_oracle(&e);
    }

    #[test]
    fn back_edge_merges_the_cycle_set() {
        let guard = RunGuard::new();
        // Path 0 -> 1 -> 2 -> 3, plus bystander 4 after 3.
        let mut e = engine(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let out = e.insert_edge(3, 1, &guard).unwrap();
        assert_eq!(out, MutationOutcome::Merged { merged: 3 }, "{{1,2,3}}");
        assert_eq!(e.num_components(), 3);
        assert_eq!(e.counters().merges, 1);
        assert_matches_oracle(&e);
        // Growing the cycle merges again.
        let out = e.insert_edge(4, 0, &guard).unwrap();
        assert_eq!(out, MutationOutcome::Merged { merged: 3 });
        assert_eq!(e.num_components(), 1);
        assert_matches_oracle(&e);
    }

    #[test]
    fn back_edge_without_cycle_reorders() {
        let guard = RunGuard::new();
        // Two disjoint chains; insert an edge from the "later" chain to
        // the "earlier" one — depending on the initial Kahn order this
        // is either already in order or a pure reorder, never a merge.
        let mut e = engine(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let out = e.insert_edge(5, 0, &guard).unwrap();
        assert!(
            matches!(out, MutationOutcome::InOrder | MutationOutcome::Reordered),
            "no cycle exists, got {out:?}"
        );
        assert_eq!(e.num_components(), 6);
        assert_matches_oracle(&e);
        // Now 3->4->5->0->1->2; 2 -> 3 closes the global cycle.
        let out = e.insert_edge(2, 3, &guard).unwrap();
        assert_eq!(out, MutationOutcome::Merged { merged: 6 });
        assert_eq!(e.num_components(), 1);
        assert_matches_oracle(&e);
    }

    #[test]
    fn cross_component_delete_is_o1() {
        let guard = RunGuard::new();
        let mut e = engine(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        assert_eq!(
            e.delete_edge(0, 1, &guard).unwrap(),
            MutationOutcome::InOrder
        );
        assert_eq!(
            e.delete_edge(0, 1, &guard).unwrap(),
            MutationOutcome::Noop,
            "already gone"
        );
        assert_eq!(e.num_components(), 3);
        assert_matches_oracle(&e);
    }

    #[test]
    fn intra_delete_splits_the_component() {
        let guard = RunGuard::new();
        // 4-cycle plus an outside observer 4 <- 0.
        let mut e = engine(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4)]);
        assert_eq!(e.num_components(), 2);
        let out = e.delete_edge(2, 3, &guard).unwrap();
        assert_eq!(out, MutationOutcome::Repaired { parts: 4 });
        assert_eq!(e.num_components(), 5);
        assert_eq!(e.counters().splits, 1);
        assert_matches_oracle(&e);
    }

    #[test]
    fn intra_delete_that_keeps_the_scc_is_cheap() {
        let guard = RunGuard::new();
        // 3-cycle plus the chord 1 -> 0: the SCC survives losing the
        // chord.
        let mut e = engine(3, &[(0, 1), (1, 2), (2, 0), (1, 0)]);
        assert_eq!(e.num_components(), 1);
        let out = e.delete_edge(1, 0, &guard).unwrap();
        assert_eq!(out, MutationOutcome::Repaired { parts: 1 });
        assert_eq!(e.num_components(), 1);
        assert_matches_oracle(&e);
    }

    #[test]
    fn residue_limit_degrades_to_full_rebuild() {
        let guard = RunGuard::new();
        // Limit 1: any multi-node search or residue exceeds the budget.
        let mut e = engine_with_limit(4, &[(0, 1), (1, 2), (2, 3)], 1);
        assert_eq!(
            e.insert_edge(3, 0, &guard).unwrap(),
            MutationOutcome::Rebuilt
        );
        assert_eq!(e.num_components(), 1);
        assert_eq!(e.counters().full_rebuilds, 1);
        assert_matches_oracle(&e);
    }

    #[test]
    fn poisoned_engine_heals_before_the_next_mutation() {
        let guard = RunGuard::new();
        let mut e = engine(3, &[(0, 1), (1, 2)]);
        e.poison();
        assert!(e.is_poisoned());
        assert_eq!(
            e.insert_edge(2, 0, &guard).unwrap(),
            MutationOutcome::Merged { merged: 3 }
        );
        assert!(!e.is_poisoned());
        assert_eq!(e.counters().full_rebuilds, 1, "heal rebuilt first");
        assert_matches_oracle(&e);
    }

    #[test]
    fn killed_merge_leaves_partition_intact_and_heals() {
        use swscc_sync::fault::{arm, FaultKind, FaultPlan};
        let guard = RunGuard::new();
        let mut e = engine(4, &[(0, 1), (1, 2), (2, 3)]);
        let before: Vec<u32> = e.labels.clone();
        {
            let _g = arm(FaultPlan {
                site: Some(fault::INCR_MERGE),
                nth: 0,
                kind: FaultKind::Panic,
                repeat: false,
            });
            // recovery: the injected kill at the merge commit point must
            // not have touched any label or position.
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                e.insert_edge(3, 0, &guard)
            }));
            assert!(r.is_err(), "planned fault must fire");
        }
        assert_eq!(e.labels, before, "partition untouched by the kill");
        // The graph holds the edge the partition does not reflect — the
        // serve layer would poison; emulate it and heal.
        e.poison();
        assert_eq!(e.apply(Mutation::Insert(3, 0), &guard).unwrap(), {
            MutationOutcome::Noop // edge is already live; heal only
        });
        assert_eq!(e.num_components(), 1);
        assert_matches_oracle(&e);
    }

    #[test]
    fn snapshot_matches_maintained_partition() {
        let guard = RunGuard::new();
        let mut e = engine(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        e.insert_edge(4, 3, &guard).unwrap();
        let snap = e.snapshot(&guard).unwrap();
        assert_eq!(snap.num_components(), e.num_components());
        assert_eq!(snap.same_scc(3, 4), Some(true));
        assert_eq!(snap.same_scc(0, 3), Some(false));
        assert_eq!(
            snap.condensation_reach(0, 4, &guard).unwrap(),
            Some(true),
            "0 reaches 4 through the condensation"
        );
    }

    #[test]
    fn compact_preserves_the_partition() {
        let guard = RunGuard::new();
        let mut e = engine(4, &[(0, 1), (1, 0)]);
        e.insert_edge(2, 3, &guard).unwrap();
        e.insert_edge(3, 2, &guard).unwrap();
        e.delete_edge(1, 0, &guard).unwrap();
        let folded = e.compact();
        assert!(folded > 0);
        assert_eq!(e.graph().pending(), 0);
        assert_matches_oracle(&e);
    }

    /// Randomized mutation storm vs the Tarjan oracle after every step —
    /// the in-crate smoke version of `tests/incremental_differential.rs`.
    #[test]
    fn random_mutation_storm_tracks_tarjan() {
        fn splitmix64(x: &mut u64) -> u64 {
            *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let guard = RunGuard::new();
        let n = 24u64;
        let mut s = 0x5CC_D31A;
        let mut e = engine_with_limit(n as usize, &[(0, 1), (1, 0), (2, 3)], 64);
        for step in 0..160 {
            let u = (splitmix64(&mut s) % n) as NodeId;
            let v = (splitmix64(&mut s) % n) as NodeId;
            let m = if splitmix64(&mut s).is_multiple_of(3) {
                Mutation::Delete(u, v)
            } else {
                Mutation::Insert(u, v)
            };
            e.apply(m, &guard).unwrap();
            assert_matches_oracle(&e);
            if step % 40 == 39 {
                e.compact();
                assert_matches_oracle(&e);
            }
        }
        let c = e.counters();
        assert!(
            c.merges > 0 && c.in_order > 0,
            "storm must hit the fast and merge paths: {c:?}"
        );
    }
}
