//! The unified traversal kernel (§4.2): one `EdgeMap` driver under every
//! level-synchronous BFS-shaped algorithm in the workspace.
//!
//! Plain BFS, the FW/BW reachability peels of Par-FWBW, and frontier-driven
//! Par-WCC all share the same skeleton: expand the current frontier along
//! some adjacency, attempt an atomic *claim* per discovered edge endpoint,
//! and gather the newly claimed nodes into the next frontier. What differs
//! is only the claim protocol (CAS on a level array, CAS on the Color
//! array, fetch-min on a label array) and the adjacency (forward, backward,
//! or undirected). [`EdgeMap`] owns everything else:
//!
//! * **zero-allocation frontiers** — levels advance through
//!   [`swscc_parallel::Frontier`]'s double-buffered, per-worker chunked
//!   collection instead of a per-level `Vec`/`collect()`;
//! * **the hybrid sequential fallback** — frontiers below
//!   [`TraversalConfig::par_threshold`] expand inline on the calling
//!   thread, because per-level fork-join overhead exceeds the work on the
//!   tiny ramp-up/ramp-down levels that bracket a small-world BFS;
//! * **the Beamer direction-optimizing switch** (the paper's ref. \[10\];
//!   §4.2 explicitly anticipates such BFS improvements) — when the
//!   frontier covers a large fraction of the remaining candidates, flip to
//!   bottom-up sweeps: scan unclaimed candidates and join any whose
//!   reverse-adjacency touches the *current frontier*. Membership is
//!   checked against a dense per-level [`ClaimSet`], not the visited set,
//!   so bottom-up levels assign exactly the same depths as top-down ones
//!   and the two modes are differentially testable against sequential BFS.
//!
//! Algorithms plug in via [`EdgeMapOps`]: `claim` is the per-edge
//! visitation attempt (must be atomic — exactly one concurrent claimant
//! may win), `candidate` tells the bottom-up sweep which nodes are still
//! claimable.

use crate::bfs::Direction;
use crate::csr::{CsrGraph, NodeId};
use crate::view::GraphView;
use rayon::prelude::*;
use swscc_parallel::{ClaimSet, Frontier};
use swscc_sync::interrupt::{AbortReason, Interrupt};

/// Default frontier size below which a level is expanded sequentially.
pub const DEFAULT_PAR_FRONTIER_THRESHOLD: usize = 256;

/// Default direction-optimizing switch factor: go bottom-up when
/// `frontier · alpha > remaining` (a cheap node-count approximation of
/// Beamer's edge-count heuristic).
pub const DEFAULT_DOBFS_ALPHA: usize = 8;

/// Tuning knobs of the traversal kernel.
#[derive(Clone, Copy, Debug)]
pub struct TraversalConfig {
    /// Frontiers smaller than this expand sequentially on the calling
    /// thread (hybrid per-level expansion).
    pub par_threshold: usize,
    /// Enable the Beamer top-down/bottom-up switch.
    pub direction_optimizing: bool,
    /// Bottom-up switch factor (see [`DEFAULT_DOBFS_ALPHA`]).
    pub alpha: usize,
}

impl Default for TraversalConfig {
    fn default() -> Self {
        TraversalConfig {
            par_threshold: DEFAULT_PAR_FRONTIER_THRESHOLD,
            direction_optimizing: false,
            alpha: DEFAULT_DOBFS_ALPHA,
        }
    }
}

impl TraversalConfig {
    /// The default configuration with direction optimization switched on.
    pub fn direction_optimizing() -> Self {
        TraversalConfig {
            direction_optimizing: true,
            ..Default::default()
        }
    }
}

/// Which adjacency the traversal follows. `Undirected` follows both edge
/// directions (the Par-WCC view of the graph).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Adjacency {
    /// Follow one edge direction of the digraph.
    Directed(Direction),
    /// Follow both directions (weak-connectivity semantics).
    Undirected,
}

impl Adjacency {
    /// Visits every traversal-direction neighbor of `u`, streamed through
    /// the backend's decode loop ([`GraphView::for_each_neighbor`]) — no
    /// slice is ever materialized.
    #[inline]
    fn for_each_out<G: GraphView>(self, g: &G, u: NodeId, f: &mut impl FnMut(NodeId)) {
        match self {
            Adjacency::Directed(d) => g.for_each_neighbor(d, u, f),
            Adjacency::Undirected => {
                g.for_each_neighbor(Direction::Forward, u, &mut *f);
                g.for_each_neighbor(Direction::Backward, u, f);
            }
        }
    }

    /// First reverse-direction neighbor of `v` satisfying `pred` (the
    /// bottom-up "do I have a parent in the frontier" probe; early-exits
    /// mid-decode on compressed backends).
    #[inline]
    fn find_in<G: GraphView>(
        self,
        g: &G,
        v: NodeId,
        pred: impl Fn(NodeId) -> bool,
    ) -> Option<NodeId> {
        match self {
            Adjacency::Directed(d) => g.find_neighbor(d.reverse(), v, pred),
            Adjacency::Undirected => g
                .find_neighbor(Direction::Forward, v, &pred)
                .or_else(|| g.find_neighbor(Direction::Backward, v, &pred)),
        }
    }
}

/// The algorithm-specific half of a traversal: the claim protocol.
pub trait EdgeMapOps: Sync {
    /// Attempts to claim `dst`, discovered from `src` at `depth` (the
    /// level being built; the seed level is 0). Must be an atomic claim:
    /// of all threads calling `claim` for the same `dst` within one level,
    /// at most one may receive `true`. Returning `true` places `dst` in
    /// the next frontier.
    fn claim(&self, src: NodeId, dst: NodeId, depth: u32) -> bool;

    /// `true` iff `v` is still claimable — drives the bottom-up candidate
    /// pool. Must be consistent with `claim`: once a node is claimed it
    /// must stop being a candidate.
    fn candidate(&self, v: NodeId) -> bool;
}

/// The unified level-synchronous traversal driver. See the module docs.
///
/// Drive it with [`run`](EdgeMap::run) (to the fixpoint) or level by level
/// with [`step`](EdgeMap::step) (algorithms like frontier-driven WCC that
/// interleave other work between levels).
pub struct EdgeMap<'g, G: GraphView = CsrGraph> {
    g: &'g G,
    adj: Adjacency,
    cfg: TraversalConfig,
    frontier: Frontier,
    /// Dense membership bits of the *current* frontier; built lazily on
    /// the first bottom-up level, sparse-reset afterwards.
    in_frontier: Option<ClaimSet>,
    /// Unclaimed-candidate pool for bottom-up sweeps; materialized lazily
    /// and shrunk as candidates are claimed.
    pool: Option<Vec<NodeId>>,
    depth: u32,
    remaining: usize,
    claimed: usize,
}

impl<'g, G: GraphView> EdgeMap<'g, G> {
    /// A kernel over `g` following `adj`, with an empty frontier at depth 0.
    pub fn new(g: &'g G, adj: Adjacency, cfg: TraversalConfig) -> Self {
        EdgeMap {
            g,
            adj,
            cfg,
            frontier: Frontier::new(),
            in_frontier: None,
            pool: None,
            depth: 0,
            // Until told otherwise, assume everything else is claimable.
            remaining: g.num_nodes(),
            claimed: 0,
        }
    }

    /// Seeds the frontier with one node. The caller must have already
    /// claimed it (seeds are never passed to [`EdgeMapOps::claim`]).
    pub fn seed(&mut self, v: NodeId) {
        self.frontier.push(v);
        self.remaining = self.remaining.saturating_sub(1);
    }

    /// Appends pre-claimed nodes to the current frontier (multi-source
    /// traversals; re-activation between [`step`](EdgeMap::step)s).
    pub fn extend(&mut self, items: &[NodeId]) {
        self.frontier.extend_from_slice(items);
    }

    /// Overrides the remaining-candidate estimate used by the bottom-up
    /// switch heuristic (e.g. the size of the color partition being
    /// traversed rather than the whole graph).
    pub fn set_remaining(&mut self, remaining: usize) {
        self.remaining = remaining;
    }

    /// Depth of the most recently built level (0 before the first step).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Members of the current frontier.
    pub fn frontier(&self) -> &[NodeId] {
        self.frontier.as_slice()
    }

    /// Total number of successful claims so far (seeds excluded).
    pub fn claimed(&self) -> usize {
        self.claimed
    }

    /// Advances one level; returns the size of the newly built frontier
    /// (0 when the traversal is exhausted).
    pub fn step<O: EdgeMapOps>(&mut self, ops: &O) -> usize {
        if self.frontier.is_empty() {
            return 0;
        }
        self.depth += 1;
        let depth = self.depth;
        let flen = self.frontier.len();
        let workers = if flen < self.cfg.par_threshold {
            1
        } else {
            rayon::current_num_threads()
        };
        let bottom_up = self.cfg.direction_optimizing
            && flen * self.cfg.alpha > self.remaining
            && self.remaining > self.cfg.par_threshold;

        let g = self.g;
        let adj = self.adj;
        if bottom_up {
            let set = self
                .in_frontier
                .get_or_insert_with(|| ClaimSet::new(g.num_nodes()));
            for &u in self.frontier.as_slice() {
                set.claim(u as usize);
            }
            let pool = self.pool.get_or_insert_with(|| {
                (0..g.num_nodes() as NodeId)
                    .into_par_iter()
                    .filter(|&v| ops.candidate(v))
                    .collect()
            });
            let set = &*set;
            self.frontier.advance_over(pool, workers, |chunk, out| {
                for &v in chunk {
                    if !ops.candidate(v) {
                        continue;
                    }
                    if let Some(u) = adj.find_in(g, v, |u| set.contains(u as usize)) {
                        if ops.claim(u, v, depth) {
                            out.push(v);
                        }
                    }
                }
            });
            // sparse-reset the just-expanded level's membership bits
            let set = self.in_frontier.as_ref().expect("built above");
            for &u in self.frontier.previous() {
                set.release(u as usize);
            }
            self.pool
                .as_mut()
                .expect("built above")
                .retain(|&v| ops.candidate(v));
        } else {
            self.frontier.advance(workers, |chunk, out| {
                for &u in chunk {
                    adj.for_each_out(g, u, &mut |v| {
                        if ops.claim(u, v, depth) {
                            out.push(v);
                        }
                    });
                }
            });
        }

        let added = self.frontier.len();
        self.claimed += added;
        self.remaining = self.remaining.saturating_sub(added);
        added
    }

    /// Runs to the fixpoint; returns the total number of claims (seeds
    /// excluded).
    pub fn run<O: EdgeMapOps>(&mut self, ops: &O) -> usize {
        while self.step(ops) > 0 {}
        self.claimed
    }

    /// Interruptible [`EdgeMap::run`]: polls the shared [`Interrupt`]
    /// between supersteps and stops early (returning the abort reason)
    /// when it fires. A BFS level is the natural poll granularity — a
    /// single level never loops, so cancellation latency is bounded by
    /// one frontier expansion.
    pub fn run_interruptible<O: EdgeMapOps>(
        &mut self,
        ops: &O,
        interrupt: &Interrupt,
    ) -> Result<usize, AbortReason> {
        loop {
            if let Some(reason) = interrupt.poll() {
                return Err(reason);
            }
            if self.step(ops) == 0 {
                return Ok(self.claimed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swscc_sync::atomic::{AtomicU32, Ordering};

    /// Plain reachability ops over a visited ClaimSet.
    struct VisitOps {
        visited: ClaimSet,
    }

    impl EdgeMapOps for VisitOps {
        fn claim(&self, _src: NodeId, dst: NodeId, _depth: u32) -> bool {
            self.visited.claim(dst as usize)
        }
        fn candidate(&self, v: NodeId) -> bool {
            !self.visited.contains(v as usize)
        }
    }

    /// Level-recording ops (the BFS claim protocol).
    struct LevelOps {
        levels: Vec<AtomicU32>,
    }

    impl LevelOps {
        fn new(n: usize, src: NodeId) -> Self {
            let mut levels = Vec::with_capacity(n);
            levels.resize_with(n, || AtomicU32::new(u32::MAX));
            levels[src as usize].store(0, Ordering::Relaxed);
            LevelOps { levels }
        }
        fn level(&self, v: NodeId) -> u32 {
            self.levels[v as usize].load(Ordering::Relaxed)
        }
    }

    impl EdgeMapOps for LevelOps {
        fn claim(&self, _src: NodeId, dst: NodeId, depth: u32) -> bool {
            self.levels[dst as usize].load(Ordering::Relaxed) == u32::MAX
                && self.levels[dst as usize]
                    .compare_exchange(u32::MAX, depth, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
        }
        fn candidate(&self, v: NodeId) -> bool {
            self.levels[v as usize].load(Ordering::Relaxed) == u32::MAX
        }
    }

    fn visit_all(g: &CsrGraph, src: NodeId, adj: Adjacency, cfg: TraversalConfig) -> (usize, u32) {
        let ops = VisitOps {
            visited: ClaimSet::new(g.num_nodes()),
        };
        ops.visited.claim(src as usize);
        let mut em = EdgeMap::new(g, adj, cfg);
        em.seed(src);
        let claimed = em.run(&ops);
        assert_eq!(claimed, em.claimed());
        (claimed + 1, em.depth())
    }

    #[test]
    fn single_node_no_edges() {
        let g = CsrGraph::from_edges(1, &[]);
        let (reached, depth) = visit_all(
            &g,
            0,
            Adjacency::Directed(Direction::Forward),
            TraversalConfig::default(),
        );
        assert_eq!(reached, 1);
        assert_eq!(depth, 1, "one (empty) expansion of the seed level");
    }

    #[test]
    fn self_loops_do_not_requeue() {
        let g = CsrGraph::from_edges(3, &[(0, 0), (0, 1), (1, 1), (1, 2), (2, 0)]);
        let (reached, _) = visit_all(
            &g,
            0,
            Adjacency::Directed(Direction::Forward),
            TraversalConfig::default(),
        );
        assert_eq!(reached, 3);
    }

    #[test]
    fn source_with_zero_out_degree() {
        let g = CsrGraph::from_edges(4, &[(1, 0), (2, 3)]);
        let (reached, _) = visit_all(
            &g,
            0,
            Adjacency::Directed(Direction::Forward),
            TraversalConfig::default(),
        );
        assert_eq!(reached, 1, "nothing reachable forward from a sink");
        let (reached_bw, _) = visit_all(
            &g,
            0,
            Adjacency::Directed(Direction::Backward),
            TraversalConfig::default(),
        );
        assert_eq!(reached_bw, 2);
    }

    #[test]
    fn undirected_adjacency_crosses_edge_direction() {
        // 0 -> 1 <- 2: directed misses 2, undirected reaches it
        let g = CsrGraph::from_edges(3, &[(0, 1), (2, 1)]);
        let (fwd, _) = visit_all(
            &g,
            0,
            Adjacency::Directed(Direction::Forward),
            TraversalConfig::default(),
        );
        assert_eq!(fwd, 2);
        let (und, _) = visit_all(&g, 0, Adjacency::Undirected, TraversalConfig::default());
        assert_eq!(und, 3);
    }

    /// A star: the frontier after level 1 is exactly `width`, probing the
    /// sequential/parallel boundary of the hybrid expansion.
    fn star_levels(width: usize, cfg: TraversalConfig) {
        let n = width + 2;
        let mut edges: Vec<(u32, u32)> = (0..width).map(|i| (0, (i + 1) as u32)).collect();
        // all spokes point at a common sink so the parallel level has work
        edges.extend((0..width).map(|i| ((i + 1) as u32, (width + 1) as u32)));
        let g = CsrGraph::from_edges(n, &edges);
        let ops = LevelOps::new(n, 0);
        let mut em = EdgeMap::new(&g, Adjacency::Directed(Direction::Forward), cfg);
        em.seed(0);
        assert_eq!(em.step(&ops), width, "level 1 = the spokes");
        assert_eq!(em.step(&ops), 1, "level 2 = the sink");
        assert_eq!(em.step(&ops), 0);
        assert_eq!(ops.level(0), 0);
        for i in 0..width {
            assert_eq!(ops.level((i + 1) as u32), 1);
        }
        assert_eq!(ops.level((width + 1) as u32), 2);
    }

    #[test]
    fn frontier_exactly_at_par_threshold() {
        // width == par_threshold: the level expands in parallel;
        // width == par_threshold - 1: sequentially. Same answers.
        let cfg = TraversalConfig::default();
        star_levels(cfg.par_threshold, cfg);
        star_levels(cfg.par_threshold - 1, cfg);
    }

    #[test]
    fn bottom_up_switch_threshold_boundary() {
        // remaining must strictly exceed par_threshold for bottom-up to
        // engage; probe both sides of the boundary and both traversal
        // modes must agree with sequential BFS levels.
        for extra in [0usize, 1, 600] {
            let width = DEFAULT_PAR_FRONTIER_THRESHOLD + extra;
            let td = TraversalConfig::default();
            let bu = TraversalConfig::direction_optimizing();
            star_levels(width, td);
            star_levels(width, bu);
        }
    }

    #[test]
    fn direction_optimizing_matches_top_down_levels() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        let n = 2000u32;
        let edges: Vec<_> = (0..16_000)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();
        let g = CsrGraph::from_edges(n as usize, &edges);
        for adj in [
            Adjacency::Directed(Direction::Forward),
            Adjacency::Directed(Direction::Backward),
            Adjacency::Undirected,
        ] {
            let a = LevelOps::new(n as usize, 0);
            let mut em = EdgeMap::new(&g, adj, TraversalConfig::default());
            em.seed(0);
            em.run(&a);
            let b = LevelOps::new(n as usize, 0);
            let mut em = EdgeMap::new(&g, adj, TraversalConfig::direction_optimizing());
            em.seed(0);
            em.run(&b);
            for v in 0..n {
                assert_eq!(a.level(v), b.level(v), "node {v} under {adj:?}");
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        let ops = VisitOps {
            visited: ClaimSet::new(0),
        };
        let mut em = EdgeMap::new(
            &g,
            Adjacency::Directed(Direction::Forward),
            TraversalConfig::default(),
        );
        assert_eq!(em.run(&ops), 0);
        assert_eq!(em.depth(), 0);
    }

    #[test]
    fn run_interruptible_matches_run_when_not_aborted() {
        // 0 -> 1 -> 2 -> 3 chain
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let ops = VisitOps {
            visited: ClaimSet::new(4),
        };
        ops.visited.claim(0);
        let mut em = EdgeMap::new(
            &g,
            Adjacency::Directed(Direction::Forward),
            TraversalConfig::default(),
        );
        em.seed(0);
        let interrupt = Interrupt::new();
        assert_eq!(em.run_interruptible(&ops, &interrupt), Ok(3));
        assert_eq!(em.depth(), 4, "three claiming levels plus the empty tail");
    }

    #[test]
    fn run_interruptible_stops_on_pre_cancelled_token() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let ops = VisitOps {
            visited: ClaimSet::new(4),
        };
        ops.visited.claim(0);
        let mut em = EdgeMap::new(
            &g,
            Adjacency::Directed(Direction::Forward),
            TraversalConfig::default(),
        );
        em.seed(0);
        let interrupt = Interrupt::new();
        interrupt.cancel();
        assert_eq!(
            em.run_interruptible(&ops, &interrupt),
            Err(AbortReason::Cancelled)
        );
        assert_eq!(em.depth(), 0, "no superstep may run after cancellation");
    }
}
