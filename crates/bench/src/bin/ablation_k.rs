//! §4.3 ablation: work-queue batch parameter K.
//!
//! "We set K to 1 for the Baseline and Method 1, because these algorithms
//! suffer from a lack of task level parallelism; for Method 2, we set K to
//! 8." This sweep shows why: with few tasks, batching (large K) starves
//! other workers; with Method 2's thousands of WCC tasks, batching
//! amortizes the global-queue lock.

use swscc_bench::{ms, print_header, reps, scale, thread_sweep, time_algorithm};
use swscc_core::{Algorithm, SccConfig};
use swscc_graph::datasets::Dataset;

fn main() {
    print_header("§4.3 ablation: work-queue batch size K");
    let reps = reps();
    let ks = [1usize, 2, 4, 8, 16, 32];
    let threads = *thread_sweep().last().expect("non-empty sweep");
    for d in [Dataset::Livej, Dataset::Flickr] {
        let g = d.load(scale(), 42);
        println!("--- {} ({} threads)", d.name(), threads);
        println!("{:<6} {:>14} {:>14}", "K", "method1 (ms)", "method2 (ms)");
        for &k in &ks {
            let cfg = SccConfig {
                k: Some(k),
                ..SccConfig::with_threads(threads)
            };
            let t1 = time_algorithm(&g, Algorithm::Method1, &cfg, reps);
            let t2 = time_algorithm(&g, Algorithm::Method2, &cfg, reps);
            println!("{:<6} {:>14} {:>14}", k, ms(t1), ms(t2));
        }
        println!();
    }
    println!("paper defaults: K=1 (baseline, method 1), K=8 (method 2)");
}
