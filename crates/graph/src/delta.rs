//! Mutable delta overlay over an immutable CSR base — the graph layer of
//! the streaming subsystem (ROADMAP item 2, after Sa, arXiv 1804.01276).
//!
//! A [`DeltaGraph`] wraps any [`GraphView`] backend (raw [`CsrGraph`] or
//! byte-delta [`CompressedCsr`]) and records edge insertions and
//! deletions in per-vertex overlays: sorted insert vectors and sorted
//! tombstone vectors, one pair per touched vertex per direction. The
//! overlay itself implements [`GraphView`] — merged ascending-order
//! streaming with early stop — so every existing EdgeMap / pipeline /
//! multireach kernel runs over a mutated graph unmodified, which is the
//! entire point: incremental repair reuses the batch kernels on the
//! *current* graph without a rebuild.
//!
//! # Semantics
//!
//! The mutation API is a **set** API: inserting an edge that is live is
//! a no-op, deleting one that is absent is a no-op, and deleting an edge
//! the base stores with duplicate copies tombstones *all* copies (the
//! copy count is remembered so re-insertion restores them and the degree
//! arithmetic stays exact). Self-loop insertion is rejected as a no-op —
//! the generators' construction path drops self-loops, and they cannot
//! change an SCC partition.
//!
//! # Compaction
//!
//! [`DeltaGraph::compact`] streams base + overlay into a fresh backend
//! via [`CompactBackend::rebuild`], passes the `delta-compact` fault
//! point, and only then swaps the fields: a compaction killed at the
//! fault point leaves the old base + overlay answering exactly as
//! before, losing nothing but the rebuild work.

use crate::bfs::Direction;
use crate::compressed::CompressedCsr;
use crate::csr::{CsrGraph, NodeId};
use crate::view::{GraphView, MemoryFootprint};
use rustc_hash::FxHashMap;

/// Per-vertex, per-direction overlay: targets inserted on top of the
/// base list and base targets tombstoned out of it. Both vectors are
/// kept sorted; `removed` is the total base *copies* the tombstones
/// suppress, so `degree = base_degree - removed + ins.len()` is exact
/// even on a multigraph base.
#[derive(Clone, Debug, Default)]
struct VertexDelta {
    /// Inserted targets, sorted, disjoint from the live base list.
    ins: Vec<NodeId>,
    /// Tombstoned base targets with their base copy count, sorted.
    del: Vec<(NodeId, u32)>,
    /// Sum of tombstoned copy counts (cached for degree arithmetic).
    removed: usize,
}

impl VertexDelta {
    fn is_empty(&self) -> bool {
        self.ins.is_empty() && self.del.is_empty()
    }

    fn heap_bytes(&self) -> usize {
        self.ins.capacity() * std::mem::size_of::<NodeId>()
            + self.del.capacity() * std::mem::size_of::<(NodeId, u32)>()
    }
}

/// One direction's overlays, keyed by source vertex.
#[derive(Clone, Debug, Default)]
struct DirOverlay {
    map: FxHashMap<NodeId, VertexDelta>,
}

impl DirOverlay {
    fn get(&self, n: NodeId) -> Option<&VertexDelta> {
        self.map.get(&n)
    }

    fn entry(&mut self, n: NodeId) -> &mut VertexDelta {
        self.map.entry(n).or_default()
    }

    /// Drops `n`'s overlay if both vectors emptied out, keeping the map
    /// proportional to *live* deltas rather than historical churn.
    fn prune(&mut self, n: NodeId) {
        if self.map.get(&n).is_some_and(VertexDelta::is_empty) {
            self.map.remove(&n);
        }
    }

    fn heap_bytes(&self) -> usize {
        let entries = self.map.capacity()
            * (std::mem::size_of::<NodeId>() + std::mem::size_of::<VertexDelta>());
        entries
            + self
                .map
                .values()
                .map(VertexDelta::heap_bytes)
                .sum::<usize>()
    }
}

/// Cumulative mutation accounting of one [`DeltaGraph`], surfaced
/// through the serve daemon's `stats` verb.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Edge insertions applied (no-ops not counted).
    pub inserts: u64,
    /// Edge deletions applied (no-ops not counted).
    pub deletes: u64,
    /// Live overlay entries right now: inserted edges plus tombstoned
    /// edge groups, the number `compact` would fold away.
    pub pending: usize,
    /// Compactions committed.
    pub compactions: u64,
}

/// A backend that can rebuild itself from a merged base + overlay view —
/// the target of [`DeltaGraph::compact`].
pub trait CompactBackend: GraphView + Sized {
    /// Builds a fresh instance holding exactly the merged adjacency of
    /// `view`. Must not mutate `view`; compaction swaps the result in
    /// only after the `delta-compact` fault point passes.
    fn rebuild(view: &DeltaGraph<Self>) -> Self;
}

impl CompactBackend for CsrGraph {
    /// Exact re-encode: duplicate base copies that were never tombstoned
    /// survive compaction byte-for-byte.
    fn rebuild(view: &DeltaGraph<CsrGraph>) -> CsrGraph {
        let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(view.num_edges());
        for u in view.nodes() {
            view.for_each_neighbor(Direction::Forward, u, |v| edges.push((u, v)));
        }
        CsrGraph::from_edges(view.num_nodes(), &edges)
    }
}

impl CompactBackend for CompressedCsr {
    /// Streams the merged adjacency through the compressed backend's
    /// sharded constructor, which normalizes like the generators do
    /// (duplicates folded, self-loops dropped) — so `num_edges` is
    /// refreshed from the rebuilt base after the swap.
    fn rebuild(view: &DeltaGraph<CompressedCsr>) -> CompressedCsr {
        CompressedCsr::from_edge_stream(view.num_nodes(), 8, |emit| {
            for u in view.nodes() {
                view.for_each_neighbor(Direction::Forward, u, |v| emit(u, v));
            }
        })
    }
}

/// An immutable base graph plus mutable insert/delete overlays, itself a
/// [`GraphView`]. See the module docs for semantics and the compaction
/// protocol.
#[derive(Clone, Debug)]
pub struct DeltaGraph<G: GraphView> {
    base: G,
    fwd: DirOverlay,
    bwd: DirOverlay,
    num_edges: usize,
    stats: DeltaStats,
}

impl<G: GraphView> DeltaGraph<G> {
    /// Wraps `base` with empty overlays.
    pub fn new(base: G) -> DeltaGraph<G> {
        let num_edges = base.num_edges();
        DeltaGraph {
            base,
            fwd: DirOverlay::default(),
            bwd: DirOverlay::default(),
            num_edges,
            stats: DeltaStats::default(),
        }
    }

    /// The wrapped base backend. Kernel code should stay on the
    /// [`GraphView`] surface — reading the base directly bypasses the
    /// overlay and answers about a stale graph (the `delta-overlay` lint
    /// rule polices exactly this outside the graph crate).
    pub fn base(&self) -> &G {
        &self.base
    }

    /// Cumulative mutation counters plus the live overlay size.
    pub fn delta_stats(&self) -> DeltaStats {
        self.stats
    }

    /// Live overlay entries — the work `compact` would fold away.
    pub fn pending(&self) -> usize {
        self.stats.pending
    }

    fn in_range(&self, n: NodeId) -> bool {
        (n as usize) < self.base.num_nodes()
    }

    /// Is `u -> v` live under base + overlay? Overlay lookups first so a
    /// tombstoned base edge reads as absent and an inserted one as
    /// present without touching the base list.
    pub fn has_edge_live(&self, u: NodeId, v: NodeId) -> bool {
        if !self.in_range(u) || !self.in_range(v) {
            return false;
        }
        if let Some(d) = self.fwd.get(u) {
            if d.del.binary_search_by_key(&v, |&(t, _)| t).is_ok() {
                return false;
            }
            if d.ins.binary_search(&v).is_ok() {
                return true;
            }
        }
        self.base.has_edge(u, v)
    }

    /// Counts the base copies of `u -> v` (duplicates are adjacent by
    /// the [`GraphView`] contract, so the scan stops right after them).
    fn base_copies(&self, u: NodeId, v: NodeId) -> u32 {
        let mut copies = 0u32;
        self.base
            .for_each_neighbor_while(Direction::Forward, u, |w| {
                if w == v {
                    copies += 1;
                    true
                } else {
                    w < v
                }
            });
        copies
    }

    /// Inserts `u -> v`. Returns `false` (a no-op) if the edge is
    /// already live, either endpoint is out of range, or `u == v`.
    /// Re-inserting a tombstoned base edge lifts the tombstone,
    /// restoring the base copies it suppressed.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v || !self.in_range(u) || !self.in_range(v) {
            return false;
        }
        // Tombstone lift: the base already stores the adjacency; undoing
        // the deletion is cheaper and keeps `ins` disjoint from the base.
        if let Some(d) = self.fwd.map.get_mut(&u) {
            if let Ok(i) = d.del.binary_search_by_key(&v, |&(t, _)| t) {
                let (_, copies) = d.del.remove(i);
                d.removed -= copies as usize;
                let b = self.bwd.entry(v);
                let j = b
                    .del
                    .binary_search_by_key(&u, |&(t, _)| t)
                    .expect("tombstones are mirrored");
                b.del.remove(j);
                b.removed -= copies as usize;
                self.fwd.prune(u);
                self.bwd.prune(v);
                self.num_edges += copies as usize;
                self.stats.inserts += 1;
                self.stats.pending -= 1;
                return true;
            }
        }
        if self.has_edge_live(u, v) {
            return false;
        }
        let d = self.fwd.entry(u);
        let i = d.ins.binary_search(&v).expect_err("checked not live");
        d.ins.insert(i, v);
        let b = self.bwd.entry(v);
        let j = b.ins.binary_search(&u).expect_err("mirrored overlay");
        b.ins.insert(j, u);
        self.num_edges += 1;
        self.stats.inserts += 1;
        self.stats.pending += 1;
        true
    }

    /// Deletes `u -> v`. Returns `false` (a no-op) if the edge is not
    /// live. Deleting a base edge tombstones every base copy at once.
    pub fn delete_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if !self.in_range(u) || !self.in_range(v) {
            return false;
        }
        if let Some(d) = self.fwd.map.get_mut(&u) {
            if d.del.binary_search_by_key(&v, |&(t, _)| t).is_ok() {
                return false; // already tombstoned
            }
            if let Ok(i) = d.ins.binary_search(&v) {
                d.ins.remove(i);
                let b = self.bwd.entry(v);
                let j = b.ins.binary_search(&u).expect("mirrored overlay");
                b.ins.remove(j);
                self.fwd.prune(u);
                self.bwd.prune(v);
                self.num_edges -= 1;
                self.stats.deletes += 1;
                self.stats.pending -= 1;
                return true;
            }
        }
        let copies = self.base_copies(u, v);
        if copies == 0 {
            return false;
        }
        let d = self.fwd.entry(u);
        let i = d
            .del
            .binary_search_by_key(&v, |&(t, _)| t)
            .expect_err("checked not tombstoned");
        d.del.insert(i, (v, copies));
        d.removed += copies as usize;
        let b = self.bwd.entry(v);
        let j = b
            .del
            .binary_search_by_key(&u, |&(t, _)| t)
            .expect_err("mirrored overlay");
        b.del.insert(j, (u, copies));
        b.removed += copies as usize;
        self.num_edges -= copies as usize;
        self.stats.deletes += 1;
        self.stats.pending += 1;
        true
    }

    fn overlay(&self, dir: Direction) -> &DirOverlay {
        match dir {
            Direction::Forward => &self.fwd,
            Direction::Backward => &self.bwd,
        }
    }
}

impl<G: CompactBackend> DeltaGraph<G> {
    /// Folds the overlay into a fresh base backend. The rebuild runs
    /// fully before the `delta-compact` fault point; a kill at the point
    /// leaves the old base + overlay untouched and still serving.
    /// Returns the number of overlay entries folded away.
    pub fn compact(&mut self) -> usize {
        let folded = self.stats.pending;
        let rebuilt = G::rebuild(self);
        // recovery: commit point — everything above is side-effect-free
        // on `self`, so a panic here (injected delta-compact fault)
        // loses only the rebuilt backend, never the serving state.
        swscc_sync::fault::point(swscc_sync::fault::DELTA_COMPACT);
        self.base = rebuilt;
        self.fwd = DirOverlay::default();
        self.bwd = DirOverlay::default();
        self.num_edges = self.base.num_edges();
        self.stats.pending = 0;
        self.stats.compactions += 1;
        folded
    }
}

impl<G: GraphView> GraphView for DeltaGraph<G> {
    fn num_nodes(&self) -> usize {
        self.base.num_nodes()
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn degree(&self, dir: Direction, n: NodeId) -> usize {
        let base = self.base.degree(dir, n);
        match self.overlay(dir).get(n) {
            Some(d) => base - d.removed + d.ins.len(),
            None => base,
        }
    }

    fn for_each_neighbor_while(
        &self,
        dir: Direction,
        n: NodeId,
        mut f: impl FnMut(NodeId) -> bool,
    ) {
        let Some(d) = self.overlay(dir).get(n) else {
            // Untouched vertex: zero-overhead passthrough to the base
            // decode loop — the common case on a large graph.
            self.base.for_each_neighbor_while(dir, n, f);
            return;
        };
        let mut ins = d.ins.iter().copied().peekable();
        let mut del_idx = 0usize;
        let mut stopped = false;
        self.base.for_each_neighbor_while(dir, n, |v| {
            while del_idx < d.del.len() && d.del[del_idx].0 < v {
                del_idx += 1;
            }
            if del_idx < d.del.len() && d.del[del_idx].0 == v {
                return true; // tombstoned base copy: emit nothing
            }
            // `ins` is disjoint from the live base list, so strict `<`
            // drains every inserted target that precedes `v`.
            while let Some(&w) = ins.peek() {
                if w >= v {
                    break;
                }
                ins.next();
                if !f(w) {
                    stopped = true;
                    return false;
                }
            }
            if !f(v) {
                stopped = true;
                return false;
            }
            true
        });
        if !stopped {
            for w in ins {
                if !f(w) {
                    break;
                }
            }
        }
    }

    fn memory_footprint(&self) -> MemoryFootprint {
        let base = self.base.memory_footprint();
        MemoryFootprint {
            backend: "delta-overlay",
            side_bytes: base.side_bytes + self.fwd.heap_bytes() + self.bwd.heap_bytes(),
            num_edges: self.num_edges,
            ..base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> CsrGraph {
        CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3), (4, 5)])
    }

    fn out(g: &impl GraphView, n: NodeId) -> Vec<NodeId> {
        let mut v = Vec::new();
        g.for_each_neighbor(Direction::Forward, n, |w| v.push(w));
        v
    }

    fn inc(g: &impl GraphView, n: NodeId) -> Vec<NodeId> {
        let mut v = Vec::new();
        g.for_each_neighbor(Direction::Backward, n, |w| v.push(w));
        v
    }

    #[test]
    fn passthrough_matches_base_exactly() {
        let g = DeltaGraph::new(base());
        let b = base();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 7);
        for n in 0..6u32 {
            assert_eq!(out(&g, n), b.out_neighbors(n));
            assert_eq!(inc(&g, n), b.in_neighbors(n));
            assert_eq!(g.out_degree(n), b.out_neighbors(n).len());
            assert_eq!(g.in_degree(n), b.in_neighbors(n).len());
        }
    }

    #[test]
    fn insert_is_ordered_mirrored_and_idempotent() {
        let mut g = DeltaGraph::new(base());
        assert!(g.insert_edge(5, 0));
        assert!(!g.insert_edge(5, 0), "duplicate insert is a no-op");
        assert!(!g.insert_edge(0, 1), "base edge insert is a no-op");
        assert!(!g.insert_edge(3, 3), "self-loop insert is a no-op");
        assert!(!g.insert_edge(0, 99), "out of range is a no-op");
        assert_eq!(g.num_edges(), 8);
        assert_eq!(out(&g, 5), vec![0]);
        assert_eq!(inc(&g, 0), vec![2, 5]);
        assert!(g.has_edge_live(5, 0));
        assert_eq!(g.out_degree(5), 1);
        assert_eq!(g.in_degree(0), 2);
        assert_eq!(g.delta_stats().inserts, 1);
        assert_eq!(g.pending(), 1);
    }

    #[test]
    fn merged_iteration_interleaves_in_ascending_order() {
        let mut g = DeltaGraph::new(CsrGraph::from_edges(8, &[(0, 2), (0, 5)]));
        assert!(g.insert_edge(0, 1));
        assert!(g.insert_edge(0, 4));
        assert!(g.insert_edge(0, 7));
        assert_eq!(out(&g, 0), vec![1, 2, 4, 5, 7]);
        // Early stop mid-merge honors the contract on both streams.
        let mut seen = Vec::new();
        g.for_each_neighbor_while(Direction::Forward, 0, |v| {
            seen.push(v);
            v < 4
        });
        assert_eq!(seen, vec![1, 2, 4]);
    }

    #[test]
    fn delete_tombstones_base_and_retracts_inserts() {
        let mut g = DeltaGraph::new(base());
        assert!(g.delete_edge(2, 0));
        assert!(!g.delete_edge(2, 0), "double delete is a no-op");
        assert!(!g.delete_edge(0, 5), "absent edge delete is a no-op");
        assert_eq!(g.num_edges(), 6);
        assert_eq!(out(&g, 2), vec![3]);
        assert_eq!(inc(&g, 0), Vec::<NodeId>::new());
        assert!(!g.has_edge_live(2, 0));
        assert_eq!(g.out_degree(2), 1);
        // Deleting an overlay insert retracts it entirely.
        assert!(g.insert_edge(5, 1));
        assert!(g.delete_edge(5, 1));
        assert_eq!(g.num_edges(), 6);
        assert_eq!(out(&g, 5), Vec::<NodeId>::new());
        assert_eq!(g.pending(), 1, "only the tombstone remains live");
    }

    #[test]
    fn tombstone_lift_restores_base_copies() {
        // A multigraph base: two copies of 0 -> 1.
        let mut g = DeltaGraph::new(CsrGraph::from_edges(3, &[(0, 1), (0, 1), (1, 2)]));
        assert_eq!(g.num_edges(), 3);
        assert!(g.delete_edge(0, 1), "tombstones both copies");
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_degree(0), 0);
        assert!(g.insert_edge(0, 1), "lifts the tombstone");
        assert_eq!(g.num_edges(), 3, "both base copies restored");
        assert_eq!(out(&g, 0), vec![1, 1]);
        assert_eq!(g.pending(), 0, "overlay folded back to nothing");
    }

    #[test]
    fn kernels_see_the_mutated_graph_through_graphview() {
        // induced_subgraph and materialize_csr are provided GraphView
        // methods — they must observe overlay edits transparently.
        let mut g = DeltaGraph::new(base());
        g.insert_edge(5, 0);
        g.delete_edge(2, 3);
        let m = g.materialize_csr();
        assert_eq!(m.num_edges(), g.num_edges());
        assert!(m.has_edge(5, 0));
        assert!(!m.has_edge(2, 3));
        let sub = g.induced_subgraph(&[0, 1, 2, 5]);
        assert_eq!(sub.num_nodes(), 4);
        assert!(sub.has_edge(3, 0), "local(5) -> local(0) survives");
    }

    #[test]
    fn compact_folds_overlay_for_both_backends() {
        let mut g = DeltaGraph::new(base());
        g.insert_edge(5, 0);
        g.delete_edge(3, 4);
        let before = g.materialize_csr();
        assert_eq!(g.compact(), 2);
        assert_eq!(g.pending(), 0);
        assert_eq!(g.delta_stats().compactions, 1);
        assert_eq!(
            g.materialize_csr().edges().collect::<Vec<_>>(),
            before.edges().collect::<Vec<_>>()
        );

        let mut z = DeltaGraph::new(CompressedCsr::from_csr(&base()));
        z.insert_edge(5, 0);
        z.delete_edge(3, 4);
        let want = z.materialize_csr();
        z.compact();
        assert_eq!(
            z.materialize_csr().edges().collect::<Vec<_>>(),
            want.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn footprint_reports_overlay_as_side_bytes() {
        let mut g = DeltaGraph::new(base());
        let empty = g.memory_footprint();
        assert_eq!(empty.backend, "delta-overlay");
        g.insert_edge(5, 0);
        let loaded = g.memory_footprint();
        assert!(loaded.side_bytes > empty.side_bytes);
        assert_eq!(loaded.num_edges, 8);
    }
}
