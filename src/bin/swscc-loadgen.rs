//! `swscc-loadgen` — deterministic load generator for `swscc-serve`.
//!
//! ```text
//! swscc-loadgen (--socket PATH | --connect ADDR)
//!               [--clients N] [--requests N] [--seed N]
//!               [--mix SAME,ID,REACH,STATS,RECOMPUTE]
//!               [--write-mix INSERT,DELETE]
//!               [--deadline-ms MS] [--max-retries N] [--backoff-ms MS]
//!               [--io-timeout-ms MS] [--max-p99-ms MS]
//!               [--report FILE] [--shutdown]
//! ```
//!
//! Issues a seeded open-loop workload (see `swscc::serve::loadgen` for
//! the determinism contract), prints the latency/throughput report, and
//! optionally writes it as JSON (`--report`) and shuts the server down
//! afterwards (`--shutdown`).
//!
//! Exit codes: `0` if the run saw zero non-typed failures and (when
//! `--max-p99-ms` is given) p99 stayed under the bound; `1` otherwise;
//! `2` for configuration errors. This is the assertion CI's serve lane
//! leans on: under fault injection, availability must degrade to typed
//! errors only.

use std::process::ExitCode;
use std::time::Duration;
use swscc::serve::loadgen::{self, LoadgenOptions, Mix};
use swscc::serve::{Client, Endpoint};

const EXIT_CONFIG: u8 = 2;

struct CliError {
    code: u8,
    message: String,
}

impl CliError {
    fn config(message: impl Into<String>) -> CliError {
        CliError {
            code: EXIT_CONFIG,
            message: message.into(),
        }
    }

    fn runtime(message: impl Into<String>) -> CliError {
        CliError {
            code: 1,
            message: message.into(),
        }
    }
}

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: impl Iterator<Item = String>) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut raw = raw.peekable();
        while let Some(a) = raw.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = if raw.peek().is_some_and(|v| !v.starts_with("--")) {
                    raw.next()
                } else {
                    None
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(a);
            }
        }
        Args { positional, flags }
    }

    fn flag_value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn flag_present(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn parsed_flag<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.flag_value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::config(format!("invalid value for --{name}: {v:?}"))),
        }
    }
}

/// Parses `--mix SAME,ID,REACH,STATS,RECOMPUTE` (five comma-separated
/// non-negative weights).
fn parse_mix(spec: &str) -> Result<Mix, CliError> {
    let parts: Vec<&str> = spec.split(',').map(str::trim).collect();
    if parts.len() != 5 {
        return Err(CliError::config(format!(
            "--mix wants 5 comma-separated weights (same,id,reach,stats,recompute), got {spec:?}"
        )));
    }
    let mut w = [0u32; 5];
    for (slot, part) in w.iter_mut().zip(&parts) {
        *slot = part
            .parse()
            .map_err(|_| CliError::config(format!("invalid --mix weight {part:?}")))?;
    }
    Ok(Mix {
        same_scc: w[0],
        scc_id: w[1],
        reach: w[2],
        stats: w[3],
        recompute: w[4],
        ..Mix::default()
    })
}

/// Parses `--write-mix INSERT,DELETE` (two comma-separated non-negative
/// weights for the mutation verbs, 0,0 = read-only load).
fn parse_write_mix(spec: &str) -> Result<(u32, u32), CliError> {
    let parts: Vec<&str> = spec.split(',').map(str::trim).collect();
    if parts.len() != 2 {
        return Err(CliError::config(format!(
            "--write-mix wants 2 comma-separated weights (insert,delete), got {spec:?}"
        )));
    }
    let mut w = [0u32; 2];
    for (slot, part) in w.iter_mut().zip(&parts) {
        *slot = part
            .parse()
            .map_err(|_| CliError::config(format!("invalid --write-mix weight {part:?}")))?;
    }
    Ok((w[0], w[1]))
}

fn usage() -> String {
    "usage: swscc-loadgen (--socket PATH | --connect ADDR) [--clients N] \
     [--requests N] [--seed N] [--mix SAME,ID,REACH,STATS,RECOMPUTE] \
     [--write-mix INSERT,DELETE] [--deadline-ms MS] [--max-retries N] \
     [--backoff-ms MS] [--io-timeout-ms MS] [--max-p99-ms MS] \
     [--report FILE] [--shutdown]"
        .to_string()
}

fn run(args: &Args) -> Result<bool, CliError> {
    let endpoint = match (args.flag_value("socket"), args.flag_value("connect")) {
        (Some(path), None) => Endpoint::Unix(path.into()),
        (None, Some(addr)) => Endpoint::Tcp(addr.to_string()),
        (None, None) => {
            return Err(CliError::config(
                "one of --socket PATH or --connect ADDR is required",
            ))
        }
        (Some(_), Some(_)) => {
            return Err(CliError::config(
                "--socket and --connect are mutually exclusive",
            ))
        }
    };
    let mut mix = match args.flag_value("mix") {
        Some(spec) => parse_mix(spec)?,
        None => {
            if args.flag_present("mix") {
                return Err(CliError::config(
                    "--mix requires 5 weights, e.g. 45,30,15,8,2",
                ));
            }
            Mix::default()
        }
    };
    match args.flag_value("write-mix") {
        Some(spec) => {
            let (insert_edge, delete_edge) = parse_write_mix(spec)?;
            mix.insert_edge = insert_edge;
            mix.delete_edge = delete_edge;
        }
        None => {
            if args.flag_present("write-mix") {
                return Err(CliError::config(
                    "--write-mix requires 2 weights, e.g. 10,5",
                ));
            }
        }
    }
    let io_timeout = Duration::from_millis(args.parsed_flag("io-timeout-ms", 10_000u64)?);
    let opts = LoadgenOptions {
        clients: args.parsed_flag("clients", 4usize)?,
        requests_per_client: args.parsed_flag("requests", 250usize)?,
        seed: args.parsed_flag("seed", 0x10AD_6E4Au64)?,
        mix,
        deadline_ms: args.parsed_flag("deadline-ms", 250u32)?,
        max_retries: args.parsed_flag("max-retries", 6u32)?,
        backoff_base_ms: args.parsed_flag("backoff-ms", 4u64)?,
        io_timeout,
    };

    let report = loadgen::run(&endpoint, &opts).map_err(CliError::runtime)?;
    println!(
        "loadgen: {} attempted, {} ok, {} out-of-range, {} overloaded ({} gave up), \
         {} deadline misses, {} recompute-failed, {} mutated, {} mutate-failed, \
         {} reconnects, {} non-typed",
        report.attempted,
        report.ok,
        report.out_of_range,
        report.overloaded,
        report.gave_up,
        report.deadline_misses,
        report.recompute_failed,
        report.mutated,
        report.mutate_failed,
        report.reconnects,
        report.non_typed_failures,
    );
    println!(
        "loadgen: p50 {}us  p99 {}us  max {}us  {:.1} req/s over {}ms",
        report.p50_us, report.p99_us, report.max_us, report.throughput_rps, report.elapsed_ms
    );

    if let Some(path) = args.flag_value("report") {
        std::fs::write(path, report.to_json())
            .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?;
        println!("loadgen: report written to {path}");
    }

    if args.flag_present("shutdown") {
        let mut admin = Client::connect(&endpoint, io_timeout)
            .map_err(|e| CliError::runtime(format!("cannot connect for shutdown: {e}")))?;
        admin
            .shutdown()
            .map_err(|e| CliError::runtime(format!("shutdown verb failed: {e}")))?;
        println!("loadgen: server acknowledged shutdown");
    }

    let mut healthy = report.non_typed_failures == 0;
    if let Some(max_p99) = args.flag_value("max-p99-ms") {
        let max_p99: u64 = max_p99
            .parse()
            .map_err(|_| CliError::config(format!("invalid --max-p99-ms {max_p99:?}")))?;
        if report.p99_us > max_p99 * 1000 {
            eprintln!(
                "loadgen: p99 {}us exceeds --max-p99-ms {max_p99}",
                report.p99_us
            );
            healthy = false;
        }
    }
    if report.non_typed_failures > 0 {
        eprintln!(
            "loadgen: {} non-typed failures (availability contract violated)",
            report.non_typed_failures
        );
    }
    Ok(healthy)
}

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    if args.flag_present("help") || args.positional.first().is_some_and(|p| p == "help") {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("swscc-loadgen: {}", e.message);
            ExitCode::from(e.code)
        }
    }
}
