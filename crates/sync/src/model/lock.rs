//! Scheduler-instrumented `Mutex`/`RwLock` (model builds only).
//!
//! Virtual-grant-first protocol: inside an explore session a thread first
//! acquires the lock *virtually* (blocking in the scheduler until the
//! model lock state admits it, with an acquire happens-before edge from
//! the last release), and only then takes the real underlying lock —
//! which is guaranteed free, because the virtual protocol already
//! serializes admission. Outside a session the wrappers are plain
//! `parking_lot` locks.
//!
//! Lock/unlock clocks give locks *strong* (acquire/release) semantics in
//! the memory model, matching reality: data behind a mutex never goes
//! stale.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use super::{current, Runtime};

/// Session info a guard needs to virtually release on drop.
struct Held {
    rt: Arc<Runtime>,
    tid: usize,
    addr: usize,
}

fn virtual_acquire_write(addr: usize) -> Option<Held> {
    let (rt, tid) = current()?;
    let mut g = rt.st();
    Runtime::tick(&mut g, tid);
    g = rt.yield_point(g, tid);
    g = rt.block_on(g, tid, |st| {
        st.locks
            .get(&addr)
            .is_none_or(|l| !l.writer && l.readers == 0)
    });
    let ls = g.locks.entry(addr).or_default();
    ls.writer = true;
    let lc = ls.clock.clone();
    g.threads[tid].clock.join(&lc);
    drop(g);
    Some(Held { rt, tid, addr })
}

fn virtual_acquire_read(addr: usize) -> Option<Held> {
    let (rt, tid) = current()?;
    let mut g = rt.st();
    Runtime::tick(&mut g, tid);
    g = rt.yield_point(g, tid);
    g = rt.block_on(g, tid, |st| st.locks.get(&addr).is_none_or(|l| !l.writer));
    let ls = g.locks.entry(addr).or_default();
    ls.readers += 1;
    let lc = ls.clock.clone();
    g.threads[tid].clock.join(&lc);
    drop(g);
    Some(Held { rt, tid, addr })
}

fn try_virtual_acquire_write(addr: usize) -> Option<Option<Held>> {
    let (rt, tid) = current()?;
    let mut g = rt.st();
    Runtime::tick(&mut g, tid);
    g = rt.yield_point(g, tid);
    let free = g
        .locks
        .get(&addr)
        .is_none_or(|l| !l.writer && l.readers == 0);
    if !free {
        return Some(None);
    }
    let ls = g.locks.entry(addr).or_default();
    ls.writer = true;
    let lc = ls.clock.clone();
    g.threads[tid].clock.join(&lc);
    drop(g);
    Some(Some(Held { rt, tid, addr }))
}

impl Held {
    /// Virtual release. Never panics (runs in guard Drop, possibly while
    /// unwinding on ModelAbort) — no yield point, just state + wakeups.
    fn release(&self, write: bool) {
        let mut g = self.rt.st();
        Runtime::tick(&mut g, self.tid);
        let tclock = g.threads[self.tid].clock.clone();
        let ls = g.locks.entry(self.addr).or_default();
        if write {
            ls.writer = false;
            ls.clock = tclock;
        } else {
            ls.readers = ls.readers.saturating_sub(1);
            // Readers also publish: a later writer happens-after them.
            ls.clock.join(&tclock);
        }
        // A release can turn blocked acquirers' predicates true — stale
        // Blocked statuses must not be trusted until they re-check.
        g.wake_gen += 1;
        drop(g);
        self.rt.wake_all();
    }
}

/// Instrumented drop-in for `parking_lot::Mutex`.
pub struct Mutex<T: ?Sized> {
    real: parking_lot::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    real: Option<parking_lot::MutexGuard<'a, T>>,
    held: Option<Held>,
}

impl<T> Mutex<T> {
    pub const fn new(v: T) -> Self {
        Self {
            real: parking_lot::Mutex::new(v),
        }
    }

    pub fn into_inner(self) -> T {
        self.real.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn addr(&self) -> usize {
        self as *const _ as *const () as usize
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        let held = virtual_acquire_write(self.addr());
        MutexGuard {
            real: Some(self.real.lock()),
            held,
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match try_virtual_acquire_write(self.addr()) {
            // In-session: virtual admission decides; the real try_lock
            // then always succeeds.
            Some(Some(held)) => Some(MutexGuard {
                real: Some(self.real.lock()),
                held: Some(held),
            }),
            Some(None) => None,
            None => self.real.try_lock().map(|g| MutexGuard {
                real: Some(g),
                held: None,
            }),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.real.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.real.as_ref().unwrap()
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.real.as_mut().unwrap()
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Real unlock first, then virtual release (admission order is
        // irrelevant once the real lock is free; virtual state gates it).
        self.real = None;
        if let Some(h) = &self.held {
            h.release(true);
        }
    }
}

/// Instrumented drop-in for `parking_lot::RwLock`.
pub struct RwLock<T: ?Sized> {
    real: parking_lot::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    real: Option<parking_lot::RwLockReadGuard<'a, T>>,
    held: Option<Held>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    real: Option<parking_lot::RwLockWriteGuard<'a, T>>,
    held: Option<Held>,
}

impl<T> RwLock<T> {
    pub const fn new(v: T) -> Self {
        Self {
            real: parking_lot::RwLock::new(v),
        }
    }

    pub fn into_inner(self) -> T {
        self.real.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    fn addr(&self) -> usize {
        self as *const _ as *const () as usize
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let held = virtual_acquire_read(self.addr());
        RwLockReadGuard {
            real: Some(self.real.read()),
            held,
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let held = virtual_acquire_write(self.addr());
        RwLockWriteGuard {
            real: Some(self.real.write()),
            held,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.real.get_mut()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.real.as_ref().unwrap()
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.real = None;
        if let Some(h) = &self.held {
            h.release(false);
        }
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.real.as_ref().unwrap()
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.real.as_mut().unwrap()
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.real = None;
        if let Some(h) = &self.held {
            h.release(true);
        }
    }
}
