//! Wire protocol of the `swscc-serve` daemon: length-prefixed binary
//! frames over TCP or a unix socket.
//!
//! Every frame is `[u32 LE length][payload]`. Request payloads start
//! with a verb byte; query verbs carry a `u32 LE` deadline budget in
//! milliseconds followed by their `u32 LE` node-id arguments, nothing
//! else — trailing bytes are a protocol error, not padding. Response
//! payloads start with a status byte: values below `0x80` are success
//! variants, values at or above `0x80` are typed errors.
//!
//! The decoder is exit-free by construction: every read goes through a
//! bounds-checked cursor, message bytes pass through
//! [`String::from_utf8_lossy`], and frame lengths are capped
//! ([`MAX_REQUEST_FRAME`] / [`MAX_RESPONSE_FRAME`]) *before* any
//! allocation, so a hostile length prefix cannot balloon memory and a
//! truncated or garbage frame surfaces as a [`FrameError`] — never a
//! panic, never `process::exit`.

use std::io::{ErrorKind, Read, Write};

/// Hard cap on an inbound request payload. The largest legal request is
/// a full mutation batch ([`MAX_MUTATION_BATCH`] ops at 9 bytes each
/// plus the header); the cap still keeps a hostile length prefix from
/// allocating real memory server-side.
pub const MAX_REQUEST_FRAME: usize = 4096;

/// Most mutation ops one `BatchMutate` frame may carry. Bounds the work
/// a single frame can demand and keeps the batch comfortably inside
/// [`MAX_REQUEST_FRAME`].
pub const MAX_MUTATION_BATCH: usize = 256;

/// Hard cap on a response payload. The largest legal response (stats,
/// or an error carrying a capped message) stays well under this.
pub const MAX_RESPONSE_FRAME: usize = 256;

/// Error-message bytes are truncated to this length before encoding so
/// a pathological panic payload cannot blow the response frame cap.
pub const MAX_ERROR_MESSAGE: usize = 120;

const VERB_PING: u8 = 0x00;
const VERB_SAME_SCC: u8 = 0x01;
const VERB_SCC_ID: u8 = 0x02;
const VERB_COND_REACH: u8 = 0x03;
const VERB_STATS: u8 = 0x04;
const VERB_RECOMPUTE: u8 = 0x05;
const VERB_SHUTDOWN: u8 = 0x06;
const VERB_INSERT_EDGE: u8 = 0x07;
const VERB_DELETE_EDGE: u8 = 0x08;
const VERB_BATCH_MUTATE: u8 = 0x09;
const VERB_COMPACT: u8 = 0x0a;

const OP_INSERT: u8 = 0x01;
const OP_DELETE: u8 = 0x02;

const STATUS_PONG: u8 = 0x00;
const STATUS_BOOL: u8 = 0x01;
const STATUS_ID: u8 = 0x02;
const STATUS_STATS: u8 = 0x03;
const STATUS_RECOMPUTED: u8 = 0x04;
const STATUS_SHUTTING_DOWN: u8 = 0x05;
const STATUS_MUTATED: u8 = 0x06;
const STATUS_COMPACTED: u8 = 0x07;
const STATUS_BAD_REQUEST: u8 = 0x80;
const STATUS_OUT_OF_RANGE: u8 = 0x81;
const STATUS_OVERLOADED: u8 = 0x82;
const STATUS_DEADLINE_EXCEEDED: u8 = 0x83;
const STATUS_RECOMPUTE_FAILED: u8 = 0x84;
const STATUS_INTERNAL: u8 = 0x85;
const STATUS_MUTATE_FAILED: u8 = 0x86;

/// One edge mutation inside a [`Request::BatchMutate`] frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MutOp {
    /// `true` = insert the edge, `false` = delete it.
    pub insert: bool,
    /// Source node id.
    pub u: u32,
    /// Target node id.
    pub v: u32,
}

/// One client request. Query and mutation verbs carry their own
/// deadline budget in milliseconds (`0` = "use the server default");
/// the remaining admin verbs do not — `Recompute` runs under the
/// server's recompute policy, and `Ping`/`Stats`/`Shutdown` are
/// answered from memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; bypasses admission.
    Ping,
    /// Are `u` and `v` in the same SCC?
    SameScc { u: u32, v: u32, deadline_ms: u32 },
    /// Component id of `u`.
    SccId { u: u32, deadline_ms: u32 },
    /// Is `v` reachable from `u` (answered on the condensation DAG)?
    CondReach { u: u32, v: u32, deadline_ms: u32 },
    /// Service counters + current epoch; bypasses admission.
    Stats,
    /// Rebuild the snapshot and swap the epoch (admin).
    Recompute,
    /// Stop accepting connections and exit the serve loop (admin).
    Shutdown,
    /// Insert edge `u -> v` and publish the repaired epoch.
    InsertEdge { u: u32, v: u32, deadline_ms: u32 },
    /// Delete edge `u -> v` and publish the repaired epoch.
    DeleteEdge { u: u32, v: u32, deadline_ms: u32 },
    /// Apply up to [`MAX_MUTATION_BATCH`] mutations as one write and
    /// publish a single repaired epoch for the whole batch.
    BatchMutate { deadline_ms: u32, ops: Vec<MutOp> },
    /// Fold the pending delta overlay into a fresh base (admin).
    Compact,
}

/// Service counters as reported by [`Request::Stats`]. All counters are
/// cumulative since server start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Epoch of the snapshot currently serving queries.
    pub epoch: u64,
    /// Nodes in the served graph.
    pub num_nodes: u64,
    /// Edges in the served graph.
    pub num_edges: u64,
    /// SCCs in the serving snapshot.
    pub num_components: u64,
    /// Query requests admitted (shed requests not included).
    pub queries: u64,
    /// Query requests shed at the admission gate.
    pub shed: u64,
    /// Admitted queries that ran out of deadline budget.
    pub deadline_misses: u64,
    /// Recomputes that published a new epoch.
    pub recomputes_ok: u64,
    /// Recomputes that failed (typed error or injected panic) — the
    /// previous epoch kept serving.
    pub recomputes_failed: u64,
    /// Connections dropped for malformed frames or handler panics.
    pub quarantined: u64,
    /// `true` iff the most recent recompute failed, i.e. the serving
    /// snapshot is stale relative to what an admin asked for.
    pub stale: bool,
    /// Mutation requests (single or batch) that published an epoch.
    pub mutations_ok: u64,
    /// Mutation requests that failed typed or panicked (the previous
    /// epoch kept serving; the engine healed by rebuild).
    pub mutations_failed: u64,
    /// Edge deltas currently pending in the overlay (since the last
    /// compaction).
    pub pending_deltas: u64,
    /// Delta-overlay compactions folded into a fresh base.
    pub compactions: u64,
    /// `true` iff a mutation currently holds the write gate.
    pub mutating: bool,
}

/// Outcome summary of one mutation request (single verbs report a
/// one-op batch).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MutateReply {
    /// Epoch now serving the mutated partition.
    pub epoch: u64,
    /// Ops that changed the graph (the rest were no-ops: duplicate
    /// inserts, absent deletes, self-loops, out-of-range ids).
    pub applied: u32,
    /// Ops that left the graph unchanged.
    pub noops: u32,
    /// Component merges triggered by the batch.
    pub merges: u32,
    /// Component splits triggered by the batch.
    pub splits: u32,
    /// Ops that degraded to a full recompute (residue limit).
    pub rebuilds: u32,
    /// SCCs after the batch.
    pub num_components: u64,
    /// Overlay deltas pending after the batch (auto-compaction may have
    /// folded them).
    pub pending_deltas: u64,
}

/// One server response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Boolean answer (`SameScc`, `CondReach`).
    Bool(bool),
    /// Component id answer (`SccId`).
    Id(u32),
    /// Answer to [`Request::Stats`].
    Stats(StatsReply),
    /// Recompute succeeded; the new epoch is now serving.
    Recomputed { epoch: u64 },
    /// Acknowledges [`Request::Shutdown`]; the connection closes next.
    ShuttingDown,
    /// The frame decoded but was not a well-formed request (or the
    /// handler rejected it); the connection is quarantined after this.
    BadRequest { message: String },
    /// A node id was outside the served graph.
    OutOfRange,
    /// Shed at the admission gate (or recompute already in flight);
    /// retry after the suggested backoff.
    Overloaded { retry_after_ms: u32 },
    /// The request's deadline budget expired before the answer was
    /// ready.
    DeadlineExceeded,
    /// Recompute failed; the previous epoch keeps serving (stale flag
    /// set in stats).
    RecomputeFailed { message: String },
    /// Unexpected internal error answering a query (never a crash —
    /// the server stays up).
    Internal { message: String },
    /// Mutation applied; a repaired epoch is now serving.
    Mutated(MutateReply),
    /// Compaction folded the overlay; `folded` deltas went into the
    /// fresh base.
    Compacted { epoch: u64, folded: u64 },
    /// Mutation failed (typed error or caught panic); the previous
    /// epoch keeps serving and the engine heals on the next write.
    MutateFailed { message: String },
}

/// Why a frame could not be read or decoded. Every variant is a clean,
/// typed failure; nothing in this module panics on wire input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Clean EOF between frames: the peer closed the connection.
    ConnectionClosed,
    /// The stream ended (or the payload ran out) mid-frame.
    Truncated,
    /// The length prefix exceeded the frame cap; rejected before any
    /// allocation.
    Oversized {
        /// Claimed payload length.
        len: usize,
        /// The cap it violated.
        max: usize,
    },
    /// The payload decoded but had bytes left over.
    TrailingBytes {
        /// How many undecoded bytes remained.
        extra: usize,
    },
    /// Unknown request verb byte.
    UnknownVerb(u8),
    /// Unknown response status byte.
    UnknownStatus(u8),
    /// Transport-level failure (timeout, reset, ...).
    Io(ErrorKind),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::ConnectionClosed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes exceeds cap of {max}")
            }
            FrameError::TrailingBytes { extra } => {
                write!(f, "malformed frame: {extra} trailing bytes")
            }
            FrameError::UnknownVerb(v) => write!(f, "unknown request verb {v:#04x}"),
            FrameError::UnknownStatus(s) => write!(f, "unknown response status {s:#04x}"),
            FrameError::Io(kind) => write!(f, "transport error: {kind:?}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Maps a mid-frame I/O error: EOF inside a frame is [`FrameError::Truncated`],
/// anything else keeps its transport kind.
fn mid_frame(e: std::io::Error) -> FrameError {
    if e.kind() == ErrorKind::UnexpectedEof {
        FrameError::Truncated
    } else {
        FrameError::Io(e.kind())
    }
}

/// Reads one `[u32 LE length][payload]` frame, enforcing `max` *before*
/// allocating the payload buffer. A clean close before the first length
/// byte is [`FrameError::ConnectionClosed`]; an EOF anywhere later is
/// [`FrameError::Truncated`].
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Vec<u8>, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(FrameError::ConnectionClosed),
            Ok(_) => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e.kind())),
        }
    }
    len_buf[0] = first[0];
    r.read_exact(&mut len_buf[1..]).map_err(mid_frame)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max {
        return Err(FrameError::Oversized { len, max });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(mid_frame)?;
    Ok(payload)
}

/// Writes one frame. The transport's write timeout is the caller's
/// responsibility: the server arms one at accept and the client at
/// connect, so a slow peer stalls only its own connection thread.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    debug_assert!(payload.len() <= u32::MAX as usize);
    let len = (payload.len() as u32).to_le_bytes();
    // serve: the sockets behind this generic `Write` already carry a
    // write timeout (armed by Server at accept / Client at connect);
    // this transport-agnostic helper cannot set one itself.
    w.write_all(&len).map_err(|e| FrameError::Io(e.kind()))?;
    w.write_all(payload).map_err(|e| FrameError::Io(e.kind()))?;
    w.flush().map_err(|e| FrameError::Io(e.kind()))?;
    Ok(())
}

/// Bounds-checked little-endian reader over a decoded payload.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Cur<'a> {
        Cur { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self.pos.checked_add(n).ok_or(FrameError::Truncated)?;
        if end > self.buf.len() {
            return Err(FrameError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Consumes the remainder as lossily-decoded UTF-8 text.
    fn rest_text(&mut self) -> String {
        let rest = &self.buf[self.pos..];
        self.pos = self.buf.len();
        String::from_utf8_lossy(rest).into_owned()
    }

    /// Asserts the payload is fully consumed — trailing bytes are a
    /// protocol error, not padding.
    fn finish(self) -> Result<(), FrameError> {
        let extra = self.buf.len() - self.pos;
        if extra == 0 {
            Ok(())
        } else {
            Err(FrameError::TrailingBytes { extra })
        }
    }
}

/// Truncates `message` to [`MAX_ERROR_MESSAGE`] bytes (the decode side
/// is lossy-UTF-8, so cutting inside a code point is safe on the wire).
fn cap_message(message: &str) -> &[u8] {
    &message.as_bytes()[..message.len().min(MAX_ERROR_MESSAGE)]
}

/// Encodes a request payload (frame length prefix not included).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(13);
    match *req {
        Request::Ping => out.push(VERB_PING),
        Request::SameScc { u, v, deadline_ms } => {
            out.push(VERB_SAME_SCC);
            out.extend_from_slice(&deadline_ms.to_le_bytes());
            out.extend_from_slice(&u.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        Request::SccId { u, deadline_ms } => {
            out.push(VERB_SCC_ID);
            out.extend_from_slice(&deadline_ms.to_le_bytes());
            out.extend_from_slice(&u.to_le_bytes());
        }
        Request::CondReach { u, v, deadline_ms } => {
            out.push(VERB_COND_REACH);
            out.extend_from_slice(&deadline_ms.to_le_bytes());
            out.extend_from_slice(&u.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        Request::Stats => out.push(VERB_STATS),
        Request::Recompute => out.push(VERB_RECOMPUTE),
        Request::Shutdown => out.push(VERB_SHUTDOWN),
        Request::InsertEdge { u, v, deadline_ms } => {
            out.push(VERB_INSERT_EDGE);
            out.extend_from_slice(&deadline_ms.to_le_bytes());
            out.extend_from_slice(&u.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        Request::DeleteEdge { u, v, deadline_ms } => {
            out.push(VERB_DELETE_EDGE);
            out.extend_from_slice(&deadline_ms.to_le_bytes());
            out.extend_from_slice(&u.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        Request::BatchMutate {
            deadline_ms,
            ref ops,
        } => {
            debug_assert!(ops.len() <= MAX_MUTATION_BATCH);
            out.push(VERB_BATCH_MUTATE);
            out.extend_from_slice(&deadline_ms.to_le_bytes());
            out.extend_from_slice(&(ops.len().min(MAX_MUTATION_BATCH) as u16).to_le_bytes());
            for op in ops.iter().take(MAX_MUTATION_BATCH) {
                out.push(if op.insert { OP_INSERT } else { OP_DELETE });
                out.extend_from_slice(&op.u.to_le_bytes());
                out.extend_from_slice(&op.v.to_le_bytes());
            }
        }
        Request::Compact => out.push(VERB_COMPACT),
    }
    out
}

/// Decodes a request payload; strict about trailing bytes.
pub fn decode_request(payload: &[u8]) -> Result<Request, FrameError> {
    let mut c = Cur::new(payload);
    let req = match c.u8()? {
        VERB_PING => Request::Ping,
        VERB_SAME_SCC => {
            let deadline_ms = c.u32()?;
            Request::SameScc {
                deadline_ms,
                u: c.u32()?,
                v: c.u32()?,
            }
        }
        VERB_SCC_ID => {
            let deadline_ms = c.u32()?;
            Request::SccId {
                deadline_ms,
                u: c.u32()?,
            }
        }
        VERB_COND_REACH => {
            let deadline_ms = c.u32()?;
            Request::CondReach {
                deadline_ms,
                u: c.u32()?,
                v: c.u32()?,
            }
        }
        VERB_STATS => Request::Stats,
        VERB_RECOMPUTE => Request::Recompute,
        VERB_SHUTDOWN => Request::Shutdown,
        VERB_INSERT_EDGE => {
            let deadline_ms = c.u32()?;
            Request::InsertEdge {
                deadline_ms,
                u: c.u32()?,
                v: c.u32()?,
            }
        }
        VERB_DELETE_EDGE => {
            let deadline_ms = c.u32()?;
            Request::DeleteEdge {
                deadline_ms,
                u: c.u32()?,
                v: c.u32()?,
            }
        }
        VERB_BATCH_MUTATE => {
            let deadline_ms = c.u32()?;
            let count = usize::from(u16::from_le_bytes(c.take(2)?.try_into().expect("2 bytes")));
            if count > MAX_MUTATION_BATCH {
                // The op-count cap is enforced before the op loop, so a
                // hostile count cannot demand unbounded decode work.
                return Err(FrameError::Oversized {
                    len: count,
                    max: MAX_MUTATION_BATCH,
                });
            }
            let mut ops = Vec::with_capacity(count);
            for _ in 0..count {
                let insert = match c.u8()? {
                    OP_INSERT => true,
                    OP_DELETE => false,
                    other => return Err(FrameError::UnknownVerb(other)),
                };
                ops.push(MutOp {
                    insert,
                    u: c.u32()?,
                    v: c.u32()?,
                });
            }
            Request::BatchMutate { deadline_ms, ops }
        }
        VERB_COMPACT => Request::Compact,
        other => return Err(FrameError::UnknownVerb(other)),
    };
    c.finish()?;
    Ok(req)
}

/// Encodes a response payload (frame length prefix not included).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(96);
    match resp {
        Response::Pong => out.push(STATUS_PONG),
        Response::Bool(b) => {
            out.push(STATUS_BOOL);
            out.push(u8::from(*b));
        }
        Response::Id(id) => {
            out.push(STATUS_ID);
            out.extend_from_slice(&id.to_le_bytes());
        }
        Response::Stats(s) => {
            out.push(STATUS_STATS);
            for field in [
                s.epoch,
                s.num_nodes,
                s.num_edges,
                s.num_components,
                s.queries,
                s.shed,
                s.deadline_misses,
                s.recomputes_ok,
                s.recomputes_failed,
                s.quarantined,
                s.mutations_ok,
                s.mutations_failed,
                s.pending_deltas,
                s.compactions,
            ] {
                out.extend_from_slice(&field.to_le_bytes());
            }
            out.push(u8::from(s.stale));
            out.push(u8::from(s.mutating));
        }
        Response::Recomputed { epoch } => {
            out.push(STATUS_RECOMPUTED);
            out.extend_from_slice(&epoch.to_le_bytes());
        }
        Response::ShuttingDown => out.push(STATUS_SHUTTING_DOWN),
        Response::BadRequest { message } => {
            out.push(STATUS_BAD_REQUEST);
            out.extend_from_slice(cap_message(message));
        }
        Response::OutOfRange => out.push(STATUS_OUT_OF_RANGE),
        Response::Overloaded { retry_after_ms } => {
            out.push(STATUS_OVERLOADED);
            out.extend_from_slice(&retry_after_ms.to_le_bytes());
        }
        Response::DeadlineExceeded => out.push(STATUS_DEADLINE_EXCEEDED),
        Response::RecomputeFailed { message } => {
            out.push(STATUS_RECOMPUTE_FAILED);
            out.extend_from_slice(cap_message(message));
        }
        Response::Internal { message } => {
            out.push(STATUS_INTERNAL);
            out.extend_from_slice(cap_message(message));
        }
        Response::Mutated(m) => {
            out.push(STATUS_MUTATED);
            out.extend_from_slice(&m.epoch.to_le_bytes());
            for field in [m.applied, m.noops, m.merges, m.splits, m.rebuilds] {
                out.extend_from_slice(&field.to_le_bytes());
            }
            out.extend_from_slice(&m.num_components.to_le_bytes());
            out.extend_from_slice(&m.pending_deltas.to_le_bytes());
        }
        Response::Compacted { epoch, folded } => {
            out.push(STATUS_COMPACTED);
            out.extend_from_slice(&epoch.to_le_bytes());
            out.extend_from_slice(&folded.to_le_bytes());
        }
        Response::MutateFailed { message } => {
            out.push(STATUS_MUTATE_FAILED);
            out.extend_from_slice(cap_message(message));
        }
    }
    debug_assert!(out.len() <= MAX_RESPONSE_FRAME);
    out
}

/// Decodes a response payload; strict about trailing bytes on
/// fixed-size variants (message-bearing variants consume the rest).
pub fn decode_response(payload: &[u8]) -> Result<Response, FrameError> {
    let mut c = Cur::new(payload);
    let resp = match c.u8()? {
        STATUS_PONG => Response::Pong,
        STATUS_BOOL => Response::Bool(c.u8()? != 0),
        STATUS_ID => Response::Id(c.u32()?),
        STATUS_STATS => Response::Stats(StatsReply {
            epoch: c.u64()?,
            num_nodes: c.u64()?,
            num_edges: c.u64()?,
            num_components: c.u64()?,
            queries: c.u64()?,
            shed: c.u64()?,
            deadline_misses: c.u64()?,
            recomputes_ok: c.u64()?,
            recomputes_failed: c.u64()?,
            quarantined: c.u64()?,
            mutations_ok: c.u64()?,
            mutations_failed: c.u64()?,
            pending_deltas: c.u64()?,
            compactions: c.u64()?,
            stale: c.u8()? != 0,
            mutating: c.u8()? != 0,
        }),
        STATUS_RECOMPUTED => Response::Recomputed { epoch: c.u64()? },
        STATUS_SHUTTING_DOWN => Response::ShuttingDown,
        STATUS_BAD_REQUEST => {
            return Ok(Response::BadRequest {
                message: c.rest_text(),
            })
        }
        STATUS_OUT_OF_RANGE => Response::OutOfRange,
        STATUS_OVERLOADED => Response::Overloaded {
            retry_after_ms: c.u32()?,
        },
        STATUS_DEADLINE_EXCEEDED => Response::DeadlineExceeded,
        STATUS_RECOMPUTE_FAILED => {
            return Ok(Response::RecomputeFailed {
                message: c.rest_text(),
            })
        }
        STATUS_INTERNAL => {
            return Ok(Response::Internal {
                message: c.rest_text(),
            })
        }
        STATUS_MUTATED => Response::Mutated(MutateReply {
            epoch: c.u64()?,
            applied: c.u32()?,
            noops: c.u32()?,
            merges: c.u32()?,
            splits: c.u32()?,
            rebuilds: c.u32()?,
            num_components: c.u64()?,
            pending_deltas: c.u64()?,
        }),
        STATUS_COMPACTED => Response::Compacted {
            epoch: c.u64()?,
            folded: c.u64()?,
        },
        STATUS_MUTATE_FAILED => {
            return Ok(Response::MutateFailed {
                message: c.rest_text(),
            })
        }
        other => return Err(FrameError::UnknownStatus(other)),
    };
    c.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::SameScc {
                u: 3,
                v: 9,
                deadline_ms: 250,
            },
            Request::SccId {
                u: u32::MAX,
                deadline_ms: 0,
            },
            Request::CondReach {
                u: 0,
                v: 7,
                deadline_ms: 1000,
            },
            Request::Stats,
            Request::Recompute,
            Request::Shutdown,
            Request::InsertEdge {
                u: 5,
                v: 6,
                deadline_ms: 100,
            },
            Request::DeleteEdge {
                u: 6,
                v: 5,
                deadline_ms: 0,
            },
            Request::BatchMutate {
                deadline_ms: 500,
                ops: vec![
                    MutOp {
                        insert: true,
                        u: 1,
                        v: 2,
                    },
                    MutOp {
                        insert: false,
                        u: 2,
                        v: 1,
                    },
                ],
            },
            Request::BatchMutate {
                deadline_ms: 0,
                ops: Vec::new(),
            },
            Request::Compact,
        ]
    }

    fn all_responses() -> Vec<Response> {
        vec![
            Response::Pong,
            Response::Bool(true),
            Response::Bool(false),
            Response::Id(42),
            Response::Stats(StatsReply {
                epoch: 3,
                num_nodes: 100,
                num_edges: 500,
                num_components: 7,
                queries: 12,
                shed: 2,
                deadline_misses: 1,
                recomputes_ok: 3,
                recomputes_failed: 1,
                quarantined: 4,
                mutations_ok: 17,
                mutations_failed: 2,
                pending_deltas: 33,
                compactions: 1,
                stale: true,
                mutating: true,
            }),
            Response::Recomputed { epoch: 9 },
            Response::ShuttingDown,
            Response::BadRequest {
                message: "bad".into(),
            },
            Response::OutOfRange,
            Response::Overloaded { retry_after_ms: 25 },
            Response::DeadlineExceeded,
            Response::RecomputeFailed {
                message: "worker panicked: injected fault".into(),
            },
            Response::Internal {
                message: "what".into(),
            },
            Response::Mutated(MutateReply {
                epoch: 12,
                applied: 250,
                noops: 6,
                merges: 3,
                splits: 1,
                rebuilds: 1,
                num_components: 44,
                pending_deltas: 512,
            }),
            Response::Compacted {
                epoch: 13,
                folded: 512,
            },
            Response::MutateFailed {
                message: "worker panicked: injected fault".into(),
            },
        ]
    }

    #[test]
    fn request_roundtrip() {
        for req in all_requests() {
            let bytes = encode_request(&req);
            assert!(bytes.len() <= MAX_REQUEST_FRAME);
            assert_eq!(decode_request(&bytes), Ok(req.clone()), "roundtrip {req:?}");
        }
    }

    #[test]
    fn full_mutation_batch_fits_the_frame_cap() {
        let ops: Vec<MutOp> = (0..MAX_MUTATION_BATCH as u32)
            .map(|i| MutOp {
                insert: i % 2 == 0,
                u: i,
                v: i + 1,
            })
            .collect();
        let req = Request::BatchMutate {
            deadline_ms: 1000,
            ops,
        };
        let bytes = encode_request(&req);
        assert!(bytes.len() <= MAX_REQUEST_FRAME, "{} bytes", bytes.len());
        assert_eq!(decode_request(&bytes), Ok(req));
    }

    #[test]
    fn oversized_batch_count_rejected_before_decode_work() {
        let mut bytes = vec![VERB_BATCH_MUTATE];
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&((MAX_MUTATION_BATCH as u16) + 1).to_le_bytes());
        assert_eq!(
            decode_request(&bytes),
            Err(FrameError::Oversized {
                len: MAX_MUTATION_BATCH + 1,
                max: MAX_MUTATION_BATCH
            })
        );
    }

    #[test]
    fn unknown_batch_op_byte_is_typed() {
        let mut bytes = vec![VERB_BATCH_MUTATE];
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.push(0x7e); // neither OP_INSERT nor OP_DELETE
        bytes.extend_from_slice(&[0u8; 8]);
        assert_eq!(decode_request(&bytes), Err(FrameError::UnknownVerb(0x7e)));
    }

    #[test]
    fn response_roundtrip() {
        for resp in all_responses() {
            let bytes = encode_response(&resp);
            assert!(bytes.len() <= MAX_RESPONSE_FRAME);
            assert_eq!(
                decode_response(&bytes),
                Ok(resp.clone()),
                "roundtrip {resp:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_request(&Request::Ping);
        bytes.push(0);
        assert_eq!(
            decode_request(&bytes),
            Err(FrameError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn truncated_payload_rejected() {
        let bytes = encode_request(&Request::SameScc {
            u: 1,
            v: 2,
            deadline_ms: 3,
        });
        for cut in 0..bytes.len() {
            if cut == 1 {
                continue; // one verb byte alone is Ping-shaped only for 0x00
            }
            let r = decode_request(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} must fail, got {r:?}");
        }
    }

    #[test]
    fn unknown_verb_and_status_are_typed() {
        assert_eq!(decode_request(&[0x7f]), Err(FrameError::UnknownVerb(0x7f)));
        assert_eq!(
            decode_response(&[0xff]),
            Err(FrameError::UnknownStatus(0xff))
        );
        assert_eq!(decode_request(&[]), Err(FrameError::Truncated));
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        // 4 GiB length prefix followed by nothing: must fail fast.
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = wire.as_slice();
        assert_eq!(
            read_frame(&mut r, MAX_REQUEST_FRAME),
            Err(FrameError::Oversized {
                len: u32::MAX as usize,
                max: MAX_REQUEST_FRAME
            })
        );
    }

    #[test]
    fn frame_io_roundtrip_and_truncation() {
        let payload = encode_request(&Request::Stats);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut r = wire.as_slice();
        assert_eq!(read_frame(&mut r, MAX_REQUEST_FRAME).unwrap(), payload);
        // Clean close between frames:
        assert_eq!(
            read_frame(&mut r, MAX_REQUEST_FRAME),
            Err(FrameError::ConnectionClosed)
        );
        // EOF mid-frame:
        let mut cut = &wire[..wire.len() - 1];
        assert_eq!(
            read_frame(&mut cut, MAX_REQUEST_FRAME),
            Err(FrameError::Truncated)
        );
        let mut cut = &wire[..2];
        assert_eq!(
            read_frame(&mut cut, MAX_REQUEST_FRAME),
            Err(FrameError::Truncated)
        );
    }

    #[test]
    fn long_messages_are_capped() {
        let resp = Response::RecomputeFailed {
            message: "x".repeat(10_000),
        };
        let bytes = encode_response(&resp);
        assert!(bytes.len() <= MAX_RESPONSE_FRAME);
        match decode_response(&bytes).unwrap() {
            Response::RecomputeFailed { message } => {
                assert_eq!(message.len(), MAX_ERROR_MESSAGE)
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }
}
