//! Differential battery for the live-residue vertex subset.
//!
//! The `LiveSet` threaded through `AlgoState` must be *observationally
//! invisible*: at every pipeline phase boundary its candidate list is a
//! superset of the alive nodes (lazy deletion), the alive nodes gathered
//! through it equal the ground-truth sequential scan, and — right after a
//! forced compaction — its contents are exactly `{v | state.alive(v)}`.
//! Checked across 1/2/4 threads and all three compaction policies, plus
//! end-to-end: every parallel algorithm agrees with Tarjan under Auto,
//! Always, and Never.

use proptest::prelude::*;
use swscc::core::fwbw::parallel::par_fwbw;
use swscc::core::state::{AlgoState, INITIAL_COLOR};
use swscc::core::tarjan::tarjan_scc;
use swscc::core::trim::par_trim;
use swscc::core::trim2::par_trim2;
use swscc::core::wcc::{par_wcc, par_wcc_unionfind};
use swscc::parallel::pool::with_pool;
use swscc::{detect_scc, Algorithm, CompactionPolicy, CsrGraph, SccConfig};

const POLICIES: [CompactionPolicy; 3] = [
    CompactionPolicy::Auto,
    CompactionPolicy::Always,
    CompactionPolicy::Never,
];

/// Strategy: a random directed graph with 1..=max_n nodes (self-loops and
/// parallel edges allowed).
fn arb_graph(max_n: usize) -> impl Strategy<Value = CsrGraph> {
    (1..max_n).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..4 * n)
            .prop_map(move |edges| CsrGraph::from_edges(n, &edges))
    })
}

/// The live-set invariants that must hold at any phase boundary:
/// candidates ⊇ alive, and gathering through the set equals the
/// ground-truth sequential scan. Under `Never` the set must still be dense.
fn check_invariants(state: &AlgoState<'_>, policy: CompactionPolicy, at: &str) {
    let n = state.num_nodes();
    let truth: Vec<u32> = (0..n as u32).filter(|&v| state.alive(v)).collect();
    let candidates = state.live().candidate_vec();
    assert!(
        truth.iter().all(|v| candidates.binary_search(v).is_ok()),
        "{at}: candidate list lost an alive node"
    );
    assert_eq!(
        state.collect_alive(),
        truth,
        "{at}: live-set gather diverges from sequential alive scan"
    );
    assert_eq!(
        state.count_alive(),
        truth.len(),
        "{at}: O(1) counter drifted"
    );
    match policy {
        CompactionPolicy::Never => {
            assert!(!state.live().is_sparse(), "{at}: Never must stay dense");
        }
        // The driver compacts at every boundary under Always, so the
        // candidate list must be *exactly* the alive set (fresh state:
        // dense 0..n over an all-alive graph, also exact).
        CompactionPolicy::Always => {
            assert_eq!(
                candidates, truth,
                "{at}: compacted contents differ from alive set"
            );
        }
        CompactionPolicy::Auto => {}
    }
}

/// Drives the Method 2 phase sequence by hand — trim, peel, Trim′ block,
/// WCC (both impls on alternate runs), seed scan — checking the invariants
/// after every phase and compaction point.
fn drive_pipeline(g: &CsrGraph, threads: usize, policy: CompactionPolicy, use_unionfind: bool) {
    with_pool(threads, || {
        let cfg = SccConfig {
            live_set_compaction: policy,
            ..SccConfig::with_threads(threads)
        };
        let state = AlgoState::new(g);
        check_invariants(&state, policy, "fresh");

        par_trim(&state);
        state.compact_live(policy);
        check_invariants(&state, policy, "after trim");

        par_fwbw(&state, &cfg, INITIAL_COLOR);
        state.compact_live(policy);
        check_invariants(&state, policy, "after peel");

        par_trim(&state);
        par_trim2(&state);
        par_trim(&state);
        state.compact_live(policy);
        check_invariants(&state, policy, "after trim' block");

        let out = if use_unionfind {
            par_wcc_unionfind(&state)
        } else {
            par_wcc(&state)
        };
        state.compact_live(policy);
        check_invariants(&state, policy, "after wcc");

        // WCC groups must cover the alive nodes exactly.
        let mut covered: Vec<u32> = out.groups.iter().flat_map(|(_, m)| m.clone()).collect();
        covered.sort_unstable();
        let truth: Vec<u32> = (0..g.num_nodes() as u32)
            .filter(|&v| state.alive(v))
            .collect();
        assert_eq!(covered, truth, "wcc groups diverge from alive set");

        // Seed scan (alive_groups) runs over the live set too.
        let seeded: usize = state.alive_groups().iter().map(|(_, m)| m.len()).sum();
        assert_eq!(seeded, truth.len(), "alive_groups loses nodes");
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// LiveSet contents ≡ {v | alive(v)} after every pipeline phase,
    /// across 1/2/4 threads and all compaction policies.
    #[test]
    fn live_set_matches_alive_after_every_phase(g in arb_graph(120), seed in 0u64..4) {
        for threads in [1usize, 2, 4] {
            for policy in POLICIES {
                drive_pipeline(&g, threads, policy, seed % 2 == 1);
            }
        }
    }

    /// End-to-end: all five parallel algorithms agree with Tarjan under
    /// compaction Auto, Always, and Never.
    #[test]
    fn parallel_algorithms_agree_with_tarjan_under_all_policies(
        g in arb_graph(100),
        threads_idx in 0usize..3,
    ) {
        let threads = [1usize, 2, 4][threads_idx];
        let want = tarjan_scc(&g).canonical_labels();
        for algo in [
            Algorithm::Baseline,
            Algorithm::Method1,
            Algorithm::Method2,
            Algorithm::Coloring,
            Algorithm::Multistep,
        ] {
            for policy in POLICIES {
                let cfg = SccConfig {
                    live_set_compaction: policy,
                    ..SccConfig::with_threads(threads)
                };
                let (r, _) = detect_scc(&g, algo, &cfg);
                prop_assert_eq!(
                    r.canonical_labels(),
                    want.clone(),
                    "{} disagrees with tarjan under {:?} ({} threads)",
                    algo.name(), policy, threads
                );
            }
        }
    }
}

/// The `Never` policy must be byte-for-byte the pre-LiveSet behavior and
/// all three policies must produce identical partitions on a small-world
/// shape large enough to exercise sparse-mode pivot probing.
#[test]
fn policies_agree_on_small_world_dataset() {
    use swscc::graph::datasets::Dataset;
    let g = Dataset::Livej.generate(0.02, 42);
    let mut labels = Vec::new();
    for policy in POLICIES {
        let cfg = SccConfig {
            live_set_compaction: policy,
            ..SccConfig::with_threads(2)
        };
        let (r, _) = detect_scc(&g, Algorithm::Method2, &cfg);
        labels.push(r.canonical_labels());
    }
    assert_eq!(labels[0], labels[1], "auto vs always");
    assert_eq!(labels[1], labels[2], "always vs never");
    assert_eq!(labels[0], tarjan_scc(&g).canonical_labels(), "vs tarjan");
}
