//! Offline drop-in subset of the `rand` API.
//!
//! Provides the slice of rand 0.10 that this workspace uses: a seedable
//! [`rngs::SmallRng`] (xoshiro256++), the [`Rng`] core trait, and the
//! [`RngExt`] extension methods `random`, `random_range`, `random_bool`.
//! Statistical quality matches the upstream generator family; the exact
//! output streams differ from upstream rand, which is fine because every
//! consumer in this workspace only relies on *determinism per seed*, never
//! on specific values.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from the full type domain (the `Standard`
/// distribution of upstream rand).
pub trait StandardUniform: Sized {
    fn sample_standard(rng: &mut dyn FnMut() -> u64) -> Self;
}

impl StandardUniform for f64 {
    fn sample_standard(rng: &mut dyn FnMut() -> u64) -> f64 {
        // 53 random mantissa bits in [0, 1)
        (rng() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard(rng: &mut dyn FnMut() -> u64) -> f32 {
        (rng() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for u64 {
    fn sample_standard(rng: &mut dyn FnMut() -> u64) -> u64 {
        rng()
    }
}

impl StandardUniform for u32 {
    fn sample_standard(rng: &mut dyn FnMut() -> u64) -> u32 {
        (rng() >> 32) as u32
    }
}

impl StandardUniform for bool {
    fn sample_standard(rng: &mut dyn FnMut() -> u64) -> bool {
        rng() & 1 == 1
    }
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng() % span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    // full-domain inclusive range of a 64-bit type
                    return start + rng() as $t;
                }
                start + (rng() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize, u16, u8);

/// Convenience sampling methods, blanket-implemented for every [`Rng`]
/// (rand 0.10's split of the method surface out of the core trait).
pub trait RngExt: Rng {
    /// A uniform sample over `T`'s full domain (`f64`/`f32`: `[0, 1)`).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(&mut || self.next_u64())
    }

    /// A uniform sample from `range`. Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(&mut || self.next_u64())
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Small fast RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream expands the seed into full generator state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(10..20usize);
            assert!((10..20).contains(&x));
            let y = rng.random_range(1..=3u32);
            assert!((1..=3).contains(&y));
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        // crude uniformity check
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn bool_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }
}
