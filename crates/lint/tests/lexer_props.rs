//! Property battery for the lint lexer. The rules' soundness rests on
//! one lexer invariant: the token stream **tiles** the input — every
//! byte belongs to exactly one token, in order, with correct line
//! numbers — no matter how adversarial the input (unterminated strings,
//! nested comments, raw-string hash walls, non-ASCII, or outright
//! garbage). A lexer that drops or double-counts a byte would silently
//! shift every downstream justification-paragraph and test-region
//! computation.

use proptest::collection::vec;
use proptest::prelude::*;
use swscc_lint::lexer::{lex, TokenKind};

/// Rust-ish source fragments, biased toward the constructs the lexer
/// special-cases. Concatenations of these cover raw strings abutting
/// hashes, lifetimes abutting quotes, comment openers inside strings,
/// and every other pairing the table can produce.
const FRAGMENTS: &[&str] = &[
    "fn f() {}",
    "let x = 1;",
    " ",
    "\n",
    "\t",
    "// line comment\n",
    "/// doc comment\n",
    "//! inner doc\n",
    "//// not doc\n",
    "/* block */",
    "/* nested /* deep */ out */",
    "/** doc block */",
    "/*! inner doc block */",
    "/* unterminated",
    "\"string\"",
    "\"with \\\" escape\"",
    "\"unterminated",
    "r\"raw\"",
    "r#\"raw # with \"# hash\"#",
    "r##\"deeper \"# still\"##",
    "b\"bytes\"",
    "b'\\''",
    "'c'",
    "'\\n'",
    "'lifetime",
    "'a: loop {}",
    "<'a>",
    "1..10",
    "1.5e-9",
    "0xFF_u32",
    "0b1010",
    "1_000_000",
    "2.",
    "ident",
    "r#raw_ident",
    "unsafe",
    "Ordering::Relaxed",
    "std::sync::atomic",
    "#[cfg(test)]",
    "::",
    "->",
    "=>",
    "#",
    "\\",
    "é",
    "日本語",
    "'é'",
    "\u{1F980}",
];

/// The single invariant everything else leans on.
fn assert_tiles(src: &str) {
    let tokens = lex(src);
    let mut at = 0usize;
    let mut line = 1u32;
    let mut rebuilt = String::new();
    for t in &tokens {
        assert_eq!(t.start, at, "gap or overlap at byte {at} in {src:?}");
        assert!(t.end > t.start, "empty token at byte {at} in {src:?}");
        assert_eq!(t.line, line, "wrong line for token at byte {at} in {src:?}");
        let text = t.text(src);
        line += text.matches('\n').count() as u32;
        rebuilt.push_str(text);
        at = t.end;
    }
    assert_eq!(at, src.len(), "tokens stop short of EOF in {src:?}");
    assert_eq!(rebuilt, src);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Random concatenations of tricky fragments tile exactly.
    #[test]
    fn fragment_soup_round_trips(idxs in vec(0usize..FRAGMENTS.len(), 0..40)) {
        let src: String = idxs.iter().map(|&i| FRAGMENTS[i]).collect();
        assert_tiles(&src);
    }

    /// So does outright garbage over a hostile byte palette (quote /
    /// slash / hash / backslash / newline heavy, plus multi-byte UTF-8).
    #[test]
    fn char_soup_round_trips(picks in vec(0usize..18, 0..120)) {
        const PALETTE: [char; 18] = [
            '"', '\'', '/', '*', 'r', '#', 'b', 'c', '\\', '\n',
            'a', '_', '0', '.', ':', '{', '}', 'é',
        ];
        let src: String = picks.iter().map(|&i| PALETTE[i]).collect();
        assert_tiles(&src);
    }

    /// Lexing is a pure function of the input.
    #[test]
    fn lexing_is_deterministic(idxs in vec(0usize..FRAGMENTS.len(), 0..20)) {
        let src: String = idxs.iter().map(|&i| FRAGMENTS[i]).collect();
        assert_eq!(lex(&src), lex(&src));
    }
}

/// Kind-level pins for the adversarial classifications the rules rely
/// on (doc vs. plain, string vs. code, lifetime vs. char).
#[test]
fn adversarial_classifications() {
    let kinds = |src: &str| -> Vec<TokenKind> {
        lex(src)
            .iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| t.kind)
            .collect()
    };

    // Raw strings swallow everything, including quote-hash walls.
    assert_eq!(kinds(r####"r##"a "# b"##"####), [TokenKind::Str]);
    // A nested block comment is one token, and `/**/`-style is plain.
    assert_eq!(
        kinds("/* a /* b */ c */"),
        [TokenKind::BlockComment { doc: false }]
    );
    assert_eq!(kinds("/**/"), [TokenKind::BlockComment { doc: false }]);
    assert_eq!(kinds("/** d */"), [TokenKind::BlockComment { doc: true }]);
    // Doc vs. plain line comments: `///` doc, `////` plain.
    assert_eq!(kinds("/// d\n"), [TokenKind::LineComment { doc: true }]);
    assert_eq!(kinds("//! d\n"), [TokenKind::LineComment { doc: true }]);
    assert_eq!(kinds("//// d\n"), [TokenKind::LineComment { doc: false }]);
    // Lifetime vs. char vs. escaped-quote byte char.
    assert_eq!(kinds("'a"), [TokenKind::Lifetime]);
    assert_eq!(kinds("'a'"), [TokenKind::Char]);
    assert_eq!(kinds("b'\\''"), [TokenKind::Char]);
    // Ranges don't fuse into a float; exponents do.
    assert_eq!(
        kinds("1..10"),
        [
            TokenKind::Number,
            TokenKind::Punct,
            TokenKind::Punct,
            TokenKind::Number
        ]
    );
    assert_eq!(kinds("1.5e-9"), [TokenKind::Number]);
    // A comment opener inside a string is string, not comment.
    assert_eq!(kinds("\"// SAFETY: nope\""), [TokenKind::Str]);
    // Unterminated constructs extend to EOF but still lex.
    assert_eq!(kinds("\"runs off"), [TokenKind::Str]);
    assert_eq!(
        kinds("/* runs off"),
        [TokenKind::BlockComment { doc: false }]
    );
}

/// The checked-in adversarial fixture lexes clean and tiles — the same
/// file the rule corpus asserts produces zero findings.
#[test]
fn ok_adversarial_fixture_tiles() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("ok_adversarial.rs");
    let src = std::fs::read_to_string(path).unwrap();
    assert_tiles(&src);
    assert!(lex(&src).iter().any(|t| t.kind == TokenKind::Str));
}
