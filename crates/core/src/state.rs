//! Shared mutable state of the parallel SCC algorithms: the `Color` and
//! `mark` overlays of §4.1.
//!
//! The paper never mutates the CSR graph. Instead:
//!
//! * `Color` — an O(N) integer array encoding the current partitioning.
//!   Nodes of different colors are considered disconnected even where a
//!   CSR edge exists. Fresh colors are allocated per partition.
//! * `mark` — an O(N) boolean array; a marked node's SCC is known and the
//!   node is treated as detached from the graph.
//!
//! This module adds the output channel the pseudocode leaves implicit: a
//! per-node component id, assigned exactly once when a node is resolved.
//! Resolution is an atomic claim (`mark` fetch-or), so concurrent kernels
//! can never double-assign a node.

use crate::result::SccResult;
use std::sync::Arc;
use swscc_graph::bfs::Direction;
use swscc_graph::{CsrGraph, GraphView, NodeId};
use swscc_parallel::{AtomicBitSet, CompactionPolicy, LiveSet};
use swscc_sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use swscc_sync::interrupt::{AbortReason, Interrupt};

/// Default watchdog headroom used by [`AlgoState::new`] (the legacy,
/// never-cancelled construction path).
const DEFAULT_WATCHDOG_FACTOR: usize = 4;

/// Partition color. 32 bits keep the hot Color array at 4 bytes/node
/// (§4.1's O(N) array is the most random-accessed structure in every
/// traversal, so halving it pays in cache hits); allocation is checked, so
/// exhausting ~4.29 billion partition ids panics instead of wrapping.
pub type Color = u32;

/// The color every node starts with (one whole-graph partition).
pub const INITIAL_COLOR: Color = 0;
/// The color of resolved (detached) nodes — the paper's `-1`.
pub const DONE_COLOR: Color = Color::MAX;
/// Colors at or above this value are reserved sentinels.
const COLOR_LIMIT: Color = Color::MAX - 8;

/// Shared state threaded through all parallel kernels, generic over the
/// graph backend (raw or compressed CSR; defaults to raw so existing
/// monomorphic call sites read unchanged).
pub struct AlgoState<'g, G: GraphView = CsrGraph> {
    /// The input graph (never mutated).
    pub g: &'g G,
    color: Vec<AtomicU32>,
    mark: AtomicBitSet,
    comp: Vec<AtomicU32>,
    next_color: AtomicU32,
    next_comp: AtomicU32,
    /// Candidate-alive iteration domain for the full-sweep kernels; a
    /// superset of `{v | alive(v)}` (marks are monotone, deletion is lazy).
    live: LiveSet,
    /// Nodes resolved so far — keeps [`AlgoState::count_alive`] O(1) for
    /// the compaction-policy checks at phase boundaries.
    resolved: AtomicUsize,
    /// The run's abort channel: cancellation, deadline, and watchdog trips
    /// all land here; every kernel loop polls it once per round/superstep.
    interrupt: Arc<Interrupt>,
    /// Watchdog headroom multiplier (see [`crate::SccConfig::watchdog_factor`]).
    watchdog_factor: usize,
}

impl<'g, G: GraphView> AlgoState<'g, G> {
    /// Fresh state: all nodes alive with [`INITIAL_COLOR`]. The embedded
    /// interrupt token has no deadline and no external handle, so this
    /// state never aborts — the legacy construction path.
    pub fn new(g: &'g G) -> Self {
        Self::with_interrupt(g, Interrupt::new(), DEFAULT_WATCHDOG_FACTOR)
    }

    /// Fresh state polling the given abort token (the checked-driver
    /// construction path).
    pub fn with_interrupt(g: &'g G, interrupt: Arc<Interrupt>, watchdog_factor: usize) -> Self {
        let n = g.num_nodes();
        let mut color = Vec::with_capacity(n);
        color.resize_with(n, || AtomicU32::new(INITIAL_COLOR));
        let mut comp = Vec::with_capacity(n);
        comp.resize_with(n, || AtomicU32::new(u32::MAX));
        AlgoState {
            g,
            color,
            mark: AtomicBitSet::new(n),
            comp,
            next_color: AtomicU32::new(1),
            next_comp: AtomicU32::new(0),
            live: LiveSet::new_dense(n),
            resolved: AtomicUsize::new(0),
            interrupt,
            watchdog_factor,
        }
    }

    /// The run's abort token.
    #[inline]
    pub fn interrupt(&self) -> &Interrupt {
        &self.interrupt
    }

    /// One poll of the abort token — the per-round check of every kernel
    /// loop.
    #[inline]
    pub fn should_stop(&self) -> bool {
        self.interrupt.is_aborted()
    }

    /// A watchdog for a fixpoint loop whose correct implementations take
    /// at most `theoretical_max` rounds. [`Watchdog::check`] combines the
    /// per-round interrupt poll with the bound check; on exceeding
    /// `watchdog_factor × theoretical_max` rounds it trips the shared
    /// token with [`AbortReason::NonConvergence`].
    pub fn watchdog(&self, loop_name: &'static str, theoretical_max: usize) -> Watchdog<'_> {
        Watchdog {
            interrupt: &self.interrupt,
            loop_name,
            bound: self.watchdog_factor.saturating_mul(theoretical_max),
            rounds: 0,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.g.num_nodes()
    }

    /// Current color of `n`.
    #[inline]
    pub fn color(&self, n: NodeId) -> Color {
        // ordering: colors carry no payload — a color is a self-contained
        // u32 partition label, and every phase that writes colors is
        // separated from the readers of the next phase by a scope join in
        // the driving kernel (rayon/EdgeMap barrier). Within a phase, a
        // stale read only mis-filters a candidate that the claiming CAS
        // re-checks. Verified by the claim-once model battery.
        self.color[n as usize].load(Ordering::Relaxed)
    }

    /// Unconditionally recolors `n`.
    #[inline]
    pub fn set_color(&self, n: NodeId, c: Color) {
        // ordering: see `color` — phase barriers publish, value is the
        // whole message.
        self.color[n as usize].store(c, Ordering::Relaxed);
    }

    /// Atomically recolors `n` from `from` to `to`; `true` iff this call
    /// won the claim. The visitation primitive of every BFS/DFS kernel.
    #[inline]
    pub fn cas_color(&self, n: NodeId, from: Color, to: Color) -> bool {
        // ordering: claim exclusivity is carried entirely by CAS
        // atomicity (exactly one caller sees `from`); the winner derives
        // everything it needs from its own arguments, not from data
        // published by other threads. Verified by the claim-once model
        // battery.
        self.color[n as usize]
            .compare_exchange(from, to, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }

    /// `true` iff `n` has not been resolved yet.
    #[inline]
    pub fn alive(&self, n: NodeId) -> bool {
        !self.mark.get(n as usize)
    }

    /// Allocates a fresh partition color.
    ///
    /// # Panics
    ///
    /// Panics if the 32-bit color space is exhausted (> 4.2 billion
    /// partitions — more than 10x the node limit of the `u32` node ids).
    #[inline]
    pub fn alloc_color(&self) -> Color {
        // ordering: unique-id allocator — uniqueness is RMW atomicity;
        // no ordering with any other location is implied or needed.
        let c = self.next_color.fetch_add(1, Ordering::Relaxed);
        assert!(c < COLOR_LIMIT, "partition color space exhausted");
        c
    }

    /// Allocates a fresh component id.
    #[inline]
    pub fn alloc_component(&self) -> u32 {
        // ordering: unique-id allocator, as `alloc_color`.
        self.next_comp.fetch_add(1, Ordering::Relaxed)
    }

    /// Resolves `n` as a size-1 SCC (the Trim outcome). Atomic claim:
    /// returns `false` (and does nothing) if `n` was already resolved.
    pub fn resolve_singleton(&self, n: NodeId) -> bool {
        if !self.mark.set(n as usize) {
            return false;
        }
        // ordering: the `mark` fetch_or above is the claim (atomicity);
        // `resolved` is a statistic read after kernel joins, and `comp`
        // is read only after the algorithm completes (publication by the
        // final scope join).
        self.resolved.fetch_add(1, Ordering::Relaxed);
        let c = self.alloc_component();
        self.comp[n as usize].store(c, Ordering::Relaxed);
        self.set_color(n, DONE_COLOR);
        true
    }

    /// Resolves `n` into component `comp` (an SCC found by FW∩BW).
    /// The caller must have claimed `n` (e.g. with a color CAS) so that no
    /// other thread resolves it concurrently.
    pub fn resolve_into(&self, n: NodeId, comp: u32) {
        let newly = self.mark.set(n as usize);
        debug_assert!(newly, "node {n} resolved twice");
        // ordering: caller holds the claim (color CAS); counters and comp
        // labels are published by the kernel's scope join, as in
        // `resolve_singleton`.
        self.resolved.fetch_add(1, Ordering::Relaxed);
        self.comp[n as usize].store(comp, Ordering::Relaxed);
        self.set_color(n, DONE_COLOR);
    }

    /// Effective in-degree of `n`: alive in-neighbors of the same color,
    /// self-loops excluded, counting stops at `cap` (the trim kernels only
    /// ever need "is it 0" or "is it exactly 1").
    pub fn effective_in_degree(&self, n: NodeId, cap: usize) -> usize {
        self.effective_degree(Direction::Backward, n, cap)
    }

    /// Effective out-degree of `n` (see [`AlgoState::effective_in_degree`]).
    pub fn effective_out_degree(&self, n: NodeId, cap: usize) -> usize {
        self.effective_degree(Direction::Forward, n, cap)
    }

    fn effective_degree(&self, dir: Direction, n: NodeId, cap: usize) -> usize {
        let cn = self.color(n);
        let mut count = 0;
        self.g.for_each_neighbor_while(dir, n, |k| {
            if k != n && self.color(k) == cn {
                count += 1;
            }
            count < cap
        });
        count
    }

    /// The unique alive same-color in-neighbor of `n`, if the effective
    /// in-degree is exactly 1.
    pub fn unique_in_neighbor(&self, n: NodeId) -> Option<NodeId> {
        self.unique_neighbor(Direction::Backward, n)
    }

    /// The unique alive same-color out-neighbor of `n`, if the effective
    /// out-degree is exactly 1.
    pub fn unique_out_neighbor(&self, n: NodeId) -> Option<NodeId> {
        self.unique_neighbor(Direction::Forward, n)
    }

    fn unique_neighbor(&self, dir: Direction, n: NodeId) -> Option<NodeId> {
        let cn = self.color(n);
        let mut found = None;
        let mut ambiguous = false;
        self.g.for_each_neighbor_while(dir, n, |k| {
            if k != n && self.color(k) == cn {
                if found.is_some() {
                    ambiguous = true;
                    return false;
                }
                found = Some(k);
            }
            true
        });
        if ambiguous {
            None
        } else {
            found
        }
    }

    /// Number of unresolved nodes (O(1) — maintained by the resolve
    /// primitives).
    pub fn count_alive(&self) -> usize {
        // ordering: called between phases (after the joins that publish
        // every resolve), never raced against in-flight resolves.
        self.num_nodes() - self.resolved.load(Ordering::Relaxed)
    }

    /// The live-residue iteration domain shared by the full-sweep kernels.
    pub fn live(&self) -> &LiveSet {
        &self.live
    }

    /// The alive nodes, ascending — O(candidates), i.e. O(residue) once the
    /// live set has been compacted.
    pub fn collect_alive(&self) -> Vec<NodeId> {
        self.live.par_collect(|v| self.alive(v))
    }

    /// Phase-boundary compaction point: shrinks the live set to exactly the
    /// alive nodes per `policy`. Returns whether a compaction ran.
    pub fn compact_live(&self, policy: CompactionPolicy) -> bool {
        self.live
            .maybe_compact(policy, self.count_alive(), |v| self.alive(v))
    }

    /// Number of resolved nodes.
    pub fn mark_count(&self) -> usize {
        self.mark.count_ones()
    }

    /// Groups the alive nodes by color: `(color, members)` with members
    /// ascending, colors in ascending order. This is the §4.2 "scan of
    /// non-marked nodes to construct the initial work items".
    pub fn alive_groups(&self) -> Vec<(Color, Vec<NodeId>)> {
        use rayon::prelude::*;
        let mut pairs: Vec<(Color, NodeId)> = self
            .live
            .par_filter_map(|n| self.alive(n).then(|| (self.color(n), n)));
        pairs.par_sort_unstable();
        let mut groups: Vec<(Color, Vec<NodeId>)> = Vec::new();
        for (c, n) in pairs {
            match groups.last_mut() {
                Some((gc, members)) if *gc == c => members.push(n),
                _ => groups.push((c, vec![n])),
            }
        }
        groups
    }

    /// Resolves every still-alive node with sequential Tarjan on the
    /// induced residual subgraph, assigning one fresh component per
    /// sub-SCC. Sound whenever the resolved/unresolved split respects SCC
    /// boundaries (every resolved component is a whole SCC of the input).
    /// Returns the residue size. Shared by the pipeline engine's Serial
    /// kernel and the drivers' degrade-to-sequential recovery.
    pub fn resolve_residue_sequential(&self) -> usize {
        let alive: Vec<NodeId> = self.collect_alive();
        let residue = alive.len();
        if !alive.is_empty() {
            let sub = self.g.induced_subgraph(&alive);
            let sub_scc = crate::tarjan::tarjan_scc(&sub);
            let mut comp_map = vec![u32::MAX; sub_scc.num_components()];
            for (i, &v) in alive.iter().enumerate() {
                let sc = sub_scc.component(i as u32) as usize;
                if comp_map[sc] == u32::MAX {
                    comp_map[sc] = self.alloc_component();
                }
                self.resolve_into(v, comp_map[sc]);
            }
        }
        residue
    }

    /// Finishes the run: every node must be resolved.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions) if any node is unresolved.
    pub fn into_result(self) -> SccResult {
        debug_assert_eq!(self.mark_count(), self.num_nodes(), "unresolved nodes");
        let raw: Vec<u32> = self.comp.into_iter().map(AtomicU32::into_inner).collect();
        debug_assert!(raw.iter().all(|&c| c != u32::MAX), "unassigned component");
        SccResult::from_assignment(raw)
    }
}

/// Per-loop round counter bounding a fixpoint iteration (see
/// [`AlgoState::watchdog`]). Call [`Watchdog::check`] once per round
/// *before* the round's work; a `Some` return means the loop must bail
/// out — either the shared token was already aborted, or this watchdog
/// just tripped it with [`AbortReason::NonConvergence`].
pub struct Watchdog<'a> {
    interrupt: &'a Interrupt,
    loop_name: &'static str,
    bound: usize,
    rounds: usize,
}

impl Watchdog<'_> {
    /// Polls the abort token and counts one round against the bound.
    pub fn check(&mut self) -> Option<AbortReason> {
        if let Some(reason) = self.interrupt.poll() {
            return Some(reason);
        }
        self.rounds += 1;
        if self.rounds > self.bound {
            self.interrupt
                .trip_non_convergence(self.loop_name, self.bound);
            // Re-read rather than assume: a concurrent abort may have won
            // the trip race, and first reason wins.
            return self.interrupt.reason();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CsrGraph {
        // 0 -> 1 -> 2 -> 0 cycle, 2 -> 3, self-loop on 3
        CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 3)])
    }

    #[test]
    fn fresh_state() {
        let g = tiny();
        let s = AlgoState::new(&g);
        assert_eq!(s.count_alive(), 4);
        assert!(s.alive(0));
        assert_eq!(s.color(0), INITIAL_COLOR);
    }

    #[test]
    fn singleton_resolution_claims_once() {
        let g = tiny();
        let s = AlgoState::new(&g);
        assert!(s.resolve_singleton(3));
        assert!(!s.resolve_singleton(3));
        assert!(!s.alive(3));
        assert_eq!(s.color(3), DONE_COLOR);
        assert_eq!(s.count_alive(), 3);
    }

    #[test]
    fn effective_degrees_skip_self_loops_and_done() {
        let g = tiny();
        let s = AlgoState::new(&g);
        // node 3: in-nbrs {2, 3}; self-loop excluded -> 1
        assert_eq!(s.effective_in_degree(3, 8), 1);
        // out-nbrs {3} -> 0
        assert_eq!(s.effective_out_degree(3, 8), 0);
        // resolve 2: 3's in-degree drops to 0
        s.resolve_singleton(2);
        assert_eq!(s.effective_in_degree(3, 8), 0);
    }

    #[test]
    fn color_partitioning_detaches() {
        let g = tiny();
        let s = AlgoState::new(&g);
        let c = s.alloc_color();
        s.set_color(0, c);
        // 1's in-nbrs: {0}; different color now -> effective 0
        assert_eq!(s.effective_in_degree(1, 8), 0);
    }

    #[test]
    fn unique_neighbor_queries() {
        let g = tiny();
        let s = AlgoState::new(&g);
        assert_eq!(s.unique_in_neighbor(1), Some(0));
        assert_eq!(s.unique_out_neighbor(1), Some(2));
        assert_eq!(s.unique_in_neighbor(0), Some(2));
        // node 2 has out-nbrs {0, 3}: not unique
        assert_eq!(s.unique_out_neighbor(2), None);
        // self-loop excluded: 3's unique in-neighbor is 2
        assert_eq!(s.unique_in_neighbor(3), Some(2));
    }

    #[test]
    fn cas_color_claims() {
        let g = tiny();
        let s = AlgoState::new(&g);
        let c = s.alloc_color();
        assert!(s.cas_color(0, INITIAL_COLOR, c));
        assert!(!s.cas_color(0, INITIAL_COLOR, c));
        assert_eq!(s.color(0), c);
    }

    #[test]
    fn alive_groups_by_color() {
        let g = tiny();
        let s = AlgoState::new(&g);
        let c = s.alloc_color();
        s.set_color(1, c);
        s.set_color(3, c);
        s.resolve_singleton(0);
        let groups = s.alive_groups();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], (INITIAL_COLOR, vec![2]));
        assert_eq!(groups[1], (c, vec![1, 3]));
    }

    #[test]
    fn into_result_roundtrip() {
        let g = tiny();
        let s = AlgoState::new(&g);
        let comp = s.alloc_component();
        for n in [0u32, 1, 2] {
            s.resolve_into(n, comp);
        }
        s.resolve_singleton(3);
        let r = s.into_result();
        assert_eq!(r.num_components(), 2);
        assert!(r.same_component(0, 2));
        assert!(!r.same_component(0, 3));
    }

    #[test]
    fn live_set_tracks_alive_after_compaction() {
        let g = tiny();
        let s = AlgoState::new(&g);
        assert!(!s.live().is_sparse());
        assert_eq!(s.live().candidates(), 4);
        s.resolve_singleton(1);
        s.resolve_singleton(3);
        // lazy deletion: candidates unchanged until a compaction point
        assert_eq!(s.live().candidates(), 4);
        assert_eq!(s.collect_alive(), vec![0, 2]);
        assert!(s.compact_live(CompactionPolicy::Auto), "2 of 4 alive");
        assert!(s.live().is_sparse());
        assert_eq!(s.live().candidate_vec(), vec![0, 2]);
        assert_eq!(s.collect_alive(), vec![0, 2]);
        // Never leaves the (now sparse) set alone
        s.resolve_singleton(0);
        assert!(!s.compact_live(CompactionPolicy::Never));
        assert_eq!(s.live().candidate_vec(), vec![0, 2]);
        assert_eq!(s.collect_alive(), vec![2]);
    }

    #[test]
    fn count_alive_is_counter_backed() {
        let g = tiny();
        let s = AlgoState::new(&g);
        assert_eq!(s.count_alive(), 4);
        s.resolve_singleton(0);
        let c = s.alloc_component();
        s.resolve_into(1, c);
        assert_eq!(s.count_alive(), 2);
        assert_eq!(s.count_alive(), s.num_nodes() - s.mark_count());
    }

    #[test]
    fn alive_groups_sparse_matches_dense() {
        let g = tiny();
        let s = AlgoState::new(&g);
        let c = s.alloc_color();
        s.set_color(1, c);
        s.resolve_singleton(0);
        let dense = s.alive_groups();
        s.compact_live(CompactionPolicy::Always);
        assert_eq!(s.alive_groups(), dense);
    }

    #[test]
    fn watchdog_trips_after_bound() {
        let g = tiny();
        let s = AlgoState::with_interrupt(&g, Interrupt::new(), 2);
        let mut wd = s.watchdog("test-loop", 3); // bound = 6
        for round in 0..6 {
            assert_eq!(wd.check(), None, "round {round} within bound");
        }
        assert_eq!(wd.check(), Some(AbortReason::NonConvergence));
        assert!(s.interrupt().detail().unwrap().contains("test-loop"));
        assert!(s.should_stop());
    }

    #[test]
    fn watchdog_reports_prior_abort() {
        let g = tiny();
        let s = AlgoState::with_interrupt(&g, Interrupt::new(), 4);
        s.interrupt().cancel();
        let mut wd = s.watchdog("test-loop", 100);
        assert_eq!(wd.check(), Some(AbortReason::Cancelled));
    }

    #[test]
    fn zero_factor_trips_first_round() {
        let g = tiny();
        let s = AlgoState::with_interrupt(&g, Interrupt::new(), 0);
        let mut wd = s.watchdog("test-loop", 1000);
        assert_eq!(wd.check(), Some(AbortReason::NonConvergence));
    }

    #[test]
    fn color_allocator_is_unique() {
        let g = tiny();
        let s = AlgoState::new(&g);
        let a = s.alloc_color();
        let b = s.alloc_color();
        assert_ne!(a, b);
        assert_ne!(a, INITIAL_COLOR);
        assert_ne!(a, DONE_COLOR);
    }
}
