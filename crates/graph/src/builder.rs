//! Incremental edge-list accumulation with optional cleanup.
//!
//! The generators and loaders produce raw edge streams that may contain
//! duplicates and self-loops. [`GraphBuilder`] collects them and finalizes
//! into a [`CsrGraph`], optionally deduplicating and dropping self-loops.
//! (Self-loops are *allowed* by the SCC algorithms — a self-loop does not
//! change any SCC — but the paper's datasets are simple digraphs, so the
//! default cleans them.)

use crate::csr::{CsrGraph, NodeId};

/// Accumulates directed edges and builds a [`CsrGraph`].
///
/// # Examples
///
/// ```
/// use swscc_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(0, 1); // duplicate
/// b.add_edge(1, 1); // self-loop
/// b.add_edge(1, 2);
/// let g = b.build(); // default: dedup, drop self-loops
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
    dedup: bool,
    keep_self_loops: bool,
}

impl GraphBuilder {
    /// New builder for a graph with `num_nodes` nodes. Defaults:
    /// deduplicate edges, drop self-loops.
    pub fn new(num_nodes: usize) -> Self {
        GraphBuilder {
            num_nodes,
            edges: Vec::new(),
            dedup: true,
            keep_self_loops: false,
        }
    }

    /// New builder with pre-reserved edge capacity.
    pub fn with_capacity(num_nodes: usize, edge_capacity: usize) -> Self {
        let mut b = Self::new(num_nodes);
        b.edges.reserve(edge_capacity);
        b
    }

    /// Keep duplicate parallel edges in the final graph.
    pub fn keep_duplicates(mut self) -> Self {
        self.dedup = false;
        self
    }

    /// Keep self-loops in the final graph.
    pub fn keep_self_loops(mut self) -> Self {
        self.keep_self_loops = true;
        self
    }

    /// Number of nodes this builder was created with.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of raw edges added so far (before cleanup).
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds the directed edge `u -> v`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    #[inline]
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        debug_assert!(
            (u as usize) < self.num_nodes && (v as usize) < self.num_nodes,
            "edge ({u}, {v}) out of range"
        );
        self.edges.push((u, v));
    }

    /// Adds both `u -> v` and `v -> u` (an undirected edge).
    #[inline]
    pub fn add_undirected_edge(&mut self, u: NodeId, v: NodeId) {
        self.add_edge(u, v);
        self.add_edge(v, u);
    }

    /// Extends from an iterator of directed edges.
    pub fn extend(&mut self, it: impl IntoIterator<Item = (NodeId, NodeId)>) {
        self.edges.extend(it);
    }

    /// Finalizes into a [`CsrGraph`], applying the configured cleanup.
    pub fn build(mut self) -> CsrGraph {
        if !self.keep_self_loops {
            self.edges.retain(|&(u, v)| u != v);
        }
        if self.dedup {
            self.edges.sort_unstable();
            self.edges.dedup();
        }
        CsrGraph::from_edges(self.num_nodes, &self.edges)
    }

    /// Consumes the builder and returns the (cleaned) edge list without
    /// building the CSR — used by tests and by generators that post-process.
    pub fn into_edges(mut self) -> Vec<(NodeId, NodeId)> {
        if !self.keep_self_loops {
            self.edges.retain(|&(u, v)| u != v);
        }
        if self.dedup {
            self.edges.sort_unstable();
            self.edges.dedup();
        }
        self.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loop_defaults() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        b.add_edge(2, 2);
        b.add_edge(3, 0);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(3, 0));
        assert!(!g.has_edge(2, 2));
    }

    #[test]
    fn keep_everything() {
        let mut b = GraphBuilder::new(3).keep_duplicates().keep_self_loops();
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        b.add_edge(1, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(1, 1));
    }

    #[test]
    fn undirected_adds_both_directions() {
        let mut b = GraphBuilder::new(2);
        b.add_undirected_edge(0, 1);
        let g = b.build();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
    }

    #[test]
    fn extend_from_iterator() {
        let mut b = GraphBuilder::new(5);
        b.extend((0..4u32).map(|i| (i, i + 1)));
        assert_eq!(b.raw_edge_count(), 4);
        let g = b.build();
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn into_edges_cleans() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(1, 1);
        b.add_edge(0, 2);
        b.add_edge(0, 2);
        assert_eq!(b.into_edges(), vec![(0, 2)]);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(7).build();
        assert_eq!(g.num_nodes(), 7);
        assert_eq!(g.num_edges(), 0);
    }
}
