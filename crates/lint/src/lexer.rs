//! A dependency-free Rust lexer, built for static analysis rather than
//! compilation: every byte of the input is covered by exactly one token
//! (trivia included), so findings can be reported at exact line numbers
//! and the token stream re-concatenates to the original source.
//!
//! The lexer understands the constructs the old line-based audit could
//! not: raw strings (`r#"…"#` with any hash depth, byte and C variants),
//! nested block comments, lifetimes vs. char literals (`'a` vs `'a'` vs
//! `b'\''`), and doc comments — which are classified as *doc* trivia so
//! rules can refuse to accept a justification that only appears in
//! rendered documentation.

/// What a lexed region of the source is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs, newlines.
    Whitespace,
    /// `// …` (to end of line). `doc` is true for `///` and `//!`
    /// (but not `////`, which rustdoc treats as plain).
    LineComment { doc: bool },
    /// `/* … */`, nesting tracked. `doc` is true for `/**` and `/*!`
    /// (but not `/***` or the empty `/**/`).
    BlockComment { doc: bool },
    /// Identifier or keyword (including raw `r#ident`).
    Ident,
    /// `'lifetime` (no closing quote).
    Lifetime,
    /// Char or byte-char literal: `'x'`, `'\''`, `b'\xff'`.
    Char,
    /// Any string-like literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"` and
    /// their raw variants.
    Str,
    /// Numeric literal (integer or float, any base, with suffix).
    Number,
    /// A single punctuation byte (`::` is two `Punct(':')` tokens).
    Punct,
}

impl TokenKind {
    /// Trivia tokens carry no program semantics: whitespace + comments.
    pub fn is_trivia(self) -> bool {
        matches!(
            self,
            TokenKind::Whitespace | TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    }

    /// A comment that is *not* documentation — the only kind that can
    /// carry a justification (`// ordering:`, `// SAFETY:`, …).
    pub fn is_plain_comment(self) -> bool {
        matches!(
            self,
            TokenKind::LineComment { doc: false } | TokenKind::BlockComment { doc: false }
        )
    }
}

/// One lexed region: kind + byte span + 1-based line of its first byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Lexes `src` into a contiguous, non-overlapping token stream covering
/// every byte. Never fails: unterminated literals/comments extend to end
/// of input, and bytes that fit no rule become single `Punct` tokens —
/// for a linter, graceful degradation beats rejection.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must make progress");
            self.out.push(Token {
                kind,
                start,
                end: self.pos,
                line,
            });
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte (or one UTF-8 char for non-ASCII), tracking lines.
    fn bump(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
        // Skip UTF-8 continuation bytes so we never split a char.
        while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
            self.pos += 1;
        }
    }

    fn next_kind(&mut self) -> TokenKind {
        let b = self.bytes[self.pos];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                while matches!(self.peek(0), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                    self.bump();
                }
                TokenKind::Whitespace
            }
            b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
            b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
            b'r' if self.raw_string_ahead(1) => self.raw_string(1),
            b'b' if self.peek(1) == Some(b'\'') => self.char_lit(2),
            b'b' if self.peek(1) == Some(b'"') => self.string_lit(2),
            b'b' if self.peek(1) == Some(b'r') && self.raw_string_ahead(2) => self.raw_string(2),
            b'c' if self.peek(1) == Some(b'"') => self.string_lit(2),
            b'c' if self.peek(1) == Some(b'r') && self.raw_string_ahead(2) => self.raw_string(2),
            b'"' => self.string_lit(1),
            b'\'' => self.quote(),
            b'0'..=b'9' => self.number(),
            _ if is_ident_start(b) || b >= 0x80 => {
                while self
                    .peek(0)
                    .is_some_and(|c| is_ident_continue(c) || c >= 0x80)
                {
                    self.bump();
                }
                TokenKind::Ident
            }
            _ => {
                self.bump();
                TokenKind::Punct
            }
        }
    }

    fn line_comment(&mut self) -> TokenKind {
        // `///` is doc unless `////…`; `//!` is inner doc.
        let doc = match (self.peek(2), self.peek(3)) {
            (Some(b'/'), Some(b'/')) => false,
            (Some(b'/'), _) | (Some(b'!'), _) => true,
            _ => false,
        };
        while self.peek(0).is_some_and(|c| c != b'\n') {
            self.bump();
        }
        TokenKind::LineComment { doc }
    }

    fn block_comment(&mut self) -> TokenKind {
        // `/**` is doc unless `/***` or the degenerate `/**/`.
        let doc = match self.peek(2) {
            Some(b'*') => self.peek(3) != Some(b'*') && self.peek(3) != Some(b'/'),
            Some(b'!') => true,
            _ => false,
        };
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 && self.pos < self.bytes.len() {
            if self.peek(0) == Some(b'/') && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == Some(b'*') && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        TokenKind::BlockComment { doc }
    }

    /// Is `r#…"` / `r"` at `self.pos + offset_to_r`? (`offset_to_r` points
    /// at the `r` itself; hashes then a quote must follow.)
    fn raw_string_ahead(&self, after_r: usize) -> bool {
        let mut i = after_r + 1;
        while self.peek(i) == Some(b'#') {
            i += 1;
        }
        self.peek(i) == Some(b'"')
            // `r#ident` (raw identifier), not a raw string: exactly one
            // hash then an ident char means we must look for the quote
            // right after the hashes only — handled above — but also
            // guard that `r` isn't part of a larger identifier.
            && (self.pos == 0 || !is_ident_continue(self.bytes[self.pos - 1]))
    }

    fn raw_string(&mut self, after_prefix: usize) -> TokenKind {
        for _ in 0..after_prefix {
            self.bump(); // 'r' / 'b','r' / 'c','r'
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening '"'
        loop {
            match self.peek(0) {
                None => break,
                Some(b'"') => {
                    self.bump();
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some(b'#') {
                        seen += 1;
                        self.bump();
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => self.bump(),
            }
        }
        TokenKind::Str
    }

    fn string_lit(&mut self, prefix: usize) -> TokenKind {
        for _ in 0..prefix {
            self.bump();
        }
        loop {
            match self.peek(0) {
                None => break,
                Some(b'\\') => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump();
                    }
                }
                Some(b'"') => {
                    self.bump();
                    break;
                }
                Some(_) => self.bump(),
            }
        }
        TokenKind::Str
    }

    /// A `'`: char literal or lifetime. `'x'` / `'\n'` → char;
    /// `'ident` with no closing quote → lifetime.
    fn quote(&mut self) -> TokenKind {
        // Escape right after the quote is always a char literal.
        if self.peek(1) == Some(b'\\') {
            return self.char_lit(1);
        }
        // `'c'` (one char, possibly multi-byte, then a quote).
        let mut i = 2;
        if let Some(b) = self.peek(1) {
            if b >= 0x80 {
                // skip continuation bytes of a multi-byte char
                while self.peek(i).is_some_and(|c| c & 0xC0 == 0x80) {
                    i += 1;
                }
            }
            if self.peek(i) == Some(b'\'') && b != b'\'' {
                return self.char_lit(1);
            }
        }
        // Lifetime: `'` then ident chars (or `'_`, or a bare `'`).
        self.bump(); // '
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        TokenKind::Lifetime
    }

    /// Char/byte-char literal with `open_at` bytes of prefix before the
    /// opening quote's content (1 for `'`, 2 for `b'`).
    fn char_lit(&mut self, open_at: usize) -> TokenKind {
        for _ in 0..open_at {
            self.bump();
        }
        loop {
            match self.peek(0) {
                None => break,
                Some(b'\\') => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump();
                    }
                }
                Some(b'\'') => {
                    self.bump();
                    break;
                }
                Some(b'\n') => break, // unterminated; don't eat the file
                Some(_) => self.bump(),
            }
        }
        TokenKind::Char
    }

    fn number(&mut self) -> TokenKind {
        // Integer part (any base: the `0x`/`0b`/`0o` prefix and suffixes
        // like `u32`/`f64` are all alphanumeric-or-underscore).
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        // Fractional part: `.` followed by a digit (`1..2` stays two
        // tokens; `1.f()` is a method call on an integer — digit check
        // excludes both).
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump(); // '.'
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
        }
        // Exponent sign: `1e-9` lexes `1e` then needs `-9` folded in.
        if matches!(self.peek(0), Some(b'+' | b'-'))
            && self
                .bytes
                .get(self.pos - 1)
                .is_some_and(|&c| c == b'e' || c == b'E')
            && self.peek(1).is_some_and(|c| c.is_ascii_digit())
        {
            self.bump();
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
        }
        TokenKind::Number
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    /// Coverage invariant: tokens tile the input exactly.
    fn assert_tiles(src: &str) {
        let toks = lex(src);
        let mut pos = 0;
        for t in &toks {
            assert_eq!(t.start, pos, "gap/overlap at byte {pos} in {src:?}");
            assert!(t.end > t.start, "empty token in {src:?}");
            pos = t.end;
        }
        assert_eq!(pos, src.len(), "uncovered tail in {src:?}");
    }

    #[test]
    fn lifetimes_vs_chars() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; let b = b'\\''; }";
        assert_tiles(src);
        let ks = kinds(src);
        assert!(ks.contains(&(TokenKind::Lifetime, "'a".into())));
        assert!(ks.contains(&(TokenKind::Char, "'x'".into())));
        assert!(ks.contains(&(TokenKind::Char, "'\\''".into())));
        assert!(ks.contains(&(TokenKind::Char, "b'\\''".into())));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src =
            r####"let s = r#"quote " and hash # inside"#; let t = r##"deeper "# still"##;"####;
        assert_tiles(src);
        let strs: Vec<_> = kinds(src)
            .into_iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[0].1.contains("hash # inside"));
        assert!(strs[1].1.contains("\"# still"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        assert_tiles(src);
        let ks = kinds(src);
        assert_eq!(ks.len(), 3);
        assert_eq!(ks[0].1, "a");
        assert!(matches!(ks[1].0, TokenKind::BlockComment { doc: false }));
        assert_eq!(ks[2].1, "b");
    }

    #[test]
    fn doc_comment_classification() {
        for (src, doc) in [
            ("/// doc", true),
            ("//! inner doc", true),
            ("//// not doc", false),
            ("// plain", false),
            ("/** doc */", true),
            ("/*! inner */", true),
            ("/*** not doc */", false),
            ("/**/", false),
        ] {
            let toks = lex(src);
            match toks[0].kind {
                TokenKind::LineComment { doc: d } | TokenKind::BlockComment { doc: d } => {
                    assert_eq!(d, doc, "classification of {src:?}")
                }
                other => panic!("{src:?} lexed as {other:?}"),
            }
        }
    }

    #[test]
    fn string_contents_are_not_code() {
        let src = r#"let s = "std::sync::atomic // SAFETY: nope"; x();"#;
        assert_tiles(src);
        let idents: Vec<_> = kinds(src)
            .into_iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(idents, ["let", "s", "x"]);
    }

    #[test]
    fn line_numbers_track_all_literal_kinds() {
        let src = "a\n\"two\nlines\"\nb /* c\nd */ e\nr#\"raw\nraw\"#\nf";
        assert_tiles(src);
        let at = |name: &str| {
            lex(src)
                .into_iter()
                .find(|t| t.text(src) == name)
                .unwrap()
                .line
        };
        assert_eq!(at("a"), 1);
        assert_eq!(at("b"), 4);
        assert_eq!(at("e"), 5);
        assert_eq!(at("f"), 8);
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let src = "let r#type = 1; let r = 2;";
        assert_tiles(src);
        // `r#type` lexes as Punct('#') sandwich or ident — what matters
        // is it isn't swallowed as an unterminated raw string.
        assert!(lex(src).iter().all(|t| t.kind != TokenKind::Str));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        for src in ["for i in 1..10 {}", "1.0e-9_f64", "0xFF_u8", "x.0.1"] {
            assert_tiles(src);
        }
        let toks = kinds("1..10");
        assert_eq!(toks[0], (TokenKind::Number, "1".into()));
        assert_eq!(toks[3], (TokenKind::Number, "10".into()));
    }
}
