//! Model-checker protocol for the epoch-swap publication cell (build
//! with `RUSTFLAGS="--cfg model" cargo test -p swscc-sync --test
//! epoch_model`; the whole file compiles away otherwise).
//!
//! The serve daemon's availability story rests on two claims about
//! [`EpochCell`], and this battery checks both over ≥1000 explored
//! schedules each instead of trusting the implementation comments:
//!
//! 1. **Readers never observe a torn snapshot.** Every `(epoch, value)`
//!    pair any reader loads is a pair some publisher actually
//!    constructed (or the initial pair), and the epochs one reader
//!    observes never go backwards — there is no interleaving in which a
//!    half-swapped cell leaks.
//! 2. **Swaps are lost-update-free.** Concurrent publishers each get a
//!    distinct, consecutive epoch, and after all of them finish the cell
//!    holds the highest one — no publish is silently overwritten by a
//!    stale competitor.
//!
//! The model `Mutex` inside the cell turns every lock acquisition into a
//! scheduling point, so the checker genuinely interleaves the reader
//! clones with the writer swaps rather than running them back to back.
#![cfg(model)]

use swscc_sync::epoch::EpochCell;
use swscc_sync::model::{explore, Options, Strategy};
use swscc_sync::Mutex;

fn opts(iterations: u64, base_seed: u64) -> Options {
    Options {
        iterations,
        base_seed,
        max_steps: 50_000,
        strategy: Strategy::Random,
    }
}

/// Claim 1: with two publishers and two readers fully interleaved, every
/// observed `(epoch, value)` pair was constructed by somebody, and each
/// reader's epoch sequence is monotone.
#[test]
fn readers_never_observe_torn_snapshot() {
    let report = explore(opts(1200, 0x5E53_0001), || {
        // value convention: publisher t writes 100*t + attempt, initial
        // value is 7 at epoch 0.
        let cell = EpochCell::new(7u64);
        let published: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::new());
        let observed: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::new());
        swscc_sync::thread::scope(|s| {
            for t in 1..=2u64 {
                let (cell, published) = (&cell, &published);
                s.spawn(move || {
                    let value = 100 * t;
                    let epoch = cell.publish(value);
                    published.lock().push((epoch, value));
                });
            }
            for _ in 0..2 {
                let (cell, observed) = (&cell, &observed);
                s.spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..2 {
                        let snap = cell.load();
                        assert!(
                            snap.epoch() >= last,
                            "reader epoch went backwards: {} < {last}",
                            snap.epoch()
                        );
                        last = snap.epoch();
                        observed.lock().push((snap.epoch(), *snap.value()));
                    }
                });
            }
        });
        let published: Vec<(u64, u64)> = published.lock().clone();
        for &(epoch, value) in observed.lock().iter() {
            let legitimate = (epoch == 0 && value == 7)
                || published.iter().any(|&(e, v)| e == epoch && v == value);
            assert!(
                legitimate,
                "torn snapshot observed: epoch {epoch} paired with value {value}, \
                 published set {published:?}"
            );
        }
    });
    assert!(
        report.failure.is_none(),
        "epoch cell leaked a torn snapshot: {:?}",
        report.failure
    );
    assert!(
        report.distinct_schedules > 50,
        "exploration barely diversified ({} schedules)",
        report.distinct_schedules
    );
}

/// Claim 2: three racing publishers end with epochs {1, 2, 3}, all
/// distinct, and the cell settles on epoch 3 — no lost update under any
/// schedule.
#[test]
fn swap_is_lost_update_free() {
    let report = explore(opts(1000, 0x5E53_0002), || {
        let cell = EpochCell::new(0u32);
        let epochs: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        swscc_sync::thread::scope(|s| {
            for t in 0..3u32 {
                let (cell, epochs) = (&cell, &epochs);
                s.spawn(move || {
                    let e = cell.publish(t + 1);
                    epochs.lock().push(e);
                });
            }
        });
        let mut epochs = epochs.lock().clone();
        epochs.sort_unstable();
        assert_eq!(
            epochs,
            vec![1, 2, 3],
            "publishers must receive distinct consecutive epochs"
        );
        assert_eq!(cell.epoch(), 3, "cell must settle on the last epoch");
        // The surviving value must be the one published at epoch 3.
        let snap = cell.load();
        assert_eq!(snap.epoch(), 3);
        assert!((1..=3).contains(snap.value()));
    });
    assert!(
        report.failure.is_none(),
        "epoch swap lost an update: {:?}",
        report.failure
    );
}
