//! Offline drop-in subset of the `proptest` API.
//!
//! Implements the slice this workspace uses: integer-range and tuple
//! strategies, `collection::vec`, `any::<bool>()`, `prop_map` /
//! `prop_flat_map`, the `proptest!` macro (including the
//! `#![proptest_config(..)]` header), `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, deliberate for an offline shim:
//!
//! * **No shrinking.** A failing case reports its seed and arguments via
//!   the panic message; re-running is deterministic (case seeds derive from
//!   the test name), so failures reproduce exactly, just unminimized.
//! * Default case count is 64 (upstream: 256), overridable per block with
//!   `ProptestConfig::with_cases` or globally via `PROPTEST_CASES`.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

pub mod test_runner {
    use super::*;

    /// Per-block test configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic per-case RNG handed to strategies.
    pub struct TestRng(pub(crate) SmallRng);

    impl TestRng {
        /// Case seeds mix the test name so distinct tests in one block see
        /// distinct streams, deterministically across runs.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
            TestRng(SmallRng::seed_from_u64(
                h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use super::*;

    /// A generator of values of one type. (No shrink tree — see crate docs.)
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            MapStrategy { base: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMapStrategy<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMapStrategy { base: self, f }
        }

        fn prop_filter<F>(self, reason: &'static str, f: F) -> FilterStrategy<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            FilterStrategy {
                base: self,
                f,
                reason,
            }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct MapStrategy<B, F> {
        base: B,
        f: F,
    }

    impl<B, F, O> Strategy for MapStrategy<B, F>
    where
        B: Strategy,
        F: Fn(B::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    pub struct FlatMapStrategy<B, F> {
        base: B,
        f: F,
    }

    impl<B, F, S> Strategy for FlatMapStrategy<B, F>
    where
        B: Strategy,
        S: Strategy,
        F: Fn(B::Value) -> S,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let inner = (self.f)(self.base.generate(rng));
            inner.generate(rng)
        }
    }

    pub struct FilterStrategy<B, F> {
        base: B,
        f: F,
        reason: &'static str,
    }

    impl<B, F> Strategy for FilterStrategy<B, F>
    where
        B: Strategy,
        F: Fn(&B::Value) -> bool,
    {
        type Value = B::Value;
        fn generate(&self, rng: &mut TestRng) -> B::Value {
            for _ in 0..1000 {
                let v = self.base.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates: {}", self.reason);
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.random_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident . $i:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// `any::<T>()` support.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.0.random::<bool>()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.0.random::<u64>() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize);

    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    impl<T> AnyStrategy<T> {
        pub(crate) fn new() -> Self {
            AnyStrategy(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Uniform sampling over `T`'s arbitrary domain.
pub fn any<T: strategy::Arbitrary>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy::new()
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::RngExt;

    /// Length specification for [`vec()`]: an exact size or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.random_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Defines property tests. Supported grammar (the subset upstream's macro
/// accepts that this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]  // optional
///     #[test]
///     fn name(arg in strategy, (a, b) in strategy2) { body }
///     ...
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair(max: usize) -> impl Strategy<Value = (usize, usize)> {
        (1..max).prop_flat_map(|n| (0..n, 0..n).prop_map(move |(a, b)| (a.min(b), n)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3..10u32, y in 0..5usize) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_and_any(v in crate::collection::vec((0usize..200, crate::any::<bool>()), 0..300)) {
            prop_assert!(v.len() < 300);
            for (i, _b) in v {
                prop_assert!(i < 200);
            }
        }

        #[test]
        fn flat_map_pattern_args((lo, n) in arb_pair(40)) {
            prop_assert!(lo < n && n < 40);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0usize..1000, 5..10);
        let mut r1 = crate::test_runner::TestRng::for_case("x", 3);
        let mut r2 = crate::test_runner::TestRng::for_case("x", 3);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
