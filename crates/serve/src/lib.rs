//! # swscc-serve — the always-on SCC service
//!
//! Batch SCC detection answers "partition this graph once"; this crate
//! answers "keep answering SCC queries about this graph forever". It
//! wraps the `swscc-core` pipeline engine in a daemon with three
//! load-bearing properties:
//!
//! * **Epoch snapshots.** Queries are served from an immutable
//!   [`swscc_core::SccSnapshot`] published through an
//!   `swscc_sync::epoch::EpochCell`. A `recompute` builds its
//!   replacement on the side and swaps atomically — readers never
//!   block, never see a torn snapshot, and a *failed* recompute leaves
//!   the previous epoch serving (stale-but-available, flagged in
//!   stats).
//! * **Admission control.** A bounded gate ([`admission::AdmissionGate`])
//!   sheds excess queries with a typed `Overloaded { retry_after }`
//!   instead of queueing without bound; every request runs under a
//!   deadline-carrying `RunGuard`, so budget exhaustion is a typed
//!   `DeadlineExceeded`, not a stuck handler.
//! * **Graceful degradation.** Malformed frames, oversized lengths,
//!   handler panics (including injected `serve-frame`/`serve-swap`
//!   faults), and slow clients each cost at most one connection —
//!   the accept loop and every other connection keep serving.
//!
//! The wire format lives in [`protocol`] (length-prefixed binary
//! frames, exit-free decode); [`client::Client`] is the blocking
//! caller; [`loadgen`] is the deterministic open-loop generator behind
//! `swscc-loadgen` and the CI serve lane.

pub mod admission;
pub mod client;
pub mod loadgen;
pub mod net;
pub mod protocol;
pub mod server;
pub mod stats;

pub use client::Client;
pub use loadgen::{LoadReport, LoadgenOptions, Mix};
pub use net::{Endpoint, Listener};
pub use protocol::{FrameError, MutOp, MutateReply, Request, Response, StatsReply};
pub use server::{ServeConfig, ServedGraph, Server};
