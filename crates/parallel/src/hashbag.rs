//! Hash-bag frontier: an unordered multiset of packed `(vertex, label)`
//! pairs, published in per-worker blocks and consumed by a claim cursor.
//!
//! Multi-search BFS levels (Wang et al., arXiv 2303.04934) produce far
//! more frontier entries than a plain vertex frontier — one per (vertex,
//! pivot) pair — so the frontier is kept as a bag of fixed-size blocks:
//! each worker fills a thread-local block and **publishes** it when full;
//! consumers **claim** whole blocks for expansion. Order is irrelevant
//! (BFS over reach *sets*), which is what makes the bag sufficient.
//!
//! The publish/claim handshake (model-checked in the swscc-parallel
//! model battery):
//!
//! * `publish` appends an immutable block under the write lock and then
//!   bumps the item counter.
//! * `claim` reserves index `i` by a compare-exchange on the cursor
//!   *only after* observing `i < len` under the read lock, so a claim
//!   never burns an index that has no published block yet — crucial when
//!   producers and consumers overlap.
//! * Exactly-once delivery: the cursor CAS admits one winner per index,
//!   and blocks are immutable after publication.

use std::sync::Arc;
use swscc_sync::atomic::{AtomicUsize, Ordering};
use swscc_sync::RwLock;

/// Suggested per-worker block size: big enough to amortize the publish
/// lock, small enough that tail blocks don't starve load balancing.
pub const BLOCK_SIZE: usize = 512;

/// An unordered bag of immutable `u64` blocks with exactly-once claiming.
pub struct HashBag {
    blocks: RwLock<Vec<Arc<[u64]>>>,
    /// Next block index to hand out.
    cursor: AtomicUsize,
    /// Total items across published blocks.
    items: AtomicUsize,
}

impl Default for HashBag {
    fn default() -> Self {
        Self::new()
    }
}

impl HashBag {
    pub fn new() -> Self {
        HashBag {
            blocks: RwLock::new(Vec::new()),
            cursor: AtomicUsize::new(0),
            items: AtomicUsize::new(0),
        }
    }

    /// Publishes the contents of `block` as one immutable block and
    /// clears it for reuse. Empty blocks are ignored.
    pub fn publish(&self, block: &mut Vec<u64>) {
        if block.is_empty() {
            return;
        }
        // ordering: statistic — callers that need an exact total read it
        // after joining every publisher.
        self.items.fetch_add(block.len(), Ordering::Relaxed);
        let published: Arc<[u64]> = Arc::from(block.as_slice());
        block.clear();
        self.blocks.write().push(published);
    }

    /// Claims the next unclaimed block, or `None` when every *currently
    /// published* block is claimed. With concurrent publishers a `None`
    /// is only transient; the level-synchronous driver claims from a bag
    /// whose producers have been joined, where `None` is final.
    pub fn claim(&self) -> Option<Arc<[u64]>> {
        loop {
            let blocks = self.blocks.read();
            // ordering: the reservation below is only attempted for
            // indices proven published under this read guard, so the CAS
            // never consumes an index ahead of publication; RMW
            // atomicity makes each index claimable exactly once.
            let idx = self.cursor.load(Ordering::Relaxed);
            if idx >= blocks.len() {
                return None;
            }
            if self
                .cursor
                .compare_exchange(idx, idx + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return Some(Arc::clone(&blocks[idx]));
            }
            // Lost the race for `idx`; retry against the new cursor.
        }
    }

    /// Total items across published blocks. Exact once all publishers
    /// are joined.
    pub fn len(&self) -> usize {
        // ordering: statistic (see publish).
        self.items.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of published blocks so far.
    pub fn blocks_published(&self) -> usize {
        self.blocks.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_claim_round_trip() {
        let bag = HashBag::new();
        assert!(bag.is_empty());
        assert!(bag.claim().is_none());

        let mut block = vec![1, 2, 3];
        bag.publish(&mut block);
        assert!(block.is_empty(), "publish must clear the worker block");
        block.extend([4, 5]);
        bag.publish(&mut block);
        bag.publish(&mut block); // empty: ignored

        assert_eq!(bag.len(), 5);
        assert_eq!(bag.blocks_published(), 2);
        let a = bag.claim().expect("first block");
        let b = bag.claim().expect("second block");
        assert!(bag.claim().is_none());
        let mut all: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn concurrent_claimants_get_disjoint_blocks() {
        let bag = HashBag::new();
        for i in 0..64u64 {
            bag.publish(&mut vec![i]);
        }
        let claimed: Vec<Vec<u64>> = swscc_sync::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        let mut mine = Vec::new();
                        while let Some(block) = bag.claim() {
                            mine.extend(block.iter().copied());
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<u64> = claimed.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..64).collect::<Vec<_>>(), "every block exactly once");
    }
}
