//@ path: crates/core/src/bad_graphview.rs
//! Known-bad: raw adjacency access outside swscc-graph.

pub fn raw_out(g: &CsrGraph, v: u32) -> usize {
    g.out_neighbors(v).len() //~ graphview
}

pub fn raw_in(g: &CsrGraph, v: u32) -> usize {
    g.in_neighbors(v).len() //~ graphview
}

pub fn escapes_the_view<G: GraphView>(g: &G) -> bool {
    g.as_csr().is_some() //~ graphview
}

pub fn justified<G: GraphView>(g: &G) -> bool {
    // graphview: oracle comparison needs the raw slice when available.
    g.as_csr().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_touch_raw_slices() {
        let g = CsrGraph::from_edges(1, &[]);
        assert_eq!(g.out_neighbors(0).len(), 0);
    }
}
