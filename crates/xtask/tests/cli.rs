//! End-to-end tests for the `xtask lint` CLI: the exit-code contract
//! (0 clean, 1 findings, 2 usage), the JSON reporter, the `--rule`
//! filter, and the `audit` alias. These run the real binary over the
//! real workspace, so they double as the "tree lints clean" gate.

use std::process::{Command, Output};

fn xtask(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(args)
        .output()
        .expect("spawn xtask")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

#[test]
fn lint_runs_clean_on_the_workspace() {
    let out = xtask(&["lint"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        code(&out),
        0,
        "lint found problems:\nstdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("lint: OK"), "{stdout}");
}

#[test]
fn audit_is_an_alias_for_lint() {
    let out = xtask(&["audit"]);
    assert_eq!(code(&out), 0, "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("lint: OK"));
}

#[test]
fn json_output_is_well_formed() {
    let out = xtask(&["lint", "--json"]);
    assert_eq!(code(&out), 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Keep the parser honest without a JSON dependency: the reporter
    // emits exactly these top-level keys on one object.
    assert!(stdout.trim_start().starts_with('{'), "{stdout}");
    assert!(stdout.trim_end().ends_with('}'), "{stdout}");
    for key in ["\"files_scanned\"", "\"findings\"", "\"suppressed\""] {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }
}

#[test]
fn rule_filter_accepts_every_cataloged_rule() {
    let list = xtask(&["lint", "--list-rules"]);
    assert_eq!(code(&list), 0);
    let names: Vec<String> = String::from_utf8_lossy(&list.stdout)
        .lines()
        .filter_map(|l| l.split_whitespace().next().map(str::to_string))
        .collect();
    assert!(names.len() >= 11, "rule catalog shrank: {names:?}");
    for name in &names {
        let out = xtask(&["lint", "--rule", name]);
        assert_eq!(
            code(&out),
            0,
            "--rule {name} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn unknown_rule_is_a_usage_error() {
    let out = xtask(&["lint", "--rule", "no-such-rule"]);
    assert_eq!(code(&out), 2);
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown rule"));
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = xtask(&["lint", "--frobnicate"]);
    assert_eq!(code(&out), 2);
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown lint flag"));
}

#[test]
fn unknown_subcommand_is_a_usage_error() {
    let out = xtask(&["deploy"]);
    assert_eq!(code(&out), 2);
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown xtask subcommand"));
}

#[test]
fn missing_rule_argument_is_a_usage_error() {
    let out = xtask(&["lint", "--rule"]);
    assert_eq!(code(&out), 2);
}
