//! Pure FW-BW (Fleischer, Hendrickson, Pınar 2000) — no Trim step.
//!
//! The original parallel SCC algorithm the paper's Baseline descends from
//! (reference \[13\]). McLendon et al.'s Trim extension "greatly improves the
//! performance of the previous FW-BW algorithm, especially for real-world
//! graphs" (§2.1–2.2) *because* size-1 SCCs dominate those graphs; without
//! Trim every trivial SCC costs a full FW + BW reachability pair. This
//! implementation exists to quantify that gap (the `ablation_trim` harness)
//! and as an extra cross-validation point.

use crate::config::SccConfig;
use crate::fwbw::recursive::{process_task, seed_tasks, RecurContext, Task};
use crate::instrument::{Collector, Phase, RunReport};
use crate::result::SccResult;
use crate::state::AlgoState;
use swscc_graph::CsrGraph;
use swscc_parallel::{pool::with_pool, TwoLevelQueue};

/// Runs the original FW-BW algorithm: the recursive FW-BW kernel over the
/// work queue, with no trimming at all.
pub fn fwbw_scc(g: &CsrGraph, cfg: &SccConfig) -> (SccResult, RunReport) {
    with_pool(cfg.threads, || {
        let state = AlgoState::new(g);
        let collector = Collector::new(cfg.task_log_limit);

        let tasks = seed_tasks(&state, cfg);
        let initial_tasks = tasks.len();
        let queue: TwoLevelQueue<Task> = TwoLevelQueue::new(cfg.resolve_k(1));
        for t in tasks {
            queue.push_global(t);
        }
        let ctx = RecurContext::new(&state, &collector, cfg);
        let stats = collector.phase(Phase::RecurFwbw, || {
            let stats = queue.run(cfg.threads, |task, worker| process_task(&ctx, task, worker));
            (ctx.resolved_count(), stats)
        });

        let report = collector.into_report(stats, initial_tasks);
        (state.into_result(), report)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tarjan::tarjan_scc;

    #[test]
    fn correct_without_trim() {
        let g = CsrGraph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 4),
                (4, 5),
                (5, 3),
                (2, 3),
                (6, 7),
            ],
        );
        for threads in [1, 2] {
            let (r, _) = fwbw_scc(&g, &SccConfig::with_threads(threads));
            assert_eq!(r.canonical_labels(), tarjan_scc(&g).canonical_labels());
        }
    }

    #[test]
    fn every_node_resolved_on_dag() {
        // Worst case for pure FW-BW: a DAG means one task per node.
        let g = CsrGraph::from_edges(50, &(0..49u32).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let (r, report) = fwbw_scc(&g, &SccConfig::with_threads(2));
        assert_eq!(r.num_components(), 50);
        assert_eq!(report.resolved_in(Phase::RecurFwbw), 50);
        assert_eq!(report.resolved_in(Phase::ParTrim), 0, "no trim ran");
        // every singleton cost its own task
        assert!(report.queue.tasks_executed >= 50);
    }

    #[test]
    fn matches_tarjan_on_random() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(53);
        for _ in 0..8 {
            let n = rng.random_range(1..120usize);
            let m = rng.random_range(0..4 * n);
            let edges: Vec<_> = (0..m)
                .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
                .collect();
            let g = CsrGraph::from_edges(n, &edges);
            let (r, _) = fwbw_scc(&g, &SccConfig::with_threads(2));
            assert_eq!(r.canonical_labels(), tarjan_scc(&g).canonical_labels());
        }
    }
}
