//! Graph statistics: degree/SCC-size distributions and diameter estimation.
//!
//! These back the paper's descriptive artifacts — Table 1 (sizes, largest
//! SCC, estimated diameter), Figure 2 and Figure 9 (SCC-size histograms).
//! The diameter estimate follows the paper's own method: "graph diameters
//! are estimated from a random sampling of nodes".

use crate::bfs::{undirected_bfs_levels, UNREACHED};
use crate::csr::{CsrGraph, NodeId};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;
use rustc_hash::FxHashMap;

/// A size-frequency histogram: `counts[size] = how many groups of that size`.
///
/// Built from a component assignment (`component_of[node] = component id`)
/// or directly from a list of sizes. Exposes exact and log-binned views —
/// Fig. 2/9 are log-log plots, so the harness prints the log-binned form.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SizeHistogram {
    /// Sorted `(size, frequency)` pairs.
    entries: Vec<(usize, usize)>,
}

impl SizeHistogram {
    /// Builds from a per-node component assignment.
    pub fn from_assignment(component_of: &[u32]) -> Self {
        let mut sizes: FxHashMap<u32, usize> = FxHashMap::default();
        for &c in component_of {
            *sizes.entry(c).or_insert(0) += 1;
        }
        let mut freq: FxHashMap<usize, usize> = FxHashMap::default();
        for &s in sizes.values() {
            *freq.entry(s).or_insert(0) += 1;
        }
        let mut entries: Vec<_> = freq.into_iter().collect();
        entries.sort_unstable();
        SizeHistogram { entries }
    }

    /// Builds from an explicit list of group sizes.
    pub fn from_sizes(sizes: &[usize]) -> Self {
        let mut freq: FxHashMap<usize, usize> = FxHashMap::default();
        for &s in sizes {
            *freq.entry(s).or_insert(0) += 1;
        }
        let mut entries: Vec<_> = freq.into_iter().collect();
        entries.sort_unstable();
        SizeHistogram { entries }
    }

    /// Sorted `(size, frequency)` pairs.
    pub fn entries(&self) -> &[(usize, usize)] {
        &self.entries
    }

    /// Number of groups of exactly `size`.
    pub fn count_of(&self, size: usize) -> usize {
        self.entries
            .binary_search_by_key(&size, |e| e.0)
            .map(|i| self.entries[i].1)
            .unwrap_or(0)
    }

    /// The largest group size present (0 for an empty histogram).
    pub fn max_size(&self) -> usize {
        self.entries.last().map(|e| e.0).unwrap_or(0)
    }

    /// Total number of groups.
    pub fn num_groups(&self) -> usize {
        self.entries.iter().map(|e| e.1).sum()
    }

    /// Total number of elements (sum of size * frequency).
    pub fn num_elements(&self) -> usize {
        self.entries.iter().map(|e| e.0 * e.1).sum()
    }

    /// Log2-binned view: `(bin_lower_bound, total_frequency)` with bins
    /// `[1,1], [2,3], [4,7], [8,15], ...` — the presentation used by the
    /// paper's log-log SCC-size plots.
    pub fn log_binned(&self) -> Vec<(usize, usize)> {
        let mut bins: FxHashMap<u32, usize> = FxHashMap::default();
        for &(size, f) in &self.entries {
            let bin = usize::BITS - 1 - (size.max(1)).leading_zeros();
            *bins.entry(bin).or_insert(0) += f;
        }
        let mut out: Vec<_> = bins.into_iter().map(|(b, f)| (1usize << b, f)).collect();
        out.sort_unstable();
        out
    }
}

/// Out-degree histogram (scale-free check; §4.3 load-imbalance driver).
pub fn out_degree_histogram(g: &CsrGraph) -> SizeHistogram {
    let sizes: Vec<usize> = g.nodes().map(|v| g.out_degree(v)).collect();
    SizeHistogram::from_sizes(&sizes)
}

/// In-degree histogram.
pub fn in_degree_histogram(g: &CsrGraph) -> SizeHistogram {
    let sizes: Vec<usize> = g.nodes().map(|v| g.in_degree(v)).collect();
    SizeHistogram::from_sizes(&sizes)
}

/// Estimates the diameter by running undirected BFS from `samples` random
/// nodes and taking the maximum eccentricity observed — exactly the paper's
/// Table 1 method ("estimated from a random sampling of nodes; the actual
/// diameters are likely somewhat larger"). Returns 0 for an empty graph.
pub fn estimate_diameter(g: &CsrGraph, samples: usize, seed: u64) -> u32 {
    if g.num_nodes() == 0 {
        return 0;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let sources: Vec<NodeId> = (0..samples)
        .map(|_| rng.random_range(0..g.num_nodes()) as NodeId)
        .collect();
    sources
        .par_iter()
        .map(|&s| {
            undirected_bfs_levels(g, s)
                .into_iter()
                .filter(|&l| l != UNREACHED)
                .max()
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(0)
}

/// Estimates the average local clustering coefficient by sampling
/// `samples` random nodes (treating edges as undirected, the standard
/// small-world definition from Watts & Strogatz — the paper's ref. \[29\]).
///
/// A node's local coefficient is `2·links / (k·(k−1))` where `k` is its
/// number of distinct undirected neighbors and `links` counts undirected
/// neighbor pairs that are themselves connected. Nodes with `k < 2`
/// contribute 0. Small-world graphs combine a *small diameter* with a
/// clustering coefficient far above the Erdős–Rényi baseline `~k̄/N`.
pub fn estimate_clustering_coefficient(g: &CsrGraph, samples: usize, seed: u64) -> f64 {
    if g.num_nodes() == 0 || samples == 0 {
        return 0.0;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let sources: Vec<NodeId> = (0..samples)
        .map(|_| rng.random_range(0..g.num_nodes()) as NodeId)
        .collect();
    let coeffs: Vec<f64> = sources
        .par_iter()
        .map(|&v| {
            let mut nbrs: Vec<NodeId> = g
                .out_neighbors(v)
                .iter()
                .chain(g.in_neighbors(v))
                .copied()
                .filter(|&u| u != v)
                .collect();
            nbrs.sort_unstable();
            nbrs.dedup();
            let k = nbrs.len();
            if k < 2 {
                return 0.0;
            }
            let mut links = 0usize;
            for (i, &a) in nbrs.iter().enumerate() {
                for &b in &nbrs[i + 1..] {
                    if g.has_edge(a, b) || g.has_edge(b, a) {
                        links += 1;
                    }
                }
            }
            2.0 * links as f64 / (k * (k - 1)) as f64
        })
        .collect();
    coeffs.iter().sum::<f64>() / coeffs.len() as f64
}

/// Average out-degree.
pub fn average_degree(g: &CsrGraph) -> f64 {
    if g.num_nodes() == 0 {
        0.0
    } else {
        g.num_edges() as f64 / g.num_nodes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_from_assignment() {
        // components: {0,1,2}, {3,4}, {5}
        let comp = [0u32, 0, 0, 1, 1, 2];
        let h = SizeHistogram::from_assignment(&comp);
        assert_eq!(h.entries(), &[(1, 1), (2, 1), (3, 1)]);
        assert_eq!(h.max_size(), 3);
        assert_eq!(h.num_groups(), 3);
        assert_eq!(h.num_elements(), 6);
    }

    #[test]
    fn histogram_count_of() {
        let h = SizeHistogram::from_sizes(&[1, 1, 1, 5, 5, 9]);
        assert_eq!(h.count_of(1), 3);
        assert_eq!(h.count_of(5), 2);
        assert_eq!(h.count_of(2), 0);
    }

    #[test]
    fn log_binning() {
        let h = SizeHistogram::from_sizes(&[1, 1, 2, 3, 4, 7, 8, 100]);
        let bins = h.log_binned();
        assert_eq!(bins, vec![(1, 2), (2, 2), (4, 2), (8, 1), (64, 1)]);
    }

    #[test]
    fn empty_histogram() {
        let h = SizeHistogram::from_sizes(&[]);
        assert_eq!(h.max_size(), 0);
        assert_eq!(h.num_groups(), 0);
        assert!(h.log_binned().is_empty());
    }

    #[test]
    fn diameter_of_chain() {
        let n = 50u32;
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_edges(n as usize, &edges);
        // Sampling every node must find the true undirected diameter 49.
        assert_eq!(estimate_diameter(&g, 200, 1), 49);
    }

    #[test]
    fn diameter_sampling_is_lower_bound() {
        let n = 100u32;
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_edges(n as usize, &edges);
        let few = estimate_diameter(&g, 2, 3);
        assert!(few <= 99);
        assert!(few > 0);
    }

    #[test]
    fn degree_histograms() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        let out = out_degree_histogram(&g);
        assert_eq!(out.count_of(2), 1); // node 0
        assert_eq!(out.count_of(1), 1); // node 1
        assert_eq!(out.count_of(0), 1); // node 2
        let inn = in_degree_histogram(&g);
        assert_eq!(inn.count_of(2), 1); // node 2
    }

    #[test]
    fn average_degree_simple() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!((average_degree(&g) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_stats() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(estimate_diameter(&g, 5, 1), 0);
        assert_eq!(average_degree(&g), 0.0);
        assert_eq!(estimate_clustering_coefficient(&g, 5, 1), 0.0);
    }

    #[test]
    fn clustering_of_triangle_is_one() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let c = estimate_clustering_coefficient(&g, 30, 1);
        assert!((c - 1.0).abs() < 1e-9, "triangle clustering = {c}");
    }

    #[test]
    fn clustering_of_star_is_zero() {
        let edges: Vec<_> = (1..10u32).map(|i| (0, i)).collect();
        let g = CsrGraph::from_edges(10, &edges);
        assert_eq!(estimate_clustering_coefficient(&g, 50, 2), 0.0);
    }

    #[test]
    fn clustering_partial() {
        // 0 connected to 1,2,3; only the (1,2) pair is linked: c(0) = 1/3.
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        // sample only node 0 deterministically by sampling many times and
        // checking the average is between star (0) and triangle (1)
        let c = estimate_clustering_coefficient(&g, 400, 3);
        assert!(c > 0.0 && c < 1.0, "c = {c}");
    }

    #[test]
    fn lattice_more_clustered_than_random() {
        // Watts–Strogatz premise: a ring lattice with k=4 is highly
        // clustered; an ER graph of the same density is not.
        use crate::gen::{erdos_renyi, watts_strogatz};
        let ws = watts_strogatz(600, 6, 0.0, 4);
        let er = erdos_renyi(600, ws.num_edges(), 4);
        let c_ws = estimate_clustering_coefficient(&ws, 100, 5);
        let c_er = estimate_clustering_coefficient(&er, 100, 5);
        assert!(
            c_ws > 3.0 * c_er,
            "lattice clustering {c_ws:.3} not ≫ random {c_er:.3}"
        );
    }
}
