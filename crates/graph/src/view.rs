//! The `GraphView` seam: one neighbor-access trait under every kernel.
//!
//! PRs 1-6 made the pipeline memory-bandwidth-bound: every trim / FW-BW /
//! WCC / multisearch round streams the adjacency arrays, so bytes-per-edge
//! is the dominant cost. Following the GBBS playbook (Dhulipala et al.,
//! arXiv 1805.05208), the traversal kernels are generic over this trait so
//! they run unmodified on either the raw [`CsrGraph`] or the byte-delta
//! [`crate::compressed::CompressedCsr`] backend.
//!
//! The design center is the single required streaming primitive
//! [`GraphView::for_each_neighbor_while`]: visit neighbors in ascending
//! order, stop early when the callback says so. Everything else — plain
//! iteration, the bottom-up "parent in frontier" probe, membership tests,
//! slice materialization into a caller-owned buffer — layers on it as
//! provided methods, so a backend only has to implement one zero-allocation
//! decode loop to light up every kernel. Backends with cheaper native
//! implementations (the raw CSR's slices and binary-searchable lists)
//! override the provided methods.

use crate::bfs::Direction;
use crate::csr::{CsrGraph, NodeId};

/// Per-structure heap accounting of a graph backend, split the way the
/// storage is actually laid out: row pointers (offsets), forward adjacency
/// (col_idx), reverse adjacency (the transpose), and any per-vertex side
/// arrays the backend needs (the compressed backend's degree arrays).
///
/// [`MemoryFootprint::raw_equivalent_bytes`] is what the same graph costs
/// in the raw `usize`-offset / `u32`-target CSR layout, so
/// [`MemoryFootprint::ratio_vs_raw`] reads directly as the compression
/// ratio (1.0 for the raw backend itself).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Human-readable backend name (`"csr"`, `"compressed-csr"`).
    pub backend: &'static str,
    /// Row-pointer (offset) arrays, both directions.
    pub offsets_bytes: usize,
    /// Forward adjacency payload (col_idx or the encoded byte stream).
    pub adjacency_bytes: usize,
    /// Reverse adjacency payload (the transpose's col_idx / byte stream).
    pub transpose_bytes: usize,
    /// Per-vertex side arrays (e.g. the compressed backend's degrees).
    pub side_bytes: usize,
    /// Node count, for per-node normalization.
    pub num_nodes: usize,
    /// Directed edge count, for per-edge normalization.
    pub num_edges: usize,
}

impl MemoryFootprint {
    /// Total heap bytes across all structures.
    pub fn total_bytes(&self) -> usize {
        self.offsets_bytes + self.adjacency_bytes + self.transpose_bytes + self.side_bytes
    }

    /// What the raw CSR layout (two `usize` offset arrays, two `u32`
    /// target arrays) costs for a graph of this shape.
    pub fn raw_equivalent_bytes(&self) -> usize {
        (self.num_nodes + 1) * std::mem::size_of::<usize>() * 2
            + self.num_edges * std::mem::size_of::<NodeId>() * 2
    }

    /// Total bytes divided by edge count (`f64::INFINITY` on an edgeless
    /// graph, so callers can still format it).
    pub fn bytes_per_edge(&self) -> f64 {
        self.total_bytes() as f64 / self.num_edges.max(1) as f64
    }

    /// Compression ratio against the raw CSR layout (< 1.0 means smaller
    /// than raw; the raw backend reports exactly 1.0).
    pub fn ratio_vs_raw(&self) -> f64 {
        self.total_bytes() as f64 / self.raw_equivalent_bytes().max(1) as f64
    }
}

impl std::fmt::Display for MemoryFootprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "backend {} ({} nodes, {} edges)",
            self.backend, self.num_nodes, self.num_edges
        )?;
        writeln!(
            f,
            "  offsets   {:>12} B  adjacency {:>12} B",
            self.offsets_bytes, self.adjacency_bytes
        )?;
        writeln!(
            f,
            "  transpose {:>12} B  side      {:>12} B",
            self.transpose_bytes, self.side_bytes
        )?;
        write!(
            f,
            "  total {} B ({:.2} B/edge, {:.1}% of raw CSR)",
            self.total_bytes(),
            self.bytes_per_edge(),
            self.ratio_vs_raw() * 100.0
        )
    }
}

/// Read-only neighbor access over a directed graph with forward and
/// reverse adjacency — the surface every traversal kernel consumes.
///
/// # Contract
///
/// * Neighbor lists are visited in **ascending id order** (duplicates
///   allowed, adjacent). The provided `has_edge` / `find_neighbor`
///   early-exit logic and the differential batteries rely on this.
/// * `degree(dir, n)` equals the number of callbacks
///   `for_each_neighbor_while(dir, n, ..)` would issue if never stopped.
/// * All methods are `&self` and safe to call concurrently (`Sync` bound):
///   the SCC kernels overlay atomics instead of mutating the graph.
pub trait GraphView: Sync {
    /// Number of nodes.
    fn num_nodes(&self) -> usize;

    /// Number of directed edges.
    fn num_edges(&self) -> usize;

    /// Degree of `n` in direction `dir` (out-degree for
    /// [`Direction::Forward`], in-degree for [`Direction::Backward`]).
    fn degree(&self, dir: Direction, n: NodeId) -> usize;

    /// The streaming primitive: calls `f` on each `dir`-neighbor of `n`
    /// in ascending order, stopping as soon as `f` returns `false`.
    ///
    /// This is the zero-allocation decode fast path: compressed backends
    /// decode inline per edge, so neither top-down EdgeMap expansion nor
    /// the bottom-up candidate sweep ever materializes a slice.
    fn for_each_neighbor_while(&self, dir: Direction, n: NodeId, f: impl FnMut(NodeId) -> bool);

    /// Per-structure heap accounting (see [`MemoryFootprint`]).
    fn memory_footprint(&self) -> MemoryFootprint;

    /// Out-degree of `n`.
    #[inline]
    fn out_degree(&self, n: NodeId) -> usize {
        self.degree(Direction::Forward, n)
    }

    /// In-degree of `n`.
    #[inline]
    fn in_degree(&self, n: NodeId) -> usize {
        self.degree(Direction::Backward, n)
    }

    /// Calls `f` on every `dir`-neighbor of `n`, in ascending order.
    #[inline]
    fn for_each_neighbor(&self, dir: Direction, n: NodeId, mut f: impl FnMut(NodeId)) {
        self.for_each_neighbor_while(dir, n, |v| {
            f(v);
            true
        });
    }

    /// First `dir`-neighbor of `n` satisfying `pred` (ascending order,
    /// early exit) — the bottom-up "do I have a parent in the frontier"
    /// probe.
    #[inline]
    fn find_neighbor(
        &self,
        dir: Direction,
        n: NodeId,
        mut pred: impl FnMut(NodeId) -> bool,
    ) -> Option<NodeId> {
        let mut found = None;
        self.for_each_neighbor_while(dir, n, |v| {
            if pred(v) {
                found = Some(v);
                false
            } else {
                true
            }
        });
        found
    }

    /// `true` iff the directed edge `u -> v` exists.
    ///
    /// The provided implementation is the decode-aware membership probe:
    /// an ascending-order scan that stops at the first neighbor `>= v`,
    /// so a miss on a high-degree hub costs only the prefix up to `v` and
    /// never materializes the list. Backends with random-access sorted
    /// lists (the raw CSR) override this with a binary search.
    #[inline]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let mut hit = false;
        self.for_each_neighbor_while(Direction::Forward, u, |w| {
            if w >= v {
                hit = w == v;
                false
            } else {
                true
            }
        });
        hit
    }

    /// Decodes the `dir`-neighbors of `n` into `buf` (cleared first) —
    /// the chunk-granular path for callers that need a materialized
    /// slice. Reusing one buffer per worker keeps this allocation-free
    /// after warm-up.
    #[inline]
    fn copy_neighbors(&self, dir: Direction, n: NodeId, buf: &mut Vec<NodeId>) {
        buf.clear();
        self.for_each_neighbor(dir, n, |v| buf.push(v));
    }

    /// All node ids, `0..num_nodes`.
    #[inline]
    fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.num_nodes() as NodeId
    }

    /// Builds the subgraph induced by `nodes` (sorted, deduplicated, in
    /// range) as a raw [`CsrGraph`]; node `i` of the result corresponds
    /// to `nodes[i]`. Residues are small by the time anything induces
    /// them, so the result is always the raw representation.
    fn induced_subgraph(&self, nodes: &[NodeId]) -> CsrGraph {
        debug_assert!(
            nodes.windows(2).all(|w| w[0] < w[1]),
            "nodes must be sorted+dedup"
        );
        let mut local = vec![u32::MAX; self.num_nodes()];
        for (i, &v) in nodes.iter().enumerate() {
            local[v as usize] = i as u32;
        }
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for (i, &v) in nodes.iter().enumerate() {
            self.for_each_neighbor(Direction::Forward, v, |u| {
                let lu = local[u as usize];
                if lu != u32::MAX {
                    edges.push((i as NodeId, lu));
                }
            });
        }
        CsrGraph::from_edges(nodes.len(), &edges)
    }

    /// The raw CSR behind this view, if this *is* one — lets recovery
    /// paths (full-restart sequential Tarjan) avoid re-materializing.
    #[inline]
    fn as_csr(&self) -> Option<&CsrGraph> {
        None
    }

    /// Decodes the whole graph into a raw [`CsrGraph`] (identity clone
    /// for the raw backend). Used by recovery paths and oracles that
    /// need random-access slices.
    fn materialize_csr(&self) -> CsrGraph {
        if let Some(c) = self.as_csr() {
            return c.clone();
        }
        let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(self.num_edges());
        for u in self.nodes() {
            self.for_each_neighbor(Direction::Forward, u, |v| edges.push((u, v)));
        }
        CsrGraph::from_edges(self.num_nodes(), &edges)
    }
}

impl GraphView for CsrGraph {
    #[inline]
    fn num_nodes(&self) -> usize {
        CsrGraph::num_nodes(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        CsrGraph::num_edges(self)
    }

    #[inline]
    fn degree(&self, dir: Direction, n: NodeId) -> usize {
        dir.neighbors(self, n).len()
    }

    #[inline]
    fn for_each_neighbor_while(
        &self,
        dir: Direction,
        n: NodeId,
        mut f: impl FnMut(NodeId) -> bool,
    ) {
        for &v in dir.neighbors(self, n) {
            if !f(v) {
                return;
            }
        }
    }

    /// Binary search over the sorted slice — cheaper than the streaming
    /// probe on random-access storage.
    #[inline]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        CsrGraph::has_edge(self, u, v)
    }

    fn induced_subgraph(&self, nodes: &[NodeId]) -> CsrGraph {
        CsrGraph::induced_subgraph(self, nodes)
    }

    #[inline]
    fn as_csr(&self) -> Option<&CsrGraph> {
        Some(self)
    }

    fn memory_footprint(&self) -> MemoryFootprint {
        let offset_entry = std::mem::size_of::<usize>();
        let target_entry = std::mem::size_of::<NodeId>();
        MemoryFootprint {
            backend: "csr",
            offsets_bytes: (CsrGraph::num_nodes(self) + 1) * offset_entry * 2,
            adjacency_bytes: CsrGraph::num_edges(self) * target_entry,
            transpose_bytes: CsrGraph::num_edges(self) * target_entry,
            side_bytes: 0,
            num_nodes: CsrGraph::num_nodes(self),
            num_edges: CsrGraph::num_edges(self),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)])
    }

    #[test]
    fn streaming_matches_slices() {
        let g = diamond();
        for n in GraphView::nodes(&g) {
            for dir in [Direction::Forward, Direction::Backward] {
                let mut got = Vec::new();
                g.for_each_neighbor(dir, n, |v| got.push(v));
                assert_eq!(got.as_slice(), dir.neighbors(&g, n));
                assert_eq!(GraphView::degree(&g, dir, n), got.len());
            }
        }
    }

    #[test]
    fn while_variant_stops_early() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let mut seen = Vec::new();
        g.for_each_neighbor_while(Direction::Forward, 0, |v| {
            seen.push(v);
            v < 2
        });
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn find_neighbor_early_exit() {
        let g = diamond();
        assert_eq!(
            g.find_neighbor(Direction::Forward, 0, |v| v > 1),
            Some(2),
            "ascending order: first match past 1 is 2"
        );
        assert_eq!(g.find_neighbor(Direction::Forward, 3, |v| v > 0), None);
    }

    #[test]
    fn default_has_edge_probe_agrees_with_binary_search() {
        // Route around the CsrGraph override to exercise the provided
        // streaming probe itself.
        struct Probe<'a>(&'a CsrGraph);
        impl GraphView for Probe<'_> {
            fn num_nodes(&self) -> usize {
                GraphView::num_nodes(self.0)
            }
            fn num_edges(&self) -> usize {
                GraphView::num_edges(self.0)
            }
            fn degree(&self, dir: Direction, n: NodeId) -> usize {
                GraphView::degree(self.0, dir, n)
            }
            fn for_each_neighbor_while(
                &self,
                dir: Direction,
                n: NodeId,
                f: impl FnMut(NodeId) -> bool,
            ) {
                self.0.for_each_neighbor_while(dir, n, f)
            }
            fn memory_footprint(&self) -> MemoryFootprint {
                self.0.memory_footprint()
            }
        }
        let g = diamond();
        let p = Probe(&g);
        for u in 0..4u32 {
            for v in 0..4u32 {
                assert_eq!(p.has_edge(u, v), CsrGraph::has_edge(&g, u, v), "{u}->{v}");
            }
        }
    }

    #[test]
    fn copy_neighbors_reuses_buffer() {
        let g = diamond();
        let mut buf = vec![99; 8];
        g.copy_neighbors(Direction::Forward, 0, &mut buf);
        assert_eq!(buf, vec![1, 2]);
        g.copy_neighbors(Direction::Backward, 3, &mut buf);
        assert_eq!(buf, vec![1, 2]);
    }

    #[test]
    fn generic_induced_subgraph_matches_inherent() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        // Default trait body vs the CsrGraph override.
        struct Probe<'a>(&'a CsrGraph);
        impl GraphView for Probe<'_> {
            fn num_nodes(&self) -> usize {
                GraphView::num_nodes(self.0)
            }
            fn num_edges(&self) -> usize {
                GraphView::num_edges(self.0)
            }
            fn degree(&self, dir: Direction, n: NodeId) -> usize {
                GraphView::degree(self.0, dir, n)
            }
            fn for_each_neighbor_while(
                &self,
                dir: Direction,
                n: NodeId,
                f: impl FnMut(NodeId) -> bool,
            ) {
                self.0.for_each_neighbor_while(dir, n, f)
            }
            fn memory_footprint(&self) -> MemoryFootprint {
                self.0.memory_footprint()
            }
        }
        let sub_a = Probe(&g).induced_subgraph(&[1, 2, 3]);
        let sub_b = g.induced_subgraph(&[1, 2, 3]);
        let mut ea: Vec<_> = sub_a.edges().collect();
        let mut eb: Vec<_> = sub_b.edges().collect();
        ea.sort_unstable();
        eb.sort_unstable();
        assert_eq!(ea, eb);
    }

    #[test]
    fn materialize_csr_identity_for_raw() {
        let g = diamond();
        let m = GraphView::materialize_csr(&g);
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = m.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn raw_footprint_matches_memory_bytes() {
        let g = diamond();
        let fp = g.memory_footprint();
        assert_eq!(fp.total_bytes(), g.memory_bytes());
        assert_eq!(fp.raw_equivalent_bytes(), g.memory_bytes());
        assert!((fp.ratio_vs_raw() - 1.0).abs() < 1e-12);
        assert!(fp.to_string().contains("backend csr"));
    }
}
