//! Recur-FWBW (Algorithm 5): the phase-2 task handler.
//!
//! Each work-queue task is one partition (one color). The handler picks a
//! pivot, computes FW and BW reachability by *sequential iterative DFS*
//! (§4.2: the parallel BFS's fixed costs exceed plain DFS on the small
//! phase-2 partitions), claims FW ∩ BW as an SCC, and pushes the three
//! residual partitions back onto the queue.
//!
//! The hybrid set representation of §4.1 lives here: every task carries a
//! compact member list alongside the global Color array, so pivot selection
//! is O(members) instead of an O(N) Color-array scan. The paper measured
//! the hybrid as ~10x faster; disabling [`crate::SccConfig::hybrid_sets`]
//! switches to the scan mode so the `ablation_hybrid` harness can reproduce
//! that gap.

use crate::config::SccConfig;
use crate::instrument::{Collector, TaskLogEntry};
use crate::state::{AlgoState, Color};
use swscc_graph::bfs::Direction;
use swscc_graph::{GraphView, NodeId};
use swscc_parallel::Worker;
use swscc_sync::atomic::{AtomicUsize, Ordering};

/// One phase-2 work item: a partition identified by its color.
#[derive(Clone, Debug)]
pub enum Task {
    /// Hybrid representation (§4.1): color plus compact member list.
    WithMembers {
        /// The partition's color.
        color: Color,
        /// Every node of the partition, ascending.
        members: Vec<NodeId>,
    },
    /// Color-only representation (the §4.1 ablation): pivot selection must
    /// scan the whole Color array.
    ColorOnly {
        /// The partition's color.
        color: Color,
    },
}

impl Task {
    /// The partition color.
    pub fn color(&self) -> Color {
        match self {
            Task::WithMembers { color, .. } | Task::ColorOnly { color } => *color,
        }
    }
}

/// Shared context of the phase-2 run (borrowed by every worker).
pub struct RecurContext<'a, 'g, G: GraphView> {
    /// Algorithm state (colors, marks, component output).
    pub state: &'a AlgoState<'g, G>,
    /// Instrumentation sink.
    pub collector: &'a Collector,
    /// Nodes resolved by phase 2 (for the Fig. 8 accounting).
    pub resolved: AtomicUsize,
    hybrid: bool,
}

impl<'a, 'g, G: GraphView> RecurContext<'a, 'g, G> {
    /// New context; `cfg.hybrid_sets` selects the task representation.
    pub fn new(state: &'a AlgoState<'g, G>, collector: &'a Collector, cfg: &SccConfig) -> Self {
        RecurContext {
            state,
            collector,
            resolved: AtomicUsize::new(0),
            hybrid: cfg.hybrid_sets,
        }
    }

    /// Total nodes resolved so far by phase-2 tasks.
    pub fn resolved_count(&self) -> usize {
        // ordering: progress statistic; the definitive read happens after
        // the work-queue run joins (Release/Acquire termination protocol
        // in swscc-parallel), which publishes every add.
        self.resolved.load(Ordering::Relaxed)
    }
}

/// Builds the initial phase-2 task list by scanning the unresolved nodes
/// and grouping them by color (§4.2's deferred set construction). In
/// color-only mode the member lists are discarded after the scan.
pub fn seed_tasks<G: GraphView>(state: &AlgoState<'_, G>, cfg: &SccConfig) -> Vec<Task> {
    state
        .alive_groups()
        .into_iter()
        .map(|(color, members)| {
            if cfg.hybrid_sets {
                Task::WithMembers { color, members }
            } else {
                Task::ColorOnly { color }
            }
        })
        .collect()
}

/// Processes one task: Algorithm 5. Pushes sub-partitions via `worker`.
pub fn process_task<G: GraphView>(
    ctx: &RecurContext<'_, '_, G>,
    task: Task,
    worker: &mut Worker<'_, Task>,
) {
    let state = ctx.state;
    let color = task.color();

    // --- Pivot selection --------------------------------------------------
    let pivot = match &task {
        Task::WithMembers { members, .. } => members
            .iter()
            .copied()
            .find(|&v| state.alive(v) && state.color(v) == color),
        // The expensive path the hybrid representation exists to avoid
        // (§4.1): scan the whole Color array.
        Task::ColorOnly { .. } => {
            (0..state.num_nodes() as NodeId).find(|&v| state.alive(v) && state.color(v) == color)
        }
    };
    let Some(pivot) = pivot else {
        return; // empty partition
    };

    // --- Forward DFS: color -> fw_color -----------------------------------
    let fw_color = state.alloc_color();
    let mut fw_members: Vec<NodeId> = Vec::new();
    if state.cas_color(pivot, color, fw_color) {
        fw_members.push(pivot);
        let mut stack = vec![pivot];
        while let Some(u) = stack.pop() {
            state.g.for_each_neighbor(Direction::Forward, u, |v| {
                // (test-then-CAS, as in the backward pass below)
                if state.color(v) == color && state.cas_color(v, color, fw_color) {
                    fw_members.push(v);
                    stack.push(v);
                }
            });
        }
    } else {
        return; // lost the pivot to a concurrent kernel (cannot happen in
                // phase 2 proper: tasks have disjoint colors)
    }

    // --- Backward DFS: color -> bw_color, fw -> SCC ------------------------
    let bw_color = state.alloc_color();
    let comp = state.alloc_component();
    let mut bw_members: Vec<NodeId> = Vec::new();
    let mut scc_size = 0usize;
    {
        let ok = state.cas_color(pivot, fw_color, crate::state::DONE_COLOR);
        debug_assert!(ok);
        // resolve_into re-stores DONE_COLOR; the CAS above was the claim.
        state.resolve_into(pivot, comp);
        // Mid-task fault site, deliberately *after* the first resolve: a
        // panic here leaves a partially-resolved SCC, exercising the dirty
        // (full-restart) recovery path of the checked drivers.
        swscc_sync::fault::point("recur-task");
        scc_size += 1;
        let mut stack = vec![pivot];
        while let Some(u) = stack.pop() {
            state.g.for_each_neighbor(Direction::Backward, u, |v| {
                // Test-then-CAS: plain load filters already-claimed targets
                // before the atomic RMW (phase-2 tasks own their colors, so
                // the CAS cannot actually fail — kept for uniformity).
                let c = state.color(v);
                if c == color && state.cas_color(v, color, bw_color) {
                    bw_members.push(v);
                    stack.push(v);
                } else if c == fw_color && state.cas_color(v, fw_color, crate::state::DONE_COLOR) {
                    state.resolve_into(v, comp);
                    scc_size += 1;
                    stack.push(v);
                }
            });
        }
    }
    // ordering: statistic counter — exactness from RMW atomicity; the
    // queue's termination protocol publishes it to the final reader.
    ctx.resolved.fetch_add(scc_size, Ordering::Relaxed);

    // --- Push the three residual partitions -------------------------------
    let (fw_len, bw_len, remain_len);
    match task {
        Task::WithMembers { members, .. } => {
            let fw_rest: Vec<NodeId> = fw_members
                .into_iter()
                .filter(|&v| state.color(v) == fw_color)
                .collect();
            let remaining: Vec<NodeId> = members
                .into_iter()
                .filter(|&v| state.color(v) == color)
                .collect();
            fw_len = fw_rest.len();
            bw_len = bw_members.len();
            remain_len = remaining.len();
            if !fw_rest.is_empty() {
                worker.push(Task::WithMembers {
                    color: fw_color,
                    members: fw_rest,
                });
            }
            if !bw_members.is_empty() {
                worker.push(Task::WithMembers {
                    color: bw_color,
                    members: bw_members,
                });
            }
            if !remaining.is_empty() {
                worker.push(Task::WithMembers {
                    color,
                    members: remaining,
                });
            }
        }
        Task::ColorOnly { .. } => {
            fw_len = fw_members
                .iter()
                .filter(|&&v| state.color(v) == fw_color)
                .count();
            bw_len = bw_members.len();
            remain_len = usize::MAX; // unknown without an O(N) scan
            if fw_len > 0 {
                worker.push(Task::ColorOnly { color: fw_color });
            }
            if bw_len > 0 {
                worker.push(Task::ColorOnly { color: bw_color });
            }
            // The untouched remainder keeps `color`; re-push it — if it is
            // empty the pivot scan of the follow-up task returns None.
            worker.push(Task::ColorOnly { color });
        }
    }

    ctx.collector.log_task(TaskLogEntry {
        scc: scc_size,
        fw: fw_len,
        bw: bw_len,
        remain: if remain_len == usize::MAX {
            0
        } else {
            remain_len
        },
    });
    debug_assert!(ctx.hybrid || remain_len == usize::MAX);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::Collector;
    use swscc_graph::CsrGraph;
    use swscc_parallel::TwoLevelQueue;

    fn run_phase2(g: &CsrGraph, cfg: &SccConfig) -> crate::SccResult {
        let state = AlgoState::new(g);
        let collector = Collector::new(16);
        let ctx = RecurContext::new(&state, &collector, cfg);
        let queue: TwoLevelQueue<Task> = TwoLevelQueue::new(cfg.resolve_k(1));
        for t in seed_tasks(&state, cfg) {
            queue.push_global(t);
        }
        queue.run(cfg.threads, |task, worker| process_task(&ctx, task, worker));
        state.into_result()
    }

    #[test]
    fn resolves_simple_graph() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3), (4, 5)]);
        let cfg = SccConfig::with_threads(2);
        let r = run_phase2(&g, &cfg);
        assert_eq!(r.num_components(), 3);
        assert!(r.same_component(0, 2));
        assert!(r.same_component(3, 4));
        assert!(!r.same_component(0, 3));
    }

    #[test]
    fn matches_tarjan_random() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(31);
        for trial in 0..15 {
            let n = rng.random_range(1..120usize);
            let m = rng.random_range(0..4 * n);
            let edges: Vec<_> = (0..m)
                .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
                .collect();
            let g = CsrGraph::from_edges(n, &edges);
            let cfg = SccConfig::with_threads(3);
            assert_eq!(
                run_phase2(&g, &cfg).canonical_labels(),
                crate::tarjan::tarjan_scc(&g).canonical_labels(),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn color_only_mode_matches() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(37);
        let n = 80usize;
        let edges: Vec<_> = (0..200)
            .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
            .collect();
        let g = CsrGraph::from_edges(n, &edges);
        let mut cfg = SccConfig::with_threads(2);
        cfg.hybrid_sets = false;
        assert_eq!(
            run_phase2(&g, &cfg).canonical_labels(),
            crate::tarjan::tarjan_scc(&g).canonical_labels()
        );
    }

    #[test]
    fn task_log_records_sizes() {
        // single 2-cycle with a tail: first task logs SCC=2.
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (1, 2)]);
        let state = AlgoState::new(&g);
        let collector = Collector::new(8);
        let cfg = SccConfig::with_threads(1);
        let ctx = RecurContext::new(&state, &collector, &cfg);
        let queue: TwoLevelQueue<Task> = TwoLevelQueue::new(1);
        for t in seed_tasks(&state, &cfg) {
            queue.push_global(t);
        }
        let stats = queue.run(1, |task, worker| process_task(&ctx, task, worker));
        assert!(stats.tasks_executed >= 2);
        let report = /* collector consumed */ {
            let c = collector;
            c.into_report(stats, 1)
        };
        assert!(!report.task_log.is_empty());
        let total_scc: usize = report.task_log.iter().map(|e| e.scc).sum();
        assert_eq!(total_scc, 3);
    }

    #[test]
    fn seed_tasks_respects_mode() {
        let g = CsrGraph::from_edges(3, &[]);
        let state = AlgoState::new(&g);
        let mut cfg = SccConfig::with_threads(1);
        let hybrid = seed_tasks(&state, &cfg);
        assert_eq!(hybrid.len(), 1);
        assert!(matches!(&hybrid[0], Task::WithMembers { members, .. } if members.len() == 3));
        cfg.hybrid_sets = false;
        let colors = seed_tasks(&state, &cfg);
        assert!(matches!(colors[0], Task::ColorOnly { .. }));
    }
}
