//! The §6 distributed pipeline through the public API.
//!
//! Runs the BSP message-passing SCC pipeline on a Twitter-analog graph
//! and prints its communication profile, then cross-checks the partition
//! against the shared-memory Method 2.
//!
//! ```text
//! cargo run --release --example distributed_scc [workers] [scale]
//! ```

use swscc::distributed::dist_scc;
use swscc::graph::datasets::Dataset;
use swscc::{detect_scc, Algorithm, SccConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.1);

    println!("generating twitter analog at scale {scale}…");
    let g = Dataset::Twitter.generate(scale, 42);
    println!(
        "  {} nodes, {} edges, {} workers\n",
        g.num_nodes(),
        g.num_edges(),
        workers
    );

    let (dist, report) = dist_scc(&g, workers);
    println!("distributed pipeline:");
    println!("  supersteps:     {}", report.supersteps);
    println!("  messages:       {}", report.messages);
    println!(
        "  messages/edge:  {:.2}",
        report.messages as f64 / g.num_edges() as f64
    );
    println!("  trim resolved:  {}", report.trim_resolved);
    println!(
        "  peel resolved:  {} ({} trials)",
        report.peel_resolved, report.peel_trials
    );
    println!("  wcc groups:     {}", report.wcc_groups);
    println!(
        "  residual:       {} nodes ({:.2}% of N) gathered for serial finish",
        report.residual_nodes,
        100.0 * report.residual_nodes as f64 / g.num_nodes() as f64
    );

    let (shared, _) = detect_scc(&g, Algorithm::Method2, &SccConfig::default());
    assert_eq!(dist.canonical_labels(), shared.canonical_labels());
    println!("\npartition identical to shared-memory Method 2 ✓");
    println!(
        "({} components, largest {})",
        dist.num_components(),
        dist.largest_component_size()
    );
}
