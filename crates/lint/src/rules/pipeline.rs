//! Rule (d) — static pipeline legality: the `Pipeline::stock` stage
//! table and any literal `Pipeline::parse("…")` specs in non-test code
//! are parsed out of the source and checked against the same composition
//! rules `Pipeline::new` enforces at runtime (terminal last, terminals
//! only last, no peel after a re-partitioning stage) — so an illegal
//! stock pipeline is a lint failure at commit time, not a config error
//! at run time.
//!
//! The stage metadata is deliberately duplicated here (name, terminal,
//! repartitions): the lint must not depend on the crate it checks. A
//! stage added to `swscc-core` without updating this table surfaces as
//! an `unknown stage` finding, which is the prompt to extend both.

use crate::engine::{Finding, Rule, Workspace};
use crate::rules::Code;
use crate::source::SourceFile;

/// `(variant, cli-name, terminal, repartitions)` — mirrors
/// `swscc_core::pipeline::Stage`.
const STAGES: &[(&str, &str, bool, bool)] = &[
    ("Trim", "trim", false, false),
    ("Fwbw", "fwbw", false, false),
    ("Peel", "peel", false, false),
    ("Trim2", "trim2", false, false),
    ("Wcc", "wcc", false, true),
    ("Coloring", "coloring", true, false),
    ("ColorTail", "colortail", false, true),
    ("Serial", "serial", true, false),
    ("Tasks", "tasks", true, false),
    ("Multisearch", "multisearch", true, false),
];

fn stage_by_variant(v: &str) -> Option<&'static (&'static str, &'static str, bool, bool)> {
    STAGES.iter().find(|s| s.0 == v)
}

fn stage_by_cli(n: &str) -> Option<&'static (&'static str, &'static str, bool, bool)> {
    STAGES.iter().find(|s| s.1 == n)
}

/// Applies the composition rules to a resolved stage list; returns one
/// message per violation.
fn check_stages(stages: &[&'static (&'static str, &'static str, bool, bool)]) -> Vec<String> {
    let mut errs = Vec::new();
    let Some((last, init)) = stages.split_last() else {
        return vec!["empty stage list".to_string()];
    };
    if !last.2 {
        errs.push(format!(
            "final stage `{}` is not terminal — a pipeline must end with a stage that \
             resolves every remaining node",
            last.1
        ));
    }
    for s in init {
        if s.2 {
            errs.push(format!(
                "terminal stage `{}` before the final position — everything after it \
                 would see an empty residue",
                s.1
            ));
        }
    }
    let mut repartitioned_by: Option<&str> = None;
    for s in stages {
        if let Some(prior) = repartitioned_by {
            if s.1 == "fwbw" || s.1 == "peel" {
                errs.push(format!(
                    "`{}` after re-partitioning `{prior}` — the whole-graph partition \
                     the peel targets no longer exists",
                    s.1,
                ));
            }
        }
        if s.3 {
            repartitioned_by = Some(s.1);
        }
    }
    errs
}

pub struct PipelineLegality;

impl Rule for PipelineLegality {
    fn name(&self) -> &'static str {
        "pipeline"
    }

    fn description(&self) -> &'static str {
        "Pipeline::stock table and literal Pipeline::parse specs satisfy the composition rules"
    }

    fn check_file(&self, file: &SourceFile, ws: &Workspace, out: &mut Vec<Finding>) {
        let code = Code::new(file);
        if file.rel_path == ws.config.pipeline_file {
            check_stock_table(self.name(), file, &code, out);
        }
        // Literal `Pipeline::parse("…")` specs anywhere in non-test code
        // (tests exercise illegal specs on purpose).
        for i in 0..code.len() {
            if !code.path_at(i, &["Pipeline", "parse"]) {
                continue;
            }
            let open = i + 4; // Pipeline(i) :(i+1) :(i+2) parse(i+3) → "(" at i+4
            if code.len() <= open + 1 || code.text(open) != "(" {
                continue;
            }
            if file.in_test_code(code.offset(i)) {
                continue;
            }
            let arg = code.text(open + 1);
            if !arg.starts_with('"') {
                continue; // non-literal spec; runtime validation owns it
            }
            let spec = arg.trim_matches('"');
            let mut resolved = Vec::new();
            let mut errs = Vec::new();
            for part in spec.split(',') {
                let part = part.trim();
                if part.is_empty() {
                    continue;
                }
                match stage_by_cli(part) {
                    Some(s) => resolved.push(s),
                    None => errs.push(format!("unknown stage `{part}`")),
                }
            }
            if errs.is_empty() {
                errs = check_stages(&resolved);
            }
            for e in errs {
                out.push(crate::rules::finding_at(
                    &code,
                    i,
                    self.name(),
                    format!("illegal pipeline spec {spec:?}: {e}"),
                ));
            }
        }
    }
}

/// Locates `STOCK` in the pipeline file, walks its initializer, and
/// validates each tuple's `Stage::X` list.
fn check_stock_table(
    rule: &'static str,
    file: &SourceFile,
    code: &Code<'_>,
    out: &mut Vec<Finding>,
) {
    let Some(stock_at) = (0..code.len()).find(|&i| code.text(i) == "STOCK") else {
        out.push(Finding {
            rule,
            file: file.rel_path.clone(),
            line: 0,
            message: "could not locate the `STOCK` stage table — if it moved or was \
                      renamed, update swscc-lint's pipeline rule"
                .to_string(),
            anchor: "missing-stock-table".to_string(),
        });
        return;
    };
    // Skip the type annotation (which also contains brackets): the
    // initializer starts after the `=`.
    let Some(eq) = (stock_at..code.len()).find(|&i| code.text(i) == "=") else {
        return;
    };
    let Some(outer_open) = (eq..code.len()).find(|&i| code.text(i) == "[") else {
        return;
    };

    let mut depth = 0usize; // bracket+paren depth relative to the outer array
    let mut group: Vec<&'static (&'static str, &'static str, bool, bool)> = Vec::new();
    let mut group_errs: Vec<String> = Vec::new();
    let mut group_line = 0usize;
    let mut group_anchor = String::new();
    let mut i = outer_open;
    while i < code.len() {
        let t = code.text(i);
        match t {
            "[" | "(" | "{" => {
                depth += 1;
                if depth == 2 && t == "(" {
                    group.clear();
                    group_errs.clear();
                    group_line = code.line(i);
                    group_anchor = code.anchor(i);
                }
            }
            "]" | ")" | "}" => {
                if depth == 2 && t == ")" {
                    let errs = if group_errs.is_empty() {
                        check_stages(&group)
                    } else {
                        std::mem::take(&mut group_errs)
                    };
                    for e in errs {
                        out.push(Finding {
                            rule,
                            file: file.rel_path.clone(),
                            line: group_line,
                            message: format!("illegal stock pipeline: {e}"),
                            anchor: group_anchor.clone(),
                        });
                    }
                }
                depth -= 1;
                if depth == 0 {
                    break; // closed the outer array
                }
            }
            "Stage"
                if depth >= 2 && code.path_at(i, &["Stage"]) && code.followed_by_path_sep(i) =>
            {
                let variant = code.text(i + 3);
                match stage_by_variant(variant) {
                    Some(s) => group.push(s),
                    None => group_errs.push(format!(
                        "unknown stage `Stage::{variant}` — a new kernel must also be added \
                         to swscc-lint's stage table"
                    )),
                }
            }
            _ => {}
        }
        i += 1;
    }
}
