//! Rule (e) — dropped run reports: a `run_checked` / `run_pipeline`
//! result carries both the `SccResult` *and* the typed error /
//! recovery trail (`RunReport`, `SccError`); dropping it on the floor
//! (`let _ = …` or a bare expression statement) silently discards
//! cancellation, watchdog, and recovery evidence. A dropped
//! `canceller()` is the same bug in the other direction: a `Canceller`
//! that is never stored can never cancel its run, so the minting site
//! was either dead code or a misplaced belief that cancellation is
//! armed. The `#[must_use]` attributes make the compiler warn; this
//! rule makes it a lint failure with a justification hatch
//! (`// report:`) for the rare site that really only wants the side
//! effects.

use crate::engine::{Finding, Rule, Workspace};
use crate::rules::{finding_at, Code};
use crate::source::SourceFile;

const CHECKED_CALLS: &[&str] = &["run_checked", "run_pipeline", "canceller"];

/// Why dropping this particular call's result is a bug.
fn dropped_message(call: &str) -> String {
    match call {
        "canceller" => format!(
            "result of `{call}` is dropped — a Canceller that is never stored can never \
             cancel its run; bind it (or don't mint one), or add a `// report:` justification"
        ),
        _ => format!(
            "result of `{call}` is dropped — the RunReport/SccError it carries records \
             recovery events, watchdog trips, and phase attribution; bind and \
             propagate it, or add a `// report:` justification"
        ),
    }
}

pub struct DroppedReport;

impl Rule for DroppedReport {
    fn name(&self) -> &'static str {
        "must-use"
    }

    fn description(&self) -> &'static str {
        "run_checked/run_pipeline results must not be dropped (RunReport/SccError discarded)"
    }

    fn check_file(&self, file: &SourceFile, _ws: &Workspace, out: &mut Vec<Finding>) {
        let code = Code::new(file);
        for i in 0..code.len() {
            if !CHECKED_CALLS.iter().any(|c| code.is_call(i, c)) {
                continue;
            }
            if file.in_test_code(code.offset(i)) {
                continue;
            }
            if !is_dropped(&code, i) {
                continue;
            }
            if file.has_justification(code.line(i), "// report:") {
                continue;
            }
            out.push(finding_at(
                &code,
                i,
                self.name(),
                dropped_message(code.text(i)),
            ));
        }
    }
}

/// Is the call whose name ident sits at code index `i` a dropped-result
/// site? Two shapes: an explicit `let _ = <call-expr>;` discard, or a
/// bare expression statement `<call-expr>;` (statement position, value
/// unused). A chained use (`….unwrap()`, `…?`) or any binding/return
/// position counts as used.
fn is_dropped(code: &Code<'_>, i: usize) -> bool {
    // After the argument list: `.` (chain) or `?` (propagation) = used.
    let Some(close) = code.matching_paren(i + 1) else {
        return false;
    };
    if close + 1 < code.len() {
        let next = code.text(close + 1);
        if next != ";" {
            return false; // chained, matched, returned, or an argument
        }
    } else {
        return false; // end of file mid-expression; not a statement
    }

    // Walk back over the receiver chain (`a.b.run_checked`, with
    // balanced `(…)`/`[…]` atoms) to the start of the call expression.
    let mut s = i;
    while s >= 2 && code.text(s - 1) == "." {
        let mut a = s - 2; // last token of the previous atom
        let t = code.text(a);
        if t == ")" || t == "]" {
            let closer = t;
            let opener = if closer == ")" { "(" } else { "[" };
            let mut depth = 0usize;
            loop {
                let t = code.text(a);
                if t == closer {
                    depth += 1;
                } else if t == opener {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if a == 0 {
                    break;
                }
                a -= 1;
            }
            // An ident before `(` is part of the same atom (a call).
            if a >= 1 && opener == "(" && is_wordlike(code.text(a - 1)) {
                a -= 1;
            }
        }
        // Fold a leading path (`foo::bar` atoms) into the same atom.
        while a >= 3 && code.text(a - 1) == ":" && code.text(a - 2) == ":" {
            a -= 3;
        }
        s = a;
    }

    // Explicit `let _ = …` discard.
    if s >= 3 && code.text(s - 3) == "let" && code.text(s - 2) == "_" && code.text(s - 1) == "=" {
        return true;
    }
    // Statement position: preceded by `;`, `{`, `}`, or nothing.
    s == 0 || matches!(code.text(s - 1), ";" | "{" | "}")
}

fn is_wordlike(t: &str) -> bool {
    t.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') && !t.is_empty()
}
