//! Lock-free atomic bitset — the paper's `mark` array (§4.1).
//!
//! "Setting the mark value of a node has the same effect as removing the
//! node from the graph representation." The SCC algorithms consult and set
//! marks from many threads concurrently, so the flags live in one `u64`
//! word per 64 nodes with relaxed atomics (the surrounding algorithms
//! provide their own synchronization points: phase barriers and the work
//! queue's lock).

use swscc_sync::atomic::{AtomicU64, Ordering};

/// A fixed-capacity concurrent bitset.
///
/// # Examples
///
/// ```
/// use swscc_parallel::AtomicBitSet;
///
/// let bits = AtomicBitSet::new(100);
/// assert!(!bits.get(42));
/// assert!(bits.set(42));   // newly set -> true
/// assert!(!bits.set(42));  // already set -> false
/// assert!(bits.get(42));
/// assert_eq!(bits.count_ones(), 1);
/// ```
pub struct AtomicBitSet {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitSet {
    /// Creates a bitset with `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        let words = len.div_ceil(64);
        let mut v = Vec::with_capacity(words);
        v.resize_with(words, || AtomicU64::new(0));
        AtomicBitSet { words: v, len }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the bitset has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        // ordering: Relaxed — membership flags carry no payload; the
        // traversal kernels only require claim exclusivity (RMW
        // atomicity in `set`) plus their own level barriers for
        // publication. Verified by the ClaimSet model battery.
        self.words[i / 64].load(Ordering::Relaxed) & (1 << (i % 64)) != 0
    }

    /// Sets bit `i`; returns `true` iff this call changed it (atomic claim —
    /// exactly one of several concurrent setters receives `true`).
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        // ordering: Relaxed — exclusivity comes from fetch_or atomicity
        // (exactly one concurrent setter sees the bit clear); no data is
        // published through the bit itself.
        self.words[i / 64].fetch_or(mask, Ordering::Relaxed) & mask == 0
    }

    /// Clears bit `i`; returns `true` iff this call changed it.
    #[inline]
    pub fn clear(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        // ordering: Relaxed — same claim-atomicity argument as `set`.
        self.words[i / 64].fetch_and(!mask, Ordering::Relaxed) & mask != 0
    }

    /// Clears every bit.
    pub fn clear_all(&self) {
        // ordering: Relaxed — bulk reset runs between phases, with the
        // phase barrier (scope join / pool install) providing the sync.
        for w in &self.words {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        // ordering: Relaxed — counting is only meaningful at phase
        // boundaries, where the caller's barrier orders the bits.
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, w)| {
            // ordering: Relaxed — phase-boundary snapshot, same argument
            // as `count_ones`.
            let mut bits = w.load(Ordering::Relaxed);
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

impl std::fmt::Debug for AtomicBitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AtomicBitSet({}/{} set)", self.count_ones(), self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let b = AtomicBitSet::new(130);
        assert_eq!(b.len(), 130);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!b.get(i));
            assert!(b.set(i));
            assert!(b.get(i));
        }
        assert_eq!(b.count_ones(), 8);
        assert!(b.clear(64));
        assert!(!b.get(64));
        assert!(!b.clear(64)); // already clear
        assert_eq!(b.count_ones(), 7);
    }

    #[test]
    fn set_is_a_claim() {
        let b = AtomicBitSet::new(10);
        assert!(b.set(3));
        assert!(!b.set(3));
    }

    #[test]
    fn iter_ones_ascending() {
        let b = AtomicBitSet::new(200);
        for i in [5usize, 70, 64, 199, 0] {
            b.set(i);
        }
        let ones: Vec<_> = b.iter_ones().collect();
        assert_eq!(ones, vec![0, 5, 64, 70, 199]);
    }

    #[test]
    fn clear_all() {
        let b = AtomicBitSet::new(100);
        for i in 0..100 {
            b.set(i);
        }
        assert_eq!(b.count_ones(), 100);
        b.clear_all();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn empty_bitset() {
        let b = AtomicBitSet::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.iter_ones().count(), 0);
    }

    #[test]
    fn concurrent_claims_are_exclusive() {
        use swscc_sync::atomic::{AtomicUsize, Ordering};
        let b = AtomicBitSet::new(1000);
        let wins = AtomicUsize::new(0);
        swscc_sync::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..1000 {
                        if b.set(i) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        // every bit claimed exactly once across all threads
        assert_eq!(wins.load(Ordering::Relaxed), 1000);
        assert_eq!(b.count_ones(), 1000);
    }
}
