//! `swscc-lint` — the workspace's token-aware, dependency-free
//! static-analysis engine.
//!
//! The repo's correctness story rests on discipline that `cargo test`
//! cannot see: lock-free protocols justified ordering-by-ordering,
//! unsafe decode loops anchored to validated invariants, kernels kept
//! generic over both graph backends, pipeline stage lists that satisfy
//! the engine's composition rules. This crate enforces all of it
//! mechanically, replacing the old regex/line-based `xtask audit` with a
//! real lexer ([`lexer`]), item-level structure ([`source`]), a
//! [`engine::Rule`] catalog ([`rules`]), text/JSON reporters
//! ([`report`]), and a suppression [`baseline`] with expiry.
//!
//! Entry point: `cargo run -p xtask -- lint` (see [`run_lint`]).
//! Rule catalog and conventions: DESIGN.md §13.

pub mod baseline;
pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;

use std::path::PathBuf;

use baseline::Baseline;
use engine::{Config, Workspace};

/// Parsed CLI options for one lint run.
pub struct LintOptions {
    /// Workspace root (the directory holding the top-level Cargo.toml).
    pub root: PathBuf,
    /// Run only the named rule.
    pub rule: Option<String>,
    /// Emit JSON instead of text.
    pub json: bool,
    /// Rewrite `crates/lint/baseline.lint` from current findings.
    pub update_baseline: bool,
    /// Rewrite the DESIGN.md §8 generated atomic-inventory block.
    pub update_inventory: bool,
}

/// Outcome of [`run_lint`]: what to print and how to exit.
pub struct LintRun {
    /// Rendered report (text or JSON per options).
    pub output: String,
    /// True if no findings were reported (exit 0), false for exit 1.
    pub clean: bool,
}

/// Relative path of the suppression baseline.
pub const BASELINE_PATH: &str = "crates/lint/baseline.lint";

/// Runs the lint over the workspace. `Err(msg)` is a usage error (bad
/// `--rule` name, unreadable root) — the caller exits 2.
pub fn run_lint(opts: &LintOptions) -> Result<LintRun, String> {
    if let Some(rule) = &opts.rule {
        let known: Vec<&str> = engine::all_rules().iter().map(|r| r.name()).collect();
        if !known.contains(&rule.as_str()) {
            return Err(format!(
                "unknown rule `{rule}` (available: {})",
                known.join(", ")
            ));
        }
    }
    if !opts.root.join("Cargo.toml").is_file() {
        return Err(format!(
            "workspace root {} has no Cargo.toml",
            opts.root.display()
        ));
    }

    if opts.update_inventory {
        update_inventory(&opts.root)?;
    }

    let ws = Workspace::load(&opts.root, Config::default());
    let baseline_file = opts.root.join(BASELINE_PATH);
    let baseline = std::fs::read_to_string(&baseline_file)
        .map(|t| Baseline::parse(&t))
        .unwrap_or_else(|_| Baseline::empty());

    if opts.update_baseline {
        // Regenerate from the *raw* finding set (no suppression), keeping
        // expiry/reason metadata for entries that still match.
        let raw = engine::run(&ws, opts.rule.as_deref(), &Baseline::empty());
        let new = baseline.regenerate(&raw.findings);
        std::fs::write(&baseline_file, &new)
            .map_err(|e| format!("cannot write {}: {e}", baseline_file.display()))?;
        return Ok(LintRun {
            output: format!(
                "lint: baseline regenerated — {} entr(ies) written to {}\n",
                new.lines()
                    .filter(|l| !l.starts_with('#') && !l.is_empty())
                    .count(),
                BASELINE_PATH
            ),
            clean: true,
        });
    }

    let report = engine::run(&ws, opts.rule.as_deref(), &baseline);
    let output = if opts.json {
        report::json(&report)
    } else {
        report::text(&report)
    };
    Ok(LintRun {
        clean: report.findings.is_empty(),
        output,
    })
}

/// Rewrites the generated atomic-inventory block in DESIGN.md from the
/// extractor's current output.
fn update_inventory(root: &std::path::Path) -> Result<(), String> {
    let design_path = root.join("DESIGN.md");
    let design =
        std::fs::read_to_string(&design_path).map_err(|e| format!("cannot read DESIGN.md: {e}"))?;
    let ws = Workspace::load(root, Config::default());
    let body = rules::inventory::render(&rules::inventory::extract(&ws));
    let new = rules::inventory::splice_design_block(&design, &body).ok_or_else(|| {
        format!(
            "DESIGN.md has no inventory markers (`{}` … `{}`)",
            rules::inventory::BEGIN_MARKER,
            rules::inventory::END_MARKER
        )
    })?;
    std::fs::write(&design_path, new).map_err(|e| format!("cannot write DESIGN.md: {e}"))?;
    Ok(())
}

/// One-line-per-rule catalog listing for `--list-rules` and the docs.
pub fn rule_catalog() -> String {
    engine::all_rules()
        .iter()
        .map(|r| format!("{:<12} {}\n", r.name(), r.description()))
        .collect()
}
