//! Cross-validation: every algorithm must produce the identical SCC
//! partition on every graph class, at several thread counts.

use swscc::graph::datasets::Dataset;
use swscc::graph::gen::{
    bowtie, citation_dag, erdos_renyi, road_grid, watts_strogatz, BowtieConfig, CitationConfig,
    RoadGridConfig,
};
use swscc::{detect_scc, Algorithm, CsrGraph, SccConfig};

fn assert_all_agree(g: &CsrGraph, label: &str) {
    let cfg = SccConfig::with_threads(2);
    let (reference, _) = detect_scc(g, Algorithm::Tarjan, &cfg);
    let want = reference.canonical_labels();
    for algo in Algorithm::all()
        .into_iter()
        .filter(|&a| a != Algorithm::Tarjan)
    {
        for threads in [1usize, 4] {
            let cfg = SccConfig::with_threads(threads);
            let (r, _) = detect_scc(g, algo, &cfg);
            assert_eq!(
                r.canonical_labels(),
                want,
                "{} with {} threads disagrees with tarjan on {label}",
                algo.name(),
                threads
            );
        }
    }
}

#[test]
fn agree_on_bowtie() {
    let bt = bowtie(&BowtieConfig {
        num_nodes: 5000,
        ..Default::default()
    });
    assert_all_agree(&bt.graph, "bowtie");
    // ...and they all match the generator's planted ground truth.
    let cfg = SccConfig::default();
    let (r, _) = detect_scc(&bt.graph, Algorithm::Method2, &cfg);
    let planted = swscc::SccResult::from_assignment(bt.component_of.clone());
    assert_eq!(r.canonical_labels(), planted.canonical_labels());
}

#[test]
fn agree_on_erdos_renyi_both_regimes() {
    // Sub-critical (mostly trivial SCCs) and super-critical (giant SCC).
    assert_all_agree(&erdos_renyi(3000, 1500, 7), "sparse ER");
    assert_all_agree(&erdos_renyi(3000, 12000, 7), "dense ER");
}

#[test]
fn agree_on_watts_strogatz() {
    assert_all_agree(&watts_strogatz(2000, 6, 0.1, 9), "watts-strogatz");
}

#[test]
fn agree_on_citation_dag() {
    let g = citation_dag(&CitationConfig {
        num_nodes: 4000,
        ..Default::default()
    });
    assert_all_agree(&g, "citation dag");
    // A DAG has only trivial SCCs.
    let (r, _) = detect_scc(&g, Algorithm::Method2, &SccConfig::default());
    assert_eq!(r.num_components(), 4000);
}

#[test]
fn agree_on_road_grid() {
    let g = road_grid(&RoadGridConfig {
        width: 50,
        height: 50,
        ..Default::default()
    });
    assert_all_agree(&g, "road grid");
}

#[test]
fn agree_on_all_dataset_analogs_tiny() {
    for d in Dataset::all() {
        let g = d.generate(0.02, 5);
        assert_all_agree(&g, d.name());
    }
}

#[test]
fn agree_on_pathological_shapes() {
    // Empty.
    assert_all_agree(&CsrGraph::from_edges(0, &[]), "empty");
    // Single node, with and without self-loop.
    assert_all_agree(&CsrGraph::from_edges(1, &[]), "single");
    assert_all_agree(&CsrGraph::from_edges(1, &[(0, 0)]), "self-loop");
    // One big cycle (giant SCC is everything).
    let n = 2000u32;
    let cyc: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    assert_all_agree(&CsrGraph::from_edges(n as usize, &cyc), "pure cycle");
    // Star (hub + leaves, no cycles).
    let star: Vec<_> = (1..500u32).map(|i| (0, i)).collect();
    assert_all_agree(&CsrGraph::from_edges(500, &star), "star");
    // Complete bipartite-ish back-and-forth (one big SCC).
    let mut bip = Vec::new();
    for i in 0..40u32 {
        for j in 40..80u32 {
            bip.push((i, j));
            bip.push((j, i));
        }
    }
    assert_all_agree(&CsrGraph::from_edges(80, &bip), "bipartite mutual");
}

#[test]
fn agree_with_duplicate_edges_and_self_loops() {
    let g = CsrGraph::from_edges(
        6,
        &[
            (0, 1),
            (0, 1),
            (1, 0),
            (2, 2),
            (2, 3),
            (3, 4),
            (4, 2),
            (4, 2),
            (5, 5),
        ],
    );
    assert_all_agree(&g, "dups+loops");
}
