//! Rule (c) — GraphView discipline: outside `swscc-graph`, kernels must
//! stay generic over the `GraphView` streaming trait so they run
//! unmodified on both the raw and the compressed backend. Calling the
//! raw-CSR slice accessors (`out_neighbors`/`in_neighbors`) or escaping
//! through `as_csr` pins a kernel to one backend. Escape hatches: a
//! `// graphview:` comment in the same paragraph for one site, or a
//! `// graphview(file):` comment anywhere in the file for a module that
//! is backend-bound by design (the sequential oracles take `&CsrGraph`
//! in their signatures; the BSP simulation partitions raw rows).
//! `examples/` is out of scope — demos may showcase the raw API.

use crate::engine::{Finding, Rule, Workspace};
use crate::rules::{finding_at, Code};
use crate::source::SourceFile;

const RAW_ACCESS: &[&str] = &["out_neighbors", "in_neighbors", "as_csr"];

pub struct GraphViewDiscipline;

impl Rule for GraphViewDiscipline {
    fn name(&self) -> &'static str {
        "graphview"
    }

    fn description(&self) -> &'static str {
        "no raw adjacency access (out_neighbors/in_neighbors/as_csr) outside swscc-graph"
    }

    fn check_file(&self, file: &SourceFile, ws: &Workspace, out: &mut Vec<Finding>) {
        if file.rel_path.starts_with(&ws.config.graph_crate)
            || file.rel_path.starts_with("crates/lint/")
            || file.rel_path.starts_with("examples/")
        {
            return;
        }
        // File-level hatch: one argument that the whole module is
        // backend-bound by design.
        let file_justified =
            (1..=file.line_count()).any(|l| file.comment_text(l).contains("// graphview(file):"));
        if file_justified {
            return;
        }
        let code = Code::new(file);
        for i in 0..code.len() {
            if !RAW_ACCESS.iter().any(|m| code.is_call(i, m)) {
                continue;
            }
            if file.in_test_code(code.offset(i)) {
                continue; // tests compare kernels against raw-slice oracles
            }
            if !file.has_justification(code.line(i), "// graphview:") {
                out.push(finding_at(
                    &code,
                    i,
                    self.name(),
                    format!(
                        "`{}` outside swscc-graph pins this code to the raw CSR backend — \
                         use the GraphView streaming API (for_each_neighbor_while / \
                         copy_neighbors), or add a `// graphview:` justification",
                        code.text(i)
                    ),
                ));
            }
        }
    }
}
