//! Differential battery for the incremental SCC maintenance engine.
//!
//! The maintained partition must be *observationally identical* to a
//! from-scratch run at every batch boundary: after each applied batch
//! of mutations, `IncrementalEngine::snapshot` canonical labels equal
//! Tarjan over the materialized `DeltaGraph` (base + live overlay).
//! Checked across 1/2/4 threads, both backends (raw and compressed
//! CSR), and batch sizes 1/16/256 — batch size 1 means the oracle runs
//! after *every* mutation, so the O(1) in-order path, the bounded
//! merge, and the dirty-residue repair are each diffed at their finest
//! granularity. A compaction at the end must be invisible to the
//! partition.

use proptest::prelude::*;
use swscc::core::incremental::{IncrementalEngine, Mutation};
use swscc::core::tarjan::tarjan_scc;
use swscc::graph::{CompactBackend, CompressedCsr, CsrGraph, DeltaGraph, GraphView};
use swscc::parallel::pool::with_pool;
use swscc::{Algorithm, Pipeline, RunGuard, SccConfig};

const BATCHES: [usize; 3] = [1, 16, 256];

/// One generated case: a base graph plus a mutation script (insert
/// flag, u, v). Deletions of absent edges and duplicate inserts are
/// kept — the engine must treat them as noops, and the oracle diff
/// proves it did.
fn arb_case(max_n: usize) -> impl Strategy<Value = (CsrGraph, Vec<(bool, u32, u32)>)> {
    (2..max_n).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        let base = proptest::collection::vec(edge, 0..3 * n)
            .prop_map(move |edges| CsrGraph::from_edges(n, &edges));
        let step = (any::<bool>(), 0..n as u32, 0..n as u32);
        let script = proptest::collection::vec(step, 1..48);
        (base, script)
    })
}

/// Canonical maintained labels vs Tarjan over the materialized overlay.
fn assert_matches_oracle<G: CompactBackend>(
    engine: &IncrementalEngine<G>,
    guard: &RunGuard,
    at: &str,
) {
    let snap = engine.snapshot(guard).expect("snapshot");
    let got = snap.result().canonical_labels();
    let want = tarjan_scc(&engine.graph().materialize_csr()).canonical_labels();
    assert_eq!(got, want, "{at}: maintained partition diverges from Tarjan");
}

/// Runs `script` through a fresh engine over `base` in `batch`-sized
/// chunks, diffing against Tarjan at every batch boundary and once more
/// after a final compaction.
fn run_script<G: CompactBackend>(
    base: G,
    script: &[(bool, u32, u32)],
    threads: usize,
    batch: usize,
    residue_limit: usize,
) {
    let guard = RunGuard::new();
    let mut cfg = SccConfig::with_threads(threads);
    cfg.incremental_residue_limit = residue_limit;
    let pipeline = Pipeline::stock(Algorithm::Method2).expect("method2 has a stock pipeline");
    let mut engine = IncrementalEngine::new(DeltaGraph::new(base), pipeline, cfg, &guard)
        .expect("initial full run");
    assert_matches_oracle(&engine, &guard, "fresh engine");

    for (i, chunk) in script.chunks(batch).enumerate() {
        for &(insert, u, v) in chunk {
            let m = if insert {
                Mutation::Insert(u, v)
            } else {
                Mutation::Delete(u, v)
            };
            engine.apply(m, &guard).expect("mutation");
        }
        assert_matches_oracle(&engine, &guard, &format!("batch {i} (size {batch})"));
    }

    engine.compact();
    assert_matches_oracle(&engine, &guard, "after final compaction");
    assert_eq!(
        engine.graph().pending(),
        0,
        "compaction must fold the whole overlay"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Maintained partition ≡ Tarjan at every batch boundary, across
    /// 1/2/4 threads × raw/compressed backends × batch sizes 1/16/256.
    #[test]
    fn maintained_partition_tracks_tarjan(
        (g, script) in arb_case(32),
        threads_idx in 0usize..3,
    ) {
        let threads = [1usize, 2, 4][threads_idx];
        let limit = SccConfig::with_threads(threads).incremental_residue_limit;
        with_pool(threads, || {
            for batch in BATCHES {
                run_script(g.clone(), &script, threads, batch, limit);
                run_script(CompressedCsr::from_csr(&g), &script, threads, batch, limit);
            }
        });
    }

    /// A residue limit of 1 forces every deletion repair through the
    /// full-rebuild fallback; the degraded path must stay correct too.
    #[test]
    fn tiny_residue_limit_degrades_but_stays_correct(
        (g, script) in arb_case(20),
    ) {
        with_pool(1, || {
            run_script(g.clone(), &script, 1, 16, 1);
        });
    }
}

/// Deterministic fallback check: deleting a cycle edge inside one big
/// SCC with a tiny residue limit must take the full-rebuild path (the
/// counter proves it) and still match the oracle.
#[test]
fn residue_fallback_is_counted_and_correct() {
    let n = 12u32;
    let mut edges: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
    edges.push((3, 0)); // chord so one deletion keeps the SCC alive
    let g = CsrGraph::from_edges(n as usize, &edges);
    with_pool(1, || {
        let guard = RunGuard::new();
        let mut cfg = SccConfig::with_threads(1);
        cfg.incremental_residue_limit = 1;
        let pipeline = Pipeline::stock(Algorithm::Method2).unwrap();
        let mut engine = IncrementalEngine::new(DeltaGraph::new(g), pipeline, cfg, &guard).unwrap();
        engine.apply(Mutation::Delete(1, 2), &guard).unwrap();
        assert!(
            engine.counters().full_rebuilds > 0,
            "limit 1 must force the fallback"
        );
        assert_matches_oracle(&engine, &guard, "after fallback delete");
    });
}
