//! Property-based fuzzing of the serve wire protocol (satellite of the
//! swscc-serve PR).
//!
//! The decoder's contract is *exit-free, typed-error-only*: arbitrary
//! bytes fed to `decode_request` / `decode_response` / `read_frame`
//! must come back as `Ok` or a typed [`FrameError`] — never a panic,
//! never an unbounded allocation. These properties drive the decoders
//! with seeded random garbage, hostile length prefixes, truncations at
//! every offset, and trailing padding, alongside roundtrip laws for
//! well-formed frames.

use proptest::prelude::*;
use swscc_serve::protocol::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    FrameError, Request, Response, MAX_ERROR_MESSAGE, MAX_REQUEST_FRAME, MAX_RESPONSE_FRAME,
};
use swscc_serve::{MutOp, MutateReply, StatsReply};

/// A structured, always-valid request. Covers every verb (mutations
/// included); node ids and deadlines span the full `u32` range.
fn arb_request() -> impl Strategy<Value = Request> {
    (
        (0u8..11, any::<u32>(), any::<u32>(), any::<u32>()),
        proptest::collection::vec((any::<bool>(), any::<u32>(), any::<u32>()), 0..8),
    )
        .prop_map(|((verb, u, v, deadline_ms), raw_ops)| match verb {
            0 => Request::Ping,
            1 => Request::SameScc { u, v, deadline_ms },
            2 => Request::SccId { u, deadline_ms },
            3 => Request::CondReach { u, v, deadline_ms },
            4 => Request::Stats,
            5 => Request::Recompute,
            6 => Request::Shutdown,
            7 => Request::InsertEdge { u, v, deadline_ms },
            8 => Request::DeleteEdge { u, v, deadline_ms },
            9 => Request::BatchMutate {
                deadline_ms,
                ops: raw_ops
                    .into_iter()
                    .map(|(insert, u, v)| MutOp { insert, u, v })
                    .collect(),
            },
            _ => Request::Compact,
        })
}

/// A structured, always-valid response. Error messages are generated as
/// ASCII under the cap so the encode/decode roundtrip is exact (the
/// lossy-UTF-8 + truncation path is exercised separately by the garbage
/// properties and the unit tests).
fn arb_response() -> impl Strategy<Value = Response> {
    (
        0u8..15,
        any::<u64>(),
        any::<u32>(),
        proptest::collection::vec(32u8..127, 0..MAX_ERROR_MESSAGE),
    )
        .prop_map(|(status, big, small, ascii)| {
            let message = String::from_utf8(ascii).expect("ascii is utf-8");
            match status {
                0 => Response::Pong,
                1 => Response::Bool(big & 1 == 1),
                2 => Response::Id(small),
                3 => Response::Stats(StatsReply {
                    epoch: big,
                    num_nodes: big.rotate_left(7),
                    num_edges: big.rotate_left(13),
                    num_components: u64::from(small),
                    queries: big ^ 0xAAAA,
                    shed: u64::from(small) >> 3,
                    deadline_misses: big & 0xFFFF,
                    recomputes_ok: u64::from(small) & 0xFF,
                    recomputes_failed: big >> 60,
                    quarantined: u64::from(small) % 97,
                    stale: big & 2 == 2,
                    mutations_ok: big.rotate_left(23),
                    mutations_failed: big >> 53,
                    pending_deltas: u64::from(small) % 4099,
                    compactions: big & 0xFF,
                    mutating: big & 4 == 4,
                }),
                4 => Response::Recomputed { epoch: big },
                5 => Response::ShuttingDown,
                6 => Response::BadRequest { message },
                7 => Response::OutOfRange,
                8 => Response::Overloaded {
                    retry_after_ms: small,
                },
                9 => Response::DeadlineExceeded,
                10 => Response::RecomputeFailed { message },
                11 => Response::Internal { message },
                12 => Response::Mutated(MutateReply {
                    epoch: big,
                    applied: small,
                    noops: small.rotate_left(5),
                    merges: small & 0xFFFF,
                    splits: small >> 16,
                    rebuilds: small % 31,
                    num_components: big.rotate_left(29),
                    pending_deltas: big & 0xFFFF_FFFF,
                }),
                13 => Response::MutateFailed { message },
                _ => Response::Compacted {
                    epoch: big,
                    folded: u64::from(small),
                },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes never panic the request decoder, and anything it
    /// accepts re-encodes to exactly the input (the encoding is
    /// canonical: fixed-size fields, strict trailing check).
    #[test]
    fn request_decoder_is_total_and_canonical(
        bytes in proptest::collection::vec(any::<u8>(), 0..MAX_REQUEST_FRAME)
    ) {
        match decode_request(&bytes) {
            Ok(req) => prop_assert_eq!(encode_request(&req), bytes),
            Err(
                FrameError::Truncated
                | FrameError::TrailingBytes { .. }
                | FrameError::UnknownVerb(_)
                // A batch-mutate op count past MAX_MUTATION_BATCH is
                // refused before any buffer is sized.
                | FrameError::Oversized { .. },
            ) => {}
            Err(other) => panic!("request decoder leaked untyped error: {other:?}"),
        }
    }

    /// Arbitrary bytes never panic the response decoder; failures are
    /// confined to the typed payload-shape errors.
    #[test]
    fn response_decoder_is_total(
        bytes in proptest::collection::vec(any::<u8>(), 0..MAX_RESPONSE_FRAME)
    ) {
        match decode_response(&bytes) {
            Ok(_) => {}
            Err(
                FrameError::Truncated
                | FrameError::TrailingBytes { .. }
                | FrameError::UnknownStatus(_),
            ) => {}
            Err(other) => panic!("response decoder leaked untyped error: {other:?}"),
        }
    }

    /// Every structured request survives encode -> decode unchanged,
    /// stays under the frame cap, and rejects every strict prefix of
    /// its encoding (no verb's payload is a prefix of another's).
    #[test]
    fn request_roundtrip_and_prefix_rejection(req in arb_request()) {
        let bytes = encode_request(&req);
        prop_assert!(bytes.len() <= MAX_REQUEST_FRAME);
        prop_assert_eq!(decode_request(&bytes), Ok(req));
        for cut in 0..bytes.len() {
            prop_assert!(
                decode_request(&bytes[..cut]).is_err(),
                "strict prefix of length {} decoded",
                cut
            );
        }
    }

    /// Every structured response survives encode -> decode unchanged
    /// and stays under the response frame cap.
    #[test]
    fn response_roundtrip(resp in arb_response()) {
        let bytes = encode_response(&resp);
        prop_assert!(bytes.len() <= MAX_RESPONSE_FRAME);
        prop_assert_eq!(decode_response(&bytes), Ok(resp));
    }

    /// Appending garbage to a valid request encoding is always the
    /// typed `TrailingBytes` error with an exact count — padding is
    /// never silently absorbed.
    #[test]
    fn request_trailing_bytes_are_counted(
        req in arb_request(),
        pad in proptest::collection::vec(any::<u8>(), 1..16)
    ) {
        let mut bytes = encode_request(&req);
        let extra = pad.len();
        bytes.extend_from_slice(&pad);
        prop_assert_eq!(
            decode_request(&bytes),
            Err(FrameError::TrailingBytes { extra })
        );
    }

    /// `read_frame` on an arbitrary wire: a hostile length prefix is
    /// rejected *before* allocation, a short payload is `Truncated`,
    /// and an honest frame yields exactly its payload.
    #[test]
    fn read_frame_is_total_over_arbitrary_prefixes(
        claimed in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..96)
    ) {
        let mut wire = Vec::with_capacity(4 + payload.len());
        wire.extend_from_slice(&claimed.to_le_bytes());
        wire.extend_from_slice(&payload);
        let mut r = wire.as_slice();
        let claimed = claimed as usize;
        match read_frame(&mut r, MAX_REQUEST_FRAME) {
            Ok(got) => {
                prop_assert!(claimed <= MAX_REQUEST_FRAME);
                prop_assert_eq!(&got, &payload[..claimed]);
            }
            Err(FrameError::Oversized { len, max }) => {
                prop_assert_eq!(len, claimed);
                prop_assert_eq!(max, MAX_REQUEST_FRAME);
            }
            Err(FrameError::Truncated) => {
                prop_assert!(claimed <= MAX_REQUEST_FRAME && payload.len() < claimed);
            }
            Err(other) => panic!("read_frame leaked untyped error: {other:?}"),
        }
    }

    /// Truncating a well-formed wire frame at every byte offset is a
    /// typed error: `ConnectionClosed` only at the clean zero-byte
    /// boundary, `Truncated` everywhere inside the frame.
    #[test]
    fn every_wire_truncation_is_typed(req in arb_request()) {
        let payload = encode_request(&req);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).expect("Vec write cannot fail");
        for cut in 0..wire.len() {
            let mut r = &wire[..cut];
            let want = if cut == 0 {
                FrameError::ConnectionClosed
            } else {
                FrameError::Truncated
            };
            prop_assert_eq!(read_frame(&mut r, MAX_REQUEST_FRAME), Err(want));
        }
    }
}
