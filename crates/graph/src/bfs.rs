//! Breadth-first search, sequential and level-synchronous parallel (§4.2).
//!
//! The SCC algorithms in `swscc-core` embed their own color-aware BFS; this
//! module provides the plain graph traversals used by diameter estimation
//! (Table 1), weak-connectivity checks, and as a reference implementation
//! the parallel traversal is tested against.

use crate::csr::{CsrGraph, NodeId};
use crate::traverse::{Adjacency, EdgeMap, EdgeMapOps, TraversalConfig};
use swscc_sync::atomic::{AtomicU32, Ordering};

/// Level value for unreached nodes.
pub const UNREACHED: u32 = u32::MAX;

/// Which adjacency direction a traversal follows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Follow out-edges (forward reachability).
    Forward,
    /// Follow in-edges (backward reachability).
    Backward,
}

impl Direction {
    /// Neighbors of `n` in this direction.
    #[inline]
    pub fn neighbors(self, g: &CsrGraph, n: NodeId) -> &[NodeId] {
        match self {
            Direction::Forward => g.out_neighbors(n),
            Direction::Backward => g.in_neighbors(n),
        }
    }

    /// The opposite direction.
    #[inline]
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Forward => Direction::Backward,
            Direction::Backward => Direction::Forward,
        }
    }
}

/// Sequential BFS from `src`; returns per-node level ([`UNREACHED`] if not
/// reachable).
///
/// # Examples
///
/// ```
/// use swscc_graph::{CsrGraph, bfs};
///
/// let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2)]);
/// let lv = bfs::bfs_levels(&g, 0, bfs::Direction::Forward);
/// assert_eq!(lv, vec![0, 1, 2, bfs::UNREACHED]);
/// ```
pub fn bfs_levels(g: &CsrGraph, src: NodeId, dir: Direction) -> Vec<u32> {
    let mut levels = vec![UNREACHED; g.num_nodes()];
    if g.num_nodes() == 0 {
        return levels;
    }
    let mut frontier = vec![src];
    levels[src as usize] = 0;
    let mut depth = 0u32;
    while !frontier.is_empty() {
        depth += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in dir.neighbors(g, u) {
                if levels[v as usize] == UNREACHED {
                    levels[v as usize] = depth;
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    levels
}

/// The BFS claim protocol: a test-then-CAS on the atomic level array.
/// The cheap load filters visited nodes before paying for the RMW; level
/// assignment is deterministic (level-synchronous), claim order is not.
struct LevelClaimOps<'a> {
    levels: &'a [AtomicU32],
}

impl EdgeMapOps for LevelClaimOps<'_> {
    #[inline]
    fn claim(&self, _src: NodeId, dst: NodeId, depth: u32) -> bool {
        // ordering: exclusivity comes from CAS atomicity alone — the level
        // value carries no payload a reader could see torn (every writer
        // in a level writes the same `depth`), and cross-level publication
        // is the EdgeMap barrier (scope join) between levels. A stale load
        // in the pre-filter only costs a redundant CAS. Verified by the
        // ClaimSet/frontier model battery.
        self.levels[dst as usize].load(Ordering::Relaxed) == UNREACHED
            && self.levels[dst as usize]
                .compare_exchange(UNREACHED, depth, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
    }

    #[inline]
    fn candidate(&self, v: NodeId) -> bool {
        // ordering: heuristic pre-filter for the bottom-up sweep; claims
        // from prior levels are published by the inter-level barrier, and
        // same-level claims are re-checked by the CAS in `claim`.
        self.levels[v as usize].load(Ordering::Relaxed) == UNREACHED
    }
}

/// Level-synchronous parallel BFS over an arbitrary adjacency with an
/// explicit [`TraversalConfig`] — the [`crate::traverse::EdgeMap`] kernel
/// instantiated with the level-array claim protocol. Matches the matching
/// sequential BFS exactly (tested), in every kernel mode: level assignment
/// in a level-synchronous BFS is deterministic even though claim order is
/// not, and the kernel's bottom-up sweeps join against frontier membership
/// (not the visited set) so they assign identical depths.
pub fn par_bfs_levels_with<G: crate::view::GraphView>(
    g: &G,
    src: NodeId,
    adj: Adjacency,
    cfg: &TraversalConfig,
) -> Vec<u32> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let mut levels: Vec<AtomicU32> = Vec::with_capacity(n);
    levels.resize_with(n, || AtomicU32::new(UNREACHED));
    // ordering: single-threaded seeding before any worker exists; the
    // scope spawn inside the kernel publishes it.
    levels[src as usize].store(0, Ordering::Relaxed);
    let mut em = EdgeMap::new(g, adj, *cfg);
    em.seed(src);
    em.run(&LevelClaimOps { levels: &levels });
    levels.into_iter().map(AtomicU32::into_inner).collect()
}

/// Level-synchronous parallel BFS from `src` (default kernel settings).
pub fn par_bfs_levels(g: &CsrGraph, src: NodeId, dir: Direction) -> Vec<u32> {
    par_bfs_levels_with(
        g,
        src,
        Adjacency::Directed(dir),
        &TraversalConfig::default(),
    )
}

/// [`par_bfs_levels`] with the Beamer direction-optimizing switch enabled.
pub fn par_bfs_levels_dobfs(g: &CsrGraph, src: NodeId, dir: Direction) -> Vec<u32> {
    par_bfs_levels_with(
        g,
        src,
        Adjacency::Directed(dir),
        &TraversalConfig::direction_optimizing(),
    )
}

/// Parallel BFS treating the graph as undirected — the kernel over
/// [`Adjacency::Undirected`]. Matches [`undirected_bfs_levels`] exactly.
pub fn par_undirected_bfs_levels(g: &CsrGraph, src: NodeId) -> Vec<u32> {
    par_bfs_levels_with(g, src, Adjacency::Undirected, &TraversalConfig::default())
}

/// The set of nodes reachable from `src` (including `src`), as a sorted vec.
pub fn reachable_set(g: &CsrGraph, src: NodeId, dir: Direction) -> Vec<NodeId> {
    bfs_levels(g, src, dir)
        .iter()
        .enumerate()
        .filter(|&(_, &lv)| lv != UNREACHED)
        .map(|(i, _)| i as NodeId)
        .collect()
}

/// Eccentricity of `src`: the maximum finite BFS level. Returns 0 for an
/// isolated node.
pub fn eccentricity(g: &CsrGraph, src: NodeId, dir: Direction) -> u32 {
    bfs_levels(g, src, dir)
        .into_iter()
        .filter(|&lv| lv != UNREACHED)
        .max()
        .unwrap_or(0)
}

/// BFS treating the graph as undirected (follows both edge directions).
/// Used by weak-connectivity checks and road-network diameter estimation.
pub fn undirected_bfs_levels(g: &CsrGraph, src: NodeId) -> Vec<u32> {
    let mut levels = vec![UNREACHED; g.num_nodes()];
    if g.num_nodes() == 0 {
        return levels;
    }
    let mut frontier = vec![src];
    levels[src as usize] = 0;
    let mut depth = 0u32;
    while !frontier.is_empty() {
        depth += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
                if levels[v as usize] == UNREACHED {
                    levels[v as usize] = depth;
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: u32) -> CsrGraph {
        CsrGraph::from_edges(
            n as usize,
            &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn levels_on_chain() {
        let g = chain(5);
        assert_eq!(bfs_levels(&g, 0, Direction::Forward), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_levels(&g, 4, Direction::Backward), vec![4, 3, 2, 1, 0]);
        assert_eq!(
            bfs_levels(&g, 2, Direction::Forward),
            vec![UNREACHED, UNREACHED, 0, 1, 2]
        );
    }

    #[test]
    fn par_matches_seq_on_random() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 500u32;
        let edges: Vec<_> = (0..3000)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();
        let g = CsrGraph::from_edges(n as usize, &edges);
        for src in [0u32, 13, 499] {
            for dir in [Direction::Forward, Direction::Backward] {
                assert_eq!(bfs_levels(&g, src, dir), par_bfs_levels(&g, src, dir));
            }
        }
    }

    #[test]
    fn dobfs_matches_seq_on_random() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(23);
        let n = 800u32;
        let edges: Vec<_> = (0..8000)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();
        let g = CsrGraph::from_edges(n as usize, &edges);
        for src in [0u32, 400, 799] {
            for dir in [Direction::Forward, Direction::Backward] {
                assert_eq!(bfs_levels(&g, src, dir), par_bfs_levels_dobfs(&g, src, dir));
            }
        }
    }

    #[test]
    fn par_undirected_matches_seq() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(31);
        let n = 300u32;
        let edges: Vec<_> = (0..900)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();
        let g = CsrGraph::from_edges(n as usize, &edges);
        for src in [0u32, 150, 299] {
            assert_eq!(
                undirected_bfs_levels(&g, src),
                par_undirected_bfs_levels(&g, src)
            );
        }
    }

    #[test]
    fn reachable_set_cycle() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(reachable_set(&g, 0, Direction::Forward), vec![0, 1, 2]);
        assert_eq!(reachable_set(&g, 3, Direction::Forward), vec![3]);
        assert_eq!(reachable_set(&g, 0, Direction::Backward), vec![0, 1, 2]);
    }

    #[test]
    fn eccentricity_chain() {
        let g = chain(6);
        assert_eq!(eccentricity(&g, 0, Direction::Forward), 5);
        assert_eq!(eccentricity(&g, 5, Direction::Forward), 0);
    }

    #[test]
    fn undirected_ignores_direction() {
        let g = CsrGraph::from_edges(3, &[(1, 0), (1, 2)]);
        let lv = undirected_bfs_levels(&g, 0);
        assert_eq!(lv, vec![0, 1, 2]);
    }

    #[test]
    fn direction_reverse() {
        assert_eq!(Direction::Forward.reverse(), Direction::Backward);
        assert_eq!(Direction::Backward.reverse(), Direction::Forward);
    }

    #[test]
    fn empty_graph_bfs() {
        let g = CsrGraph::from_edges(0, &[]);
        assert!(par_bfs_levels(&g, 0, Direction::Forward).is_empty());
    }

    #[test]
    fn disconnected_components() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let lv = bfs_levels(&g, 0, Direction::Forward);
        assert_eq!(lv[2], UNREACHED);
        assert_eq!(lv[3], UNREACHED);
    }
}
