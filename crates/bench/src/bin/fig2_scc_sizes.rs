//! Figure 2: distribution of SCC sizes in the LiveJournal network.
//!
//! The paper's motivating figure: one giant SCC of the same order as N,
//! a power-law tail, and size-1 SCCs of the same order as N. Prints the
//! exact (not binned) histogram head plus the log-binned tail, and checks
//! the two §2.2 claims on the analog.

use swscc_bench::{print_header, scale};
use swscc_core::{detect_scc, Algorithm, SccConfig};
use swscc_graph::datasets::Dataset;

fn main() {
    print_header("Figure 2: LiveJournal SCC size distribution");
    let g = Dataset::Livej.load(scale(), 42);
    let (scc, _) = detect_scc(&g, Algorithm::Tarjan, &SccConfig::default());
    let h = scc.size_histogram();

    println!("N = {}, SCCs = {}", g.num_nodes(), scc.num_components());
    println!("\nexact head of the distribution:");
    println!("  {:<10} {:>10}", "size", "frequency");
    for &(size, freq) in h.entries().iter().take(12) {
        println!("  {:<10} {:>10}", size, freq);
    }
    println!("\nlog-binned tail:");
    for (lo, count) in h.log_binned() {
        println!("  size ≥ {:<8} {:>10}", lo, count);
    }

    // §2.2's two claims, quantified on the analog:
    let giant = scc.largest_component_size();
    let trivial = scc.num_trivial();
    println!("\n§2.2 claims:");
    println!(
        "  giant SCC is O(N):       {} / {} = {:.2}",
        giant,
        g.num_nodes(),
        giant as f64 / g.num_nodes() as f64
    );
    println!(
        "  size-1 SCCs same order:  {} ({:.1}% of nodes, {:.1}% of SCCs)",
        trivial,
        100.0 * trivial as f64 / g.num_nodes() as f64,
        100.0 * trivial as f64 / scc.num_components() as f64
    );
    // Paper's LiveJournal reference points: giant = 3,828,682 of 4,847,571
    // nodes (0.79), size-1 SCCs = 947,776.
    println!("  (paper: giant 3,828,682 of 4,847,571 = 0.79; 947,776 size-1 SCCs)");
}
