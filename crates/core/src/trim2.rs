//! Par-Trim2 (Algorithm 8): single-pass parallel detection of size-2 SCCs.
//!
//! §3.4: a large subset of size-2 SCCs is recognizable purely from local
//! neighborhoods — two nodes with a mutual edge where either (a) both have
//! no *other* incoming edge, or (b) both have no *other* outgoing edge
//! (Fig. 4); no larger cycle can contain them. The paper applies Trim2
//! exactly once (it is costlier than Trim) and reports that its real payoff
//! is cutting chains of weakly connected size-2 SCCs before the Par-WCC
//! step, shrinking WCC time by up to 50%.
//!
//! Race-freedom (the paper's pseudocode lets two threads claim overlapping
//! pairs): the qualifying relation is symmetric and each node can qualify
//! with at most one partner, so the pair is claimed deterministically by
//! its smaller-id endpoint — no CAS retry loop is needed, and a debug
//! assertion verifies no double-resolution.

use crate::state::AlgoState;
use swscc_graph::{GraphView, NodeId};

/// Runs one parallel Trim2 sweep. Returns the number of nodes resolved
/// (always even: whole pairs).
pub fn par_trim2<G: GraphView>(state: &AlgoState<'_, G>) -> usize {
    // Pair scan over the live set: O(|residue|) once compacted.
    let pairs: Vec<(NodeId, NodeId)> = state.live().par_filter_map(|v| {
        if !state.alive(v) {
            return None;
        }
        // each pair claimed once, by its min node
        find_partner(state, v).and_then(|k| (v < k).then_some((v, k)))
    });
    for &(v, k) in &pairs {
        let comp = state.alloc_component();
        // `find_partner` results are mutually exclusive across pairs (a
        // node qualifies with at most one partner), so these claims can
        // never collide.
        state.resolve_into(v, comp);
        state.resolve_into(k, comp);
    }
    2 * pairs.len()
}

/// If `{v, partner}` forms a Trim2-detectable size-2 SCC, returns the
/// partner. Patterns of Fig. 4 (within v's current color):
///
/// * (a) `in(v) = {k}`, `v -> k` exists, `in(k) = {v}` — no other way in;
/// * (b) `out(v) = {k}`, `k -> v` exists, `out(k) = {v}` — no other way out.
fn find_partner<G: GraphView>(state: &AlgoState<'_, G>, v: NodeId) -> Option<NodeId> {
    let cv = state.color(v);
    // Pattern (a): unique in-neighbor with a mutual edge, itself in-unique.
    if let Some(k) = state.unique_in_neighbor(v) {
        if state.color(k) == cv && state.g.has_edge(v, k) && state.unique_in_neighbor(k) == Some(v)
        {
            return Some(k);
        }
    }
    // Pattern (b): unique out-neighbor with a mutual edge, itself out-unique.
    if let Some(k) = state.unique_out_neighbor(v) {
        if state.color(k) == cv && state.g.has_edge(k, v) && state.unique_out_neighbor(k) == Some(v)
        {
            return Some(k);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use swscc_graph::CsrGraph;

    #[test]
    fn isolated_pair_detected() {
        let g = CsrGraph::from_edges(2, &[(0, 1), (1, 0)]);
        let s = AlgoState::new(&g);
        assert_eq!(par_trim2(&s), 2);
        let r = s.into_result();
        assert_eq!(r.num_components(), 1);
        assert!(r.same_component(0, 1));
    }

    #[test]
    fn pattern_a_no_other_incoming() {
        // Fig. 4(b)-ish: pair {0,1} with extra outgoing edges but no other
        // incoming edges.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 0), (0, 2), (1, 3)]);
        let s = AlgoState::new(&g);
        assert_eq!(par_trim2(&s), 2);
        assert!(!s.alive(0) && !s.alive(1));
        assert!(s.alive(2) && s.alive(3));
    }

    #[test]
    fn pattern_b_no_other_outgoing() {
        // pair {2,3} with extra incoming edges but no other outgoing.
        let g = CsrGraph::from_edges(4, &[(2, 3), (3, 2), (0, 2), (1, 3)]);
        let s = AlgoState::new(&g);
        assert_eq!(par_trim2(&s), 2);
        assert!(!s.alive(2) && !s.alive(3));
    }

    #[test]
    fn pair_in_larger_cycle_not_detected() {
        // 0 <-> 1 but also 1 -> 2 -> 0: the pair is part of a 3-cycle SCC
        // and has another incoming (0 from 2) and outgoing (1 to 2) — must
        // NOT be claimed.
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 0)]);
        let s = AlgoState::new(&g);
        assert_eq!(par_trim2(&s), 0);
    }

    #[test]
    fn middle_of_pair_chain_not_detected_in_one_pass() {
        // (0<->1) -> (2<->3) -> (4<->5): §3.4 — one pass gets the end
        // pairs (pattern a fires for {0,1}, pattern b for {4,5}) but not
        // the middle.
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 3),
                (3, 2),
                (3, 4),
                (4, 5),
                (5, 4),
            ],
        );
        let s = AlgoState::new(&g);
        assert_eq!(par_trim2(&s), 4);
        assert!(s.alive(2) && s.alive(3));
        // A second pass now catches the middle pair.
        assert_eq!(par_trim2(&s), 2);
    }

    #[test]
    fn respects_colors() {
        // pair 0<->1 with an extra incoming edge (2 -> 0, blocks pattern a)
        // and an extra outgoing edge (1 -> 3, blocks pattern b): not
        // detectable — until 2 and 3 move to a different color, which
        // detaches both blocking edges.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 0), (2, 0), (1, 3)]);
        let s = AlgoState::new(&g);
        assert_eq!(par_trim2(&s), 0);
        let c = s.alloc_color();
        s.set_color(2, c);
        s.set_color(3, c);
        assert_eq!(par_trim2(&s), 2);
    }

    #[test]
    fn self_loops_do_not_confuse() {
        let g = CsrGraph::from_edges(2, &[(0, 0), (0, 1), (1, 0), (1, 1)]);
        let s = AlgoState::new(&g);
        assert_eq!(par_trim2(&s), 2);
    }

    #[test]
    fn many_disjoint_pairs() {
        let n = 1000u32;
        let mut edges = Vec::new();
        for i in (0..n).step_by(2) {
            edges.push((i, i + 1));
            edges.push((i + 1, i));
        }
        let g = CsrGraph::from_edges(n as usize, &edges);
        let s = AlgoState::new(&g);
        assert_eq!(par_trim2(&s), n as usize);
        let r = s.into_result();
        assert_eq!(r.num_components(), n as usize / 2);
    }

    #[test]
    fn three_cycle_untouched() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let s = AlgoState::new(&g);
        assert_eq!(par_trim2(&s), 0);
    }
}
