//! Figure 8: fraction of nodes whose SCC is identified at each phase of
//! execution, for Method 2.
//!
//! The paper's reading: the more nodes left for the recursive FW-BW step,
//! the bigger the payoff of Method 2's WCC re-partitioning.

use swscc_bench::{print_header, scale};
use swscc_core::instrument::Phase;
use swscc_core::{detect_scc, Algorithm, SccConfig};
use swscc_graph::datasets::Dataset;

fn main() {
    print_header("Figure 8: fraction of nodes resolved per phase (Method 2)");
    println!(
        "{:<9} {:>10} {:>10} {:>10} {:>12}  {:>14}",
        "name", "par-trim", "par-fwbw", "par-trim'", "recur-fwbw", "initial tasks"
    );
    for d in Dataset::all() {
        let g = d.load(scale(), 42);
        let (_, report) = detect_scc(&g, Algorithm::Method2, &SccConfig::default());
        let f = |p: Phase| format!("{:.1}%", 100.0 * report.resolved_fraction(p));
        println!(
            "{:<9} {:>10} {:>10} {:>10} {:>12}  {:>14}",
            d.name(),
            f(Phase::ParTrim),
            f(Phase::ParFwbw),
            f(Phase::ParTrim2),
            f(Phase::RecurFwbw),
            report.initial_tasks,
        );
    }
    println!();
    println!("(par-wcc resolves no nodes itself; it re-partitions for phase 2)");
}
