//! # swscc-parallel — parallel runtime substrate
//!
//! The execution machinery underneath the SCC algorithms of `swscc-core`,
//! mirroring §4.3 of the SC'13 paper:
//!
//! * [`workqueue::TwoLevelQueue`] — the paper's custom work queue for
//!   task-level parallelism: a global queue plus per-thread private queues
//!   with batch size `K` (K items fetched when a local queue runs dry, K
//!   items spilled when a local queue reaches 2K). Includes the queue-depth
//!   instrumentation the paper uses in §3.3 ("recorded maximum queue depth
//!   … is only six").
//! * [`bitset::AtomicBitSet`] — the `mark` array (§4.1): lock-free
//!   node-detached flags with a fetch-or claim primitive.
//! * [`frontier::Frontier`] / [`frontier::ClaimSet`] — double-buffered
//!   frontier storage with per-worker chunked gathering and the shared
//!   visited/claim layer; the zero-allocation substrate under every
//!   level-synchronous traversal (§4.2).
//! * [`liveset::LiveSet`] — the dense ↔ sparse live-residue vertex subset:
//!   post-peel kernels iterate it instead of `0..N`, making every sweep
//!   O(|residue|) once the giant SCC is gone (GBBS-style `vertexSubset`).
//! * [`reachtable::ReachTable`] / [`hashbag::HashBag`] — the multi-search
//!   substrate (Wang et al., arXiv 2303.04934): a resizable concurrent
//!   hash set of (vertex, pivot-label) reachability pairs and the blocked
//!   publish/claim frontier bag that carries those pairs between BFS
//!   levels.
//! * [`pool`] — helpers to run a closure inside a rayon pool of an exact
//!   thread count (the paper's thread-count sweep axis in Fig. 6/7).

pub mod bitset;
pub mod frontier;
pub mod hashbag;
pub mod liveset;
pub mod pool;
pub mod reachtable;
pub mod workqueue;

pub use bitset::AtomicBitSet;
pub use frontier::{ClaimSet, Frontier};
pub use hashbag::HashBag;
pub use liveset::{CompactionPolicy, LiveSet};
pub use reachtable::{ReachTable, ReachView};
pub use workqueue::{AbortCause, QueueStats, RunAbort, TwoLevelQueue, Worker};
