//! Fair-cycle detection for model checking via SCCs.
//!
//! The paper's introduction cites formal verification (Hojati et al.,
//! reference \[14\]) as a core SCC application: checking a liveness property
//! "something good happens infinitely often" against a transition system
//! reduces to asking whether the system has a reachable *fair cycle* — a
//! cycle through at least one accepting state. Every cycle lives inside an
//! SCC, so the algorithm is:
//!
//! 1. build the (product) transition graph,
//! 2. find the SCCs with the library,
//! 3. report any reachable, non-trivial SCC containing an accepting state.
//!
//! This example builds a randomized Kripke-structure-like transition
//! system, plants (or omits) a fair cycle, and checks the property both
//! ways.
//!
//! ```text
//! cargo run --release --example model_checking
//! ```

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use swscc::graph::bfs::{bfs_levels, Direction, UNREACHED};
use swscc::{detect_scc, Algorithm, CsrGraph, GraphBuilder, SccConfig};

/// A toy transition system: states, transitions, accepting-state flags,
/// a distinguished initial state 0.
struct TransitionSystem {
    graph: CsrGraph,
    accepting: Vec<bool>,
}

/// Builds a layered random transition system. With `plant_fair_cycle` a
/// loop through an accepting state is wired into a reachable layer.
fn build_system(states: usize, plant_fair_cycle: bool, seed: u64) -> TransitionSystem {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(states);
    // forward-layered random transitions (acyclic => no cycles at all)
    for s in 0..states - 1 {
        let fanout = rng.random_range(1..4usize);
        for _ in 0..fanout {
            let t = rng.random_range(s + 1..states);
            b.add_edge(s as u32, t as u32);
        }
    }
    let mut accepting = vec![false; states];
    for flag in accepting.iter_mut() {
        *flag = rng.random_bool(0.1);
    }
    if plant_fair_cycle {
        // a small reachable loop through an accepting state
        let a = states / 2;
        let bnode = a + 1;
        let c = a + 2;
        let mut gb = b; // re-borrow to keep the builder moves explicit
        gb.add_edge(0, a as u32); // ensure the cycle is reachable
        gb.add_edge(a as u32, bnode as u32);
        gb.add_edge(bnode as u32, c as u32);
        gb.add_edge(c as u32, a as u32);
        accepting[bnode] = true;
        return TransitionSystem {
            graph: gb.build(),
            accepting,
        };
    }
    TransitionSystem {
        graph: b.build(),
        accepting,
    }
}

/// Returns the id of a reachable fair SCC if one exists: non-trivial (or a
/// self-loop state), contains an accepting state, reachable from state 0.
fn find_fair_cycle(ts: &TransitionSystem) -> Option<u32> {
    let (scc, _) = detect_scc(&ts.graph, Algorithm::Method2, &SccConfig::default());
    let reachable = bfs_levels(&ts.graph, 0, Direction::Forward);
    let sizes = scc.component_sizes();
    for (v, &level) in reachable.iter().enumerate() {
        if !ts.accepting[v] || level == UNREACHED {
            continue;
        }
        let c = scc.component(v as u32);
        let nontrivial = sizes[c as usize] > 1 || ts.graph.has_edge(v as u32, v as u32);
        if nontrivial {
            return Some(c);
        }
    }
    None
}

fn main() {
    println!("liveness checking via SCC detection (paper intro, ref. [14])\n");

    let bad = build_system(2000, true, 7);
    println!(
        "system A: {} states, {} transitions (fair cycle planted)",
        bad.graph.num_nodes(),
        bad.graph.num_edges()
    );
    match find_fair_cycle(&bad) {
        Some(c) => {
            let (scc, _) = detect_scc(&bad.graph, Algorithm::Method2, &SccConfig::default());
            println!(
                "  ✗ property VIOLATED: fair cycle in SCC {c} (states {:?})",
                scc.members(c)
            );
        }
        None => println!("  unexpectedly no counterexample!"),
    }

    let good = build_system(2000, false, 7);
    println!(
        "\nsystem B: {} states, {} transitions (acyclic by construction)",
        good.graph.num_nodes(),
        good.graph.num_edges()
    );
    match find_fair_cycle(&good) {
        Some(_) => println!("  unexpected counterexample!"),
        None => println!("  ✓ property HOLDS: no reachable fair cycle"),
    }

    // sanity: both outcomes as expected
    assert!(find_fair_cycle(&bad).is_some());
    assert!(find_fair_cycle(&good).is_none());
    println!("\nboth verdicts verified ✓");
}
