//! Concurrent reachability table: a resizable open-addressing hash set of
//! `(vertex, pivot-label)` pairs.
//!
//! This is the reach-set substrate of multi-search SCC (Wang et al.,
//! arXiv 2303.04934): one forward and one backward table per round, each
//! answering "has vertex `v` been reached from pivot `label`?". The table
//! is insert-only for the lifetime of a round — there is no deletion —
//! which keeps the concurrent protocol small:
//!
//! * **Slots** are `AtomicU64`s holding a packed `(vertex, label)` key or
//!   the `EMPTY` sentinel. A slot is claimed exactly once by a
//!   compare-exchange from `EMPTY`; the key never changes afterwards, so
//!   a reader that sees a non-empty slot sees its final value.
//! * **Resizing** hides behind an `RwLock<Vec<AtomicU64>>`: inserts and
//!   lookups probe under the read lock; growth takes the write lock,
//!   re-checks, and rehashes into a doubled array. Lock acquisition
//!   orders the rehash after every completed insert, so no claimed key
//!   is lost.
//! * The **occupancy counter** is a plain statistic used for the
//!   load-factor heuristic; the probe loop has its own full-table bound,
//!   so a momentarily stale counter can only delay growth, never corrupt
//!   the table.
//!
//! Load factor is kept at or below 1/2 (plus a transient per-thread
//! overshoot absorbed by the probe bound), so linear probes stay short.

use swscc_sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use swscc_sync::{RwLock, RwLockReadGuard};

/// Sentinel for an unclaimed slot. `pack` never produces this value
/// because labels are bounded below `u32::MAX` (they index a pivot batch).
const EMPTY: u64 = u64::MAX;

/// Smallest slot array. Leaves at least half the table free even when a
/// full complement of workers overshoots the load-factor check at once.
const MIN_CAPACITY: usize = 64;

#[inline]
fn pack(vertex: u32, label: u32) -> u64 {
    debug_assert!(label != u32::MAX, "label u32::MAX collides with EMPTY");
    (u64::from(vertex) << 32) | u64::from(label)
}

#[inline]
fn unpack(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

/// Finalizer of splitmix64 — enough avalanche that sequential vertex ids
/// with small labels spread across the whole slot array.
#[inline]
fn mix(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A concurrent, resizable hash set of `(vertex, label)` reachability
/// pairs. See the module docs for the protocol.
pub struct ReachTable {
    slots: RwLock<Vec<AtomicU64>>,
    /// Occupancy statistic driving the load-factor heuristic.
    items: AtomicUsize,
}

/// A read-locked probe handle over a [`ReachTable`]; see
/// [`ReachTable::view`] for the locking contract.
pub struct ReachView<'t> {
    slots: RwLockReadGuard<'t, Vec<AtomicU64>>,
}

impl ReachView<'_> {
    /// Same visibility contract as [`ReachTable::contains`], without the
    /// per-call lock acquisition.
    pub fn contains(&self, vertex: u32, label: u32) -> bool {
        probe(&self.slots, pack(vertex, label))
    }
}

/// Linear-probe membership test over a pinned slot array.
fn probe(slots: &[AtomicU64], key: u64) -> bool {
    let mask = slots.len() - 1;
    let mut idx = (mix(key) as usize) & mask;
    for _ in 0..slots.len() {
        // ordering: a slot transitions EMPTY→key exactly once (see
        // insert); completeness comes from the caller's join, not this
        // load.
        match slots[idx].load(Ordering::Relaxed) {
            k if k == key => return true,
            EMPTY => return false,
            _ => idx = (idx + 1) & mask,
        }
    }
    false
}

impl ReachTable {
    /// An empty table pre-sized for about `expected` pairs (capacity is
    /// rounded up so the expected fill stays at or below half).
    pub fn with_capacity(expected: usize) -> Self {
        let cap = expected
            .saturating_mul(2)
            .next_power_of_two()
            .max(MIN_CAPACITY);
        ReachTable {
            slots: RwLock::new(Self::alloc(cap)),
            items: AtomicUsize::new(0),
        }
    }

    fn alloc(cap: usize) -> Vec<AtomicU64> {
        (0..cap).map(|_| AtomicU64::new(EMPTY)).collect()
    }

    /// Number of distinct pairs inserted so far. Exact once every
    /// inserting thread has been joined.
    pub fn len(&self) -> usize {
        // ordering: statistic — exactness across threads comes from the
        // caller joining its workers, not from this load.
        self.items.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current slot-array size (a power of two). Exposed for tests that
    /// assert growth actually happened.
    pub fn capacity(&self) -> usize {
        self.slots.read().len()
    }

    /// Inserts the pair, returning `true` iff it was newly added. Among
    /// all threads racing to insert the same `(vertex, label)` pair,
    /// exactly one receives `true`.
    pub fn insert(&self, vertex: u32, label: u32) -> bool {
        let key = pack(vertex, label);
        loop {
            {
                let slots = self.slots.read();
                let cap = slots.len();
                // Heuristic growth trigger: keep fill ≤ 1/2. Races here
                // only overshoot by the number of concurrent inserters,
                // which MIN_CAPACITY leaves slack for; the probe bound
                // below is the hard backstop.
                // ordering: statistic read for the heuristic only —
                // correctness is carried by the CAS on the slot itself.
                if (self.items.load(Ordering::Relaxed) + 1) * 2 > cap {
                    drop(slots);
                    self.grow();
                    continue;
                }
                let mask = cap - 1;
                let mut idx = (mix(key) as usize) & mask;
                let mut probes = 0usize;
                loop {
                    let slot = &slots[idx];
                    // ordering: a slot transitions EMPTY→key exactly once
                    // and the packed key is the entire message; a stale
                    // EMPTY read is corrected by the CAS below, and the
                    // consumers that need cross-thread completeness
                    // (resolve, dense sweeps) run after a thread join.
                    let cur = slot.load(Ordering::Relaxed);
                    if cur == key {
                        return false;
                    }
                    if cur == EMPTY {
                        match slot.compare_exchange(
                            EMPTY,
                            key,
                            // ordering: the claim is the RMW itself;
                            // publication to other threads rides the
                            // RwLock / join edges described above.
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => {
                                // ordering: occupancy statistic (see len).
                                self.items.fetch_add(1, Ordering::Relaxed);
                                return true;
                            }
                            Err(found) if found == key => return false,
                            Err(_) => {} // lost the slot to another key: keep probing
                        }
                    }
                    idx = (idx + 1) & mask;
                    probes += 1;
                    if probes >= cap {
                        // Table effectively full despite the heuristic
                        // (pathological overshoot): force growth.
                        break;
                    }
                }
            }
            self.grow();
        }
    }

    /// Whether the pair is present. Complete with respect to all inserts
    /// that happened-before this call (e.g. after joining the inserting
    /// workers); concurrent inserts may or may not be visible.
    pub fn contains(&self, vertex: u32, label: u32) -> bool {
        probe(&self.slots.read(), pack(vertex, label))
    }

    /// A read-locked view for probe-heavy loops: one lock acquisition
    /// amortized over any number of [`ReachView::contains`] calls (the
    /// per-call read lock in [`contains`](Self::contains) dominates a
    /// dense bottom-up sweep otherwise).
    ///
    /// The view pins the current slot array, so growth (and therefore any
    /// `insert` that triggers it) blocks until the view drops — callers
    /// MUST NOT insert into the same table while holding its view, or
    /// they deadlock behind a queued writer. Probe, drop the view, then
    /// insert.
    pub fn view(&self) -> ReachView<'_> {
        ReachView {
            slots: self.slots.read(),
        }
    }

    /// Doubles the slot array (write lock; re-checks under the lock so
    /// concurrent growers don't double twice for one trigger).
    fn grow(&self) {
        let mut slots = self.slots.write();
        // ordering: the write lock is exclusive and synchronizes with
        // every released read guard, so this load sees all completed
        // inserts.
        let needed = (self.items.load(Ordering::Relaxed) + 1)
            .saturating_mul(2)
            .next_power_of_two()
            .max(MIN_CAPACITY);
        if slots.len() >= needed && {
            // A probe-bound trigger can fire below the heuristic
            // threshold only when the array is truly full; re-verify so
            // spurious callers become no-ops once another thread grew.
            let occupied = slots
                .iter()
                // ordering: exclusive access under the write lock.
                .filter(|s| s.load(Ordering::Relaxed) != EMPTY)
                .count();
            (occupied + 1) * 2 <= slots.len()
        } {
            return;
        }
        let new_cap = slots.len().max(needed).saturating_mul(2);
        let new = Self::alloc(new_cap);
        let mask = new_cap - 1;
        for slot in slots.iter() {
            // ordering: exclusive access under the write lock.
            let key = slot.load(Ordering::Relaxed);
            if key == EMPTY {
                continue;
            }
            let mut idx = (mix(key) as usize) & mask;
            // ordering: `new` is thread-local until the write guard drops.
            while new[idx].load(Ordering::Relaxed) != EMPTY {
                idx = (idx + 1) & mask;
            }
            new[idx].store(key, Ordering::Relaxed);
        }
        *slots = new;
    }

    /// Snapshot of every stored pair, in slot order. Complete with
    /// respect to inserts that happened-before the call.
    pub fn pairs(&self) -> Vec<(u32, u32)> {
        let slots = self.slots.read();
        let mut out = Vec::with_capacity(self.len());
        for slot in slots.iter() {
            // ordering: single-transition slot; completeness from the
            // caller's join as in contains.
            let key = slot.load(Ordering::Relaxed);
            if key != EMPTY {
                out.push(unpack(key));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_round_trips() {
        for &(v, l) in &[(0u32, 0u32), (7, 3), (u32::MAX, 0), (12345, 678)] {
            assert_eq!(unpack(pack(v, l)), (v, l));
        }
    }

    #[test]
    fn insert_contains_len() {
        let t = ReachTable::with_capacity(4);
        assert!(t.is_empty());
        assert!(t.insert(5, 1));
        assert!(!t.insert(5, 1), "duplicate must report not-new");
        assert!(t.insert(5, 2), "same vertex, different label is distinct");
        assert!(t.insert(6, 1));
        assert_eq!(t.len(), 3);
        assert!(t.contains(5, 1));
        assert!(t.contains(5, 2));
        assert!(!t.contains(6, 2));
        let mut pairs = t.pairs();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(5, 1), (5, 2), (6, 1)]);
    }

    #[test]
    fn view_matches_contains() {
        let t = ReachTable::with_capacity(8);
        for v in 0..100u32 {
            t.insert(v, v % 5);
        }
        let view = t.view();
        for v in 0..100u32 {
            assert!(view.contains(v, v % 5));
            assert!(!view.contains(v, (v % 5) + 1));
        }
    }

    #[test]
    fn sequential_growth_preserves_contents() {
        let t = ReachTable::with_capacity(1);
        let start_cap = t.capacity();
        for v in 0..10_000u32 {
            assert!(t.insert(v, v % 7));
        }
        assert_eq!(t.len(), 10_000);
        assert!(t.capacity() > start_cap, "growth must have happened");
        for v in 0..10_000u32 {
            assert!(t.contains(v, v % 7));
            assert!(!t.contains(v, (v % 7) + 1));
        }
    }
}
