//! Two-level work queue for task-level parallelism (§4.3 of the paper).
//!
//! > "our custom work queue implementation … is composed of two levels of
//! > queues: a global queue and per-thread private queues. Initially, each
//! > thread fetches up to K work items from the global queue into its local
//! > queue; whenever the local queue becomes empty, more work is fetched
//! > from the global queue. Each newly generated work item goes to a local
//! > queue first. When the size of a local queue grows to 2K, K items are
//! > moved to the global queue."
//!
//! The paper sets `K = 1` for the Baseline and Method 1 (task-starved) and
//! `K = 8` for Method 2. Termination: a worker exits when the global queue
//! is empty *and* no task is in flight anywhere (an in-flight task may
//! still spawn new ones).
//!
//! [`QueueStats`] records the instrumentation §3.3 relies on: the maximum
//! global-queue depth and the total number of tasks executed — the numbers
//! behind "the recorded maximum queue depth with single threaded execution
//! is only six" and "about 10,000 work items in the queue".

use std::collections::VecDeque;
use swscc_sync::atomic::{AtomicUsize, Ordering};
use swscc_sync::Mutex;

/// Counters captured while a [`TwoLevelQueue`] drains.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// High-watermark of the global queue length.
    pub max_global_depth: usize,
    /// High-watermark of queued-plus-running tasks (total outstanding work).
    pub max_outstanding: usize,
    /// Total tasks executed.
    pub tasks_executed: usize,
}

/// The shared two-level work queue. `T` is the task type.
///
/// Seed tasks go in with [`TwoLevelQueue::push_global`]; then
/// [`TwoLevelQueue::run`] drains the queue with `num_threads` workers, each
/// of which may push follow-on tasks through its [`Worker`] handle.
///
/// # Examples
///
/// ```
/// use swscc_parallel::TwoLevelQueue;
/// use swscc_sync::atomic::{AtomicUsize, Ordering};
///
/// // Count down a tree: each task n spawns tasks n-1 and n-2.
/// let q = TwoLevelQueue::new(4);
/// q.push_global(10u32);
/// let executed = AtomicUsize::new(0);
/// let stats = q.run(2, |n, worker| {
///     executed.fetch_add(1, Ordering::Relaxed);
///     if n >= 2 {
///         worker.push(n - 1);
///         worker.push(n - 2);
///     }
/// });
/// assert_eq!(stats.tasks_executed, executed.load(Ordering::Relaxed));
/// ```
pub struct TwoLevelQueue<T> {
    global: Mutex<VecDeque<T>>,
    /// Tasks queued (global or local) plus tasks currently being processed.
    outstanding: AtomicUsize,
    k: usize,
    max_global_depth: AtomicUsize,
    max_outstanding: AtomicUsize,
    tasks_executed: AtomicUsize,
}

impl<T: Send> TwoLevelQueue<T> {
    /// Creates a queue with local-batch parameter `K >= 1`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "K must be at least 1");
        TwoLevelQueue {
            global: Mutex::new(VecDeque::new()),
            outstanding: AtomicUsize::new(0),
            k,
            max_global_depth: AtomicUsize::new(0),
            max_outstanding: AtomicUsize::new(0),
            tasks_executed: AtomicUsize::new(0),
        }
    }

    /// The configured batch parameter K.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Pushes a seed task onto the global queue (usable before or during a
    /// run; workers also reach this through [`Worker::push`] spills).
    pub fn push_global(&self, task: T) {
        // ordering: Relaxed is sufficient for the increment. Termination
        // correctness rests on RMW atomicity (the counter can never skip
        // a pending task: every task is counted before it is enqueued,
        // and its decrement is sequenced after the handler returns), not
        // on publication — the task payload itself is published by the
        // global-queue Mutex, and handler side effects are published by
        // the Release decrement / Acquire termination-load pair in
        // `work_loop`. Verified by the model battery's termination test.
        self.note_outstanding(self.outstanding.fetch_add(1, Ordering::Relaxed) + 1);
        let mut g = self.global.lock();
        g.push_back(task);
        self.note_global_depth(g.len());
    }

    /// Drains the queue with `num_threads` workers running `handler`.
    /// Returns the run's [`QueueStats`]. Tasks pushed by the handler are
    /// processed in the same run. The queue can be reused afterwards.
    pub fn run<F>(&self, num_threads: usize, handler: F) -> QueueStats
    where
        F: Fn(T, &mut Worker<'_, T>) + Sync,
    {
        assert!(num_threads >= 1);
        swscc_sync::thread::scope(|s| {
            for _ in 0..num_threads {
                s.spawn(|| {
                    let mut w = Worker {
                        queue: self,
                        local: VecDeque::new(),
                    };
                    w.work_loop(&handler);
                });
            }
        });
        // ordering: Relaxed loads are safe — the scope join above
        // happens-after every worker's counter updates.
        QueueStats {
            max_global_depth: self.max_global_depth.load(Ordering::Relaxed),
            max_outstanding: self.max_outstanding.load(Ordering::Relaxed),
            tasks_executed: self.tasks_executed.load(Ordering::Relaxed),
        }
    }

    /// Resets the recorded statistics (outstanding work must be zero).
    pub fn reset_stats(&self) {
        // ordering: Relaxed — callers only reset between runs, with the
        // previous run's scope join providing the synchronization.
        debug_assert_eq!(self.outstanding.load(Ordering::Relaxed), 0);
        self.max_global_depth.store(0, Ordering::Relaxed);
        self.max_outstanding.store(0, Ordering::Relaxed);
        self.tasks_executed.store(0, Ordering::Relaxed);
    }

    fn note_global_depth(&self, depth: usize) {
        // ordering: Relaxed — monotone stats high-watermark, read only
        // after the run's scope join.
        self.max_global_depth.fetch_max(depth, Ordering::Relaxed);
    }

    fn note_outstanding(&self, n: usize) {
        // ordering: Relaxed — monotone stats high-watermark, read only
        // after the run's scope join.
        self.max_outstanding.fetch_max(n, Ordering::Relaxed);
    }

    /// Pops up to `k` tasks from the global queue.
    fn fetch_batch(&self, into: &mut VecDeque<T>) -> usize {
        let mut g = self.global.lock();
        let take = self.k.min(g.len());
        for _ in 0..take {
            // drain from the front: FIFO across batches
            into.push_back(g.pop_front().expect("len checked"));
        }
        take
    }

    /// Moves `k` tasks from a full local queue to the global queue.
    fn spill(&self, from: &mut VecDeque<T>) {
        let mut g = self.global.lock();
        for _ in 0..self.k {
            if let Some(t) = from.pop_front() {
                g.push_back(t);
            }
        }
        self.note_global_depth(g.len());
    }
}

/// A worker's view of the queue: its private local deque plus a handle to
/// the shared global queue. Passed to the task handler so it can enqueue
/// follow-on tasks (paper: "each newly generated work item goes to a local
/// queue first").
pub struct Worker<'q, T> {
    queue: &'q TwoLevelQueue<T>,
    local: VecDeque<T>,
}

impl<'q, T: Send> Worker<'q, T> {
    /// Enqueues a follow-on task. Goes to this worker's local queue; if the
    /// local queue reaches 2K, K items spill to the global queue.
    pub fn push(&mut self, task: T) {
        // ordering: Relaxed — same argument as `push_global`: counting
        // is carried by RMW atomicity, publication by the queue Mutex and
        // the Release/Acquire termination pair.
        self.queue
            .note_outstanding(self.queue.outstanding.fetch_add(1, Ordering::Relaxed) + 1);
        self.local.push_back(task);
        if self.local.len() >= 2 * self.queue.k {
            self.queue.spill(&mut self.local);
        }
    }

    /// Number of tasks currently in this worker's local queue.
    pub fn local_len(&self) -> usize {
        self.local.len()
    }

    fn work_loop<F>(&mut self, handler: &F)
    where
        F: Fn(T, &mut Worker<'_, T>) + Sync,
    {
        let mut spin = 0u32;
        loop {
            let task = match self.local.pop_front() {
                Some(t) => Some(t),
                None => {
                    if self.queue.fetch_batch(&mut self.local) > 0 {
                        self.local.pop_front()
                    } else {
                        None
                    }
                }
            };
            match task {
                Some(t) => {
                    spin = 0;
                    handler(t, self);
                    // ordering: Relaxed — stats counter, read after join.
                    self.queue.tasks_executed.fetch_add(1, Ordering::Relaxed);
                    // Release pairs with the Acquire termination load below:
                    // a worker that observes outstanding == 0 must also
                    // observe every finished handler's side effects.
                    self.queue.outstanding.fetch_sub(1, Ordering::Release);
                }
                None => {
                    // Global queue empty. If nothing is outstanding anywhere
                    // the run is over; otherwise another worker may still
                    // spawn tasks — back off and re-check. Bounded
                    // exponential backoff: a few busy spins, then yields,
                    // then short parks capped at ~128µs, so idle workers
                    // stop burning a core while one straggler drains a deep
                    // recursion.
                    if self.queue.outstanding.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    spin += 1;
                    if spin <= 16 {
                        swscc_sync::hint::spin_loop();
                    } else if spin <= 32 {
                        swscc_sync::thread::yield_now();
                    } else {
                        let exp = (spin - 32).min(7); // 1µs .. 128µs
                        swscc_sync::thread::sleep(std::time::Duration::from_micros(1 << exp));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_task_single_thread() {
        let q = TwoLevelQueue::new(1);
        q.push_global(42u32);
        let seen = AtomicUsize::new(0);
        let stats = q.run(1, |t, _| {
            assert_eq!(t, 42);
            seen.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 1);
        assert_eq!(stats.tasks_executed, 1);
        assert_eq!(stats.max_global_depth, 1);
    }

    #[test]
    fn fibonacci_tree_spawning() {
        // Task n spawns n-1 and n-2; total tasks = 2*fib(n+1) - 1.
        for threads in [1, 2, 4] {
            let q = TwoLevelQueue::new(2);
            q.push_global(12u64);
            let sum = AtomicUsize::new(0);
            let stats = q.run(threads, |n, w| {
                if n < 2 {
                    sum.fetch_add(n as usize, Ordering::Relaxed);
                } else {
                    w.push(n - 1);
                    w.push(n - 2);
                }
            });
            // leaves of the fib call tree sum to fib(12) = 144
            assert_eq!(sum.load(Ordering::Relaxed), 144, "threads={threads}");
            assert!(stats.tasks_executed > 100);
        }
    }

    #[test]
    fn all_tasks_processed_exactly_once() {
        let q = TwoLevelQueue::new(8);
        // Miri runs the same protocol, just fewer tasks (interpreter speed).
        let n = if cfg!(miri) { 256 } else { 10_000usize };
        let flags: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        for i in 0..n {
            q.push_global(i);
        }
        q.run(4, |i, _| {
            flags[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn spill_keeps_tasks_visible_to_other_workers() {
        // One producer task fans out 1000 children with K=4; with 4 workers
        // every child must still execute.
        let q = TwoLevelQueue::new(4);
        q.push_global(usize::MAX);
        let count = AtomicUsize::new(0);
        let stats = q.run(4, |t, w| {
            if t == usize::MAX {
                for i in 0..1000 {
                    w.push(i);
                }
            } else {
                count.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert_eq!(stats.tasks_executed, 1001);
        assert!(stats.max_outstanding <= 1001);
        assert!(stats.max_global_depth >= 4, "spills must hit global queue");
    }

    #[test]
    fn queue_reusable_after_run() {
        let q = TwoLevelQueue::new(1);
        q.push_global(1u32);
        q.run(2, |_, _| {});
        q.reset_stats();
        q.push_global(2u32);
        let stats = q.run(2, |_, _| {});
        assert_eq!(stats.tasks_executed, 1);
    }

    #[test]
    fn empty_run_terminates() {
        let q: TwoLevelQueue<u32> = TwoLevelQueue::new(1);
        let stats = q.run(3, |_, _| {});
        assert_eq!(stats.tasks_executed, 0);
    }

    #[test]
    #[should_panic(expected = "K must be at least 1")]
    fn zero_k_panics() {
        let _: TwoLevelQueue<u32> = TwoLevelQueue::new(0);
    }

    #[test]
    fn max_outstanding_tracks_high_water() {
        let q = TwoLevelQueue::new(64);
        for i in 0..100u32 {
            q.push_global(i);
        }
        let stats = q.run(1, |_, _| {});
        assert_eq!(stats.max_outstanding, 100);
        assert_eq!(stats.max_global_depth, 100);
    }

    #[test]
    fn stress_many_threads_random_spawning() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let q = TwoLevelQueue::new(8);
        for i in 0..64u64 {
            q.push_global((i, 3u32));
        }
        let executed = AtomicUsize::new(0);
        q.run(8, |(seed, depth), w| {
            executed.fetch_add(1, Ordering::Relaxed);
            if depth > 0 {
                let mut rng = SmallRng::seed_from_u64(seed);
                for j in 0..rng.random_range(0..4u64) {
                    w.push((seed.wrapping_mul(31).wrapping_add(j), depth - 1));
                }
            }
        });
        assert!(executed.load(Ordering::Relaxed) >= 64);
    }
}
