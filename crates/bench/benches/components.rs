//! Criterion microbenchmarks: individual algorithm kernels.
//!
//! Times Par-Trim, Par-Trim2, Par-WCC, the Par-FWBW peel, and the BFS
//! primitive in isolation, each on a fresh state over the LiveJournal
//! analog — the per-phase costs that Fig. 7 stacks. The `residue_sweep`
//! group isolates the live-residue subset win: the same kernels on a
//! post-peel residue, dense full sweep vs compacted live set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use swscc_core::fwbw::parallel::par_fwbw;
use swscc_core::state::{AlgoState, INITIAL_COLOR};
use swscc_core::trim::{par_trim, par_trim_sweeping};
use swscc_core::trim2::par_trim2;
use swscc_core::wcc::par_wcc;
use swscc_core::{CompactionPolicy, SccConfig};
use swscc_graph::bfs::{bfs_levels, par_bfs_levels, Direction};
use swscc_graph::datasets::Dataset;
use swscc_parallel::pool::with_pool;

fn bench_kernels(c: &mut Criterion) {
    let g = Dataset::Livej.generate(0.05, 42);
    let cfg = SccConfig::with_threads(2);
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(g.num_edges() as u64));

    group.bench_function("par-trim", |b| {
        b.iter(|| {
            let state = AlgoState::new(&g);
            black_box(par_trim(&state))
        })
    });

    group.bench_function("par-trim-sweeping", |b| {
        b.iter(|| {
            let state = AlgoState::new(&g);
            black_box(par_trim_sweeping(&state))
        })
    });

    group.bench_function("par-trim2", |b| {
        b.iter(|| {
            let state = AlgoState::new(&g);
            black_box(par_trim2(&state))
        })
    });

    group.bench_function("par-fwbw-peel", |b| {
        b.iter(|| {
            let state = AlgoState::new(&g);
            black_box(par_fwbw(&state, &cfg, INITIAL_COLOR).resolved)
        })
    });

    group.bench_function("par-wcc-after-peel", |b| {
        b.iter(|| {
            let state = AlgoState::new(&g);
            par_trim(&state);
            par_fwbw(&state, &cfg, INITIAL_COLOR);
            black_box(par_wcc(&state).groups.len())
        })
    });

    group.finish();
}

/// Builds a post-peel residue: trim, one FW-BW peel, then Trim/Trim2 to a
/// fixed point so every benched kernel below is a pure sweep (no further
/// resolutions — re-running it measures only scan cost).
fn residue_state(g: &swscc_graph::CsrGraph) -> AlgoState<'_> {
    let cfg = SccConfig::with_threads(2);
    let state = AlgoState::new(g);
    with_pool(2, || {
        par_trim(&state);
        par_fwbw(&state, &cfg, INITIAL_COLOR);
        loop {
            let a = par_trim(&state);
            let b = par_trim2(&state);
            if a == 0 && b == 0 {
                break;
            }
        }
    });
    state
}

/// Full-sweep (dense, `Never`) vs live-set (compacted) Trim, Trim2, and WCC
/// on the same post-peel residue at 1/2/4 threads. The residue is ~1-5% of
/// the graph, so the dense variants pay O(N) per sweep for O(|residue|)
/// useful work.
fn bench_residue_sweep(c: &mut Criterion) {
    // Larger than the kernels group: the sweep gap only shows once the
    // dense O(N) scan dwarfs per-round pool dispatch overhead.
    let g = Dataset::Livej.generate(0.5, 42);
    let dense = residue_state(&g);
    let sparse = residue_state(&g);
    sparse.compact_live(CompactionPolicy::Always);
    assert!(!dense.live().is_sparse() && sparse.live().is_sparse());
    assert_eq!(dense.count_alive(), sparse.count_alive());
    eprintln!(
        "residue_sweep: residue {} of {} nodes ({:.2}%)",
        dense.count_alive(),
        g.num_nodes(),
        100.0 * dense.count_alive() as f64 / g.num_nodes() as f64
    );

    let mut group = c.benchmark_group("residue_sweep");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        for (mode, state) in [("full", &dense), ("live", &sparse)] {
            group.bench_function(BenchmarkId::new(format!("trim-{mode}"), threads), |b| {
                with_pool(threads, || b.iter(|| black_box(par_trim(state))))
            });
            group.bench_function(BenchmarkId::new(format!("trim2-{mode}"), threads), |b| {
                with_pool(threads, || b.iter(|| black_box(par_trim2(state))))
            });
            group.bench_function(BenchmarkId::new(format!("wcc-{mode}"), threads), |b| {
                with_pool(threads, || {
                    b.iter(|| black_box(par_wcc(state).groups.len()))
                })
            });
        }
    }
    group.finish();
}

fn bench_bfs(c: &mut Criterion) {
    let g = Dataset::Livej.generate(0.05, 42);
    let mut group = c.benchmark_group("bfs");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(g.num_edges() as u64));
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(bfs_levels(&g, 0, Direction::Forward).len()))
    });
    group.bench_function("parallel", |b| {
        b.iter(|| black_box(par_bfs_levels(&g, 0, Direction::Forward).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_residue_sweep, bench_bfs);
criterion_main!(benches);
