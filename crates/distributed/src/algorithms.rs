//! Distributed (BSP) versions of the paper's neighbor-local kernels, and
//! the full pipeline combining them.
//!
//! Everything here follows the §6 observation that the paper's extensions
//! "only require data from direct neighbors": every kernel is expressed as
//! messages between node owners —
//!
//! * **Trim** (Alg. 4): a degree census (one message per edge endpoint)
//!   followed by decrement notifications as nodes resolve;
//! * **FW/BW reachability** (§3.2): visit waves;
//! * **WCC** (Alg. 7): min-label gossip within color classes.
//!
//! Per-node state (color, component, degree counters, label) is written
//! only by the node's owning worker; remote information arrives only in
//! messages. The coordinator (the thread between BSP runs) performs the
//! global decisions the paper's shared-memory code makes implicitly:
//! pivot reduction, trial accounting, and the final residual gather.

// graphview(file): the BSP simulation partitions raw CSR rows across
// owners — each worker walks exactly its partition's neighbor slices to
// emit messages, so this module is bound to the raw backend by design.

use crate::bsp::{run_supersteps, BspStats, Outbox};
use crate::partition::Partition;
use swscc_core::tarjan::tarjan_scc;
use swscc_core::SccResult;
use swscc_graph::bfs::Direction;
use swscc_graph::{CsrGraph, NodeId};
use swscc_sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use swscc_sync::Mutex;

const DONE: u64 = u64::MAX;
const INITIAL: u64 = 0;
/// Safety cap on supersteps per BSP run (quiescence normally ends runs
/// long before; only a bug would reach this).
const MAX_SUPERSTEPS: usize = 1_000_000;

/// Shared run state. Per-node entries are written only by the owning
/// worker during supersteps (the atomics exist to make that discipline
/// expressible in safe Rust, not for cross-worker synchronization).
pub(crate) struct DistState<'g> {
    g: &'g CsrGraph,
    part: Partition,
    color: Vec<AtomicU64>,
    comp: Vec<AtomicU32>,
    next_comp: AtomicU32,
    next_color: AtomicU64,
}

impl<'g> DistState<'g> {
    fn new(g: &'g CsrGraph, num_workers: usize) -> Self {
        let n = g.num_nodes();
        let mut color = Vec::with_capacity(n);
        color.resize_with(n, || AtomicU64::new(INITIAL));
        let mut comp = Vec::with_capacity(n);
        comp.resize_with(n, || AtomicU32::new(u32::MAX));
        DistState {
            g,
            part: Partition::new(n, num_workers),
            color,
            comp,
            next_comp: AtomicU32::new(0),
            next_color: AtomicU64::new(1),
        }
    }

    #[inline]
    fn color(&self, v: NodeId) -> u64 {
        // ordering: owner-computes discipline — within a superstep only
        // `v`'s owning worker writes this slot, so an owner's read never
        // races; a *remote* read is only ever a message-avoidance hint
        // that the owner re-checks on receipt. Cross-superstep
        // publication is the BSP barrier (scope join in run_supersteps).
        self.color[v as usize].load(Ordering::Relaxed)
    }

    #[inline]
    fn set_color(&self, v: NodeId, c: u64) {
        // ordering: owner-only write, published by the superstep barrier
        // (see `color`).
        self.color[v as usize].store(c, Ordering::Relaxed);
    }

    #[inline]
    fn alive(&self, v: NodeId) -> bool {
        self.color(v) != DONE
    }

    fn resolve(&self, v: NodeId, comp: u32) {
        debug_assert!(self.alive(v));
        // ordering: owner-only write; the final assignment pass reads
        // `comp` after the last superstep's join.
        self.comp[v as usize].store(comp, Ordering::Relaxed);
        self.set_color(v, DONE);
    }

    fn alloc_comp(&self) -> u32 {
        // ordering: unique-id allocator — uniqueness is RMW atomicity.
        self.next_comp.fetch_add(1, Ordering::Relaxed)
    }

    fn alloc_color(&self) -> u64 {
        // ordering: unique-id allocator — uniqueness is RMW atomicity.
        self.next_color.fetch_add(1, Ordering::Relaxed)
    }

    fn count_alive(&self) -> usize {
        (0..self.g.num_nodes() as NodeId)
            .filter(|&v| self.alive(v))
            .count()
    }
}

// ---------------------------------------------------------------------------
// Distributed Trim
// ---------------------------------------------------------------------------

/// Messages of the distributed Trim protocol.
#[derive(Clone, Copy, Debug)]
enum TrimMsg {
    /// Kick-off marker (superstep 0 census trigger).
    Kick,
    /// "I am your in-neighbor and my color is `color`."
    CensusIn { dst: NodeId, color: u64 },
    /// "I am your out-neighbor and my color is `color`."
    CensusOut { dst: NodeId, color: u64 },
    /// "Your in-neighbor of color `color` resolved; decrement."
    DecrIn { dst: NodeId, color: u64 },
    /// "Your out-neighbor of color `color` resolved; decrement."
    DecrOut { dst: NodeId, color: u64 },
}

/// Per-worker Trim scratch: effective degrees of owned nodes.
struct TrimScratch {
    eff_in: Vec<u32>,
    eff_out: Vec<u32>,
}

/// Distributed Par-Trim (Alg. 4): resolves size-1 SCCs to fixpoint.
/// Returns (nodes resolved, BSP statistics).
pub(crate) fn dist_trim(state: &DistState<'_>) -> (usize, BspStats) {
    let p = state.part.num_workers();
    let resolved = AtomicUsize::new(0);
    let scratch: Vec<Mutex<TrimScratch>> = (0..p)
        .map(|w| {
            let len = state.part.range(w).len();
            Mutex::new(TrimScratch {
                eff_in: vec![0; len],
                eff_out: vec![0; len],
            })
        })
        .collect();

    let trim_owned = |w: usize, sc: &mut TrimScratch, out: &mut Outbox<TrimMsg>| {
        // Resolve every owned node whose effective degree reached zero,
        // cascading within this worker's block in the same superstep.
        let range = state.part.range(w);
        let base = range.start;
        let mut frontier: Vec<NodeId> = range
            .clone()
            .filter(|&v| {
                state.alive(v)
                    && (sc.eff_in[(v - base) as usize] == 0 || sc.eff_out[(v - base) as usize] == 0)
            })
            .collect();
        while let Some(v) = frontier.pop() {
            if !state.alive(v) {
                continue;
            }
            let li = (v - base) as usize;
            if sc.eff_in[li] != 0 && sc.eff_out[li] != 0 {
                continue;
            }
            let cv = state.color(v);
            state.resolve(v, state.alloc_comp());
            // ordering: statistic counter — exact by RMW atomicity, read
            // after the superstep joins.
            resolved.fetch_add(1, Ordering::Relaxed);
            for &nbr in state.g.out_neighbors(v) {
                if nbr == v {
                    continue;
                }
                if state.part.owner(nbr) == w {
                    if state.alive(nbr) && state.color(nbr) == cv {
                        let nli = (nbr - base) as usize;
                        sc.eff_in[nli] = sc.eff_in[nli].saturating_sub(1);
                        if sc.eff_in[nli] == 0 {
                            frontier.push(nbr);
                        }
                    }
                } else {
                    out.send(
                        state.part.owner(nbr),
                        TrimMsg::DecrIn {
                            dst: nbr,
                            color: cv,
                        },
                    );
                }
            }
            for &nbr in state.g.in_neighbors(v) {
                if nbr == v {
                    continue;
                }
                if state.part.owner(nbr) == w {
                    if state.alive(nbr) && state.color(nbr) == cv {
                        let nli = (nbr - base) as usize;
                        sc.eff_out[nli] = sc.eff_out[nli].saturating_sub(1);
                        if sc.eff_out[nli] == 0 {
                            frontier.push(nbr);
                        }
                    }
                } else {
                    out.send(
                        state.part.owner(nbr),
                        TrimMsg::DecrOut {
                            dst: nbr,
                            color: cv,
                        },
                    );
                }
            }
        }
    };

    let seed: Vec<Vec<TrimMsg>> = (0..p).map(|_| vec![TrimMsg::Kick]).collect();
    let stats = run_supersteps(p, seed, MAX_SUPERSTEPS, |w, step, inbox, out| {
        let mut sc = scratch[w].lock();
        if step == 0 {
            // Census: advertise my color along every *cross-partition*
            // edge (intra-block neighbors are counted locally below —
            // sending to oneself would double-count them).
            for v in state.part.range(w) {
                if !state.alive(v) {
                    continue;
                }
                let cv = state.color(v);
                for &nbr in state.g.out_neighbors(v) {
                    let owner = state.part.owner(nbr);
                    if nbr != v && owner != w {
                        out.send(
                            owner,
                            TrimMsg::CensusIn {
                                dst: nbr,
                                color: cv,
                            },
                        );
                    }
                }
                for &nbr in state.g.in_neighbors(v) {
                    let owner = state.part.owner(nbr);
                    if nbr != v && owner != w {
                        out.send(
                            owner,
                            TrimMsg::CensusOut {
                                dst: nbr,
                                color: cv,
                            },
                        );
                    }
                }
            }
            // Local census needs no messages: count same-block neighbors
            // directly (they are owned, so their colors are readable).
            let range = state.part.range(w);
            let base = range.start;
            for v in range.clone() {
                if !state.alive(v) {
                    continue;
                }
                let cv = state.color(v);
                let li = (v - base) as usize;
                sc.eff_in[li] = state
                    .g
                    .in_neighbors(v)
                    .iter()
                    .filter(|&&u| u != v && state.part.owner(u) == w && state.color(u) == cv)
                    .count() as u32;
                sc.eff_out[li] = state
                    .g
                    .out_neighbors(v)
                    .iter()
                    .filter(|&&u| u != v && state.part.owner(u) == w && state.color(u) == cv)
                    .count() as u32;
            }
            return;
        }
        let range = state.part.range(w);
        let base = range.start;
        for msg in inbox {
            match *msg {
                TrimMsg::Kick => {}
                TrimMsg::CensusIn { dst, color } => {
                    if state.alive(dst) && state.color(dst) == color {
                        sc.eff_in[(dst - base) as usize] += 1;
                    }
                }
                TrimMsg::CensusOut { dst, color } => {
                    if state.alive(dst) && state.color(dst) == color {
                        sc.eff_out[(dst - base) as usize] += 1;
                    }
                }
                TrimMsg::DecrIn { dst, color } => {
                    if state.alive(dst) && state.color(dst) == color {
                        let li = (dst - base) as usize;
                        sc.eff_in[li] = sc.eff_in[li].saturating_sub(1);
                    }
                }
                TrimMsg::DecrOut { dst, color } => {
                    if state.alive(dst) && state.color(dst) == color {
                        let li = (dst - base) as usize;
                        sc.eff_out[li] = sc.eff_out[li].saturating_sub(1);
                    }
                }
            }
        }
        trim_owned(w, &mut sc, out);
    });
    // ordering: read after run_supersteps' final join.
    (resolved.load(Ordering::Relaxed), stats)
}

// ---------------------------------------------------------------------------
// Distributed reachability waves
// ---------------------------------------------------------------------------

/// Forward reachability wave: claims `from -> to` along `dir` starting at
/// `pivot`. Returns (claimed count, stats).
pub(crate) fn dist_reach(
    state: &DistState<'_>,
    pivot: NodeId,
    from: u64,
    to: u64,
    dir: Direction,
) -> (usize, BspStats) {
    let p = state.part.num_workers();
    let claimed = AtomicUsize::new(0);
    let mut seed: Vec<Vec<NodeId>> = (0..p).map(|_| Vec::new()).collect();
    seed[state.part.owner(pivot)].push(pivot);
    let stats = run_supersteps(p, seed, MAX_SUPERSTEPS, |w, _step, inbox, out| {
        // Local wave: expand owned claims within the block immediately;
        // only cross-partition hops cost a superstep.
        let mut stack: Vec<NodeId> = Vec::new();
        for &v in inbox {
            if state.color(v) == from {
                state.set_color(v, to);
                // ordering: statistic counter — exact by RMW atomicity,
                // read after the final superstep join.
                claimed.fetch_add(1, Ordering::Relaxed);
                stack.push(v);
            }
        }
        while let Some(v) = stack.pop() {
            for &nbr in dir.neighbors(state.g, v) {
                let owner = state.part.owner(nbr);
                if owner == w {
                    if state.color(nbr) == from {
                        state.set_color(nbr, to);
                        // ordering: as the counter above.
                        claimed.fetch_add(1, Ordering::Relaxed);
                        stack.push(nbr);
                    }
                } else if state.color(nbr) == from {
                    // Remote color reads are only a *hint* to avoid
                    // redundant messages; the owner re-checks on receipt.
                    out.send(owner, nbr);
                }
            }
        }
    });
    // ordering: read after run_supersteps' final join.
    (claimed.load(Ordering::Relaxed), stats)
}

/// Backward wave of an FW-BW trial: from `pivot` along in-edges, claim
/// `candidate -> bw` and `fw -> scc`. Returns (bw count, scc count, stats).
pub(crate) fn dist_backward(
    state: &DistState<'_>,
    pivot: NodeId,
    candidate: u64,
    fw: u64,
    bw: u64,
    scc: u64,
) -> (usize, usize, BspStats) {
    let p = state.part.num_workers();
    let n_bw = AtomicUsize::new(0);
    let n_scc = AtomicUsize::new(0);
    let mut seed: Vec<Vec<NodeId>> = (0..p).map(|_| Vec::new()).collect();
    seed[state.part.owner(pivot)].push(pivot);
    let stats = run_supersteps(p, seed, MAX_SUPERSTEPS, |w, _step, inbox, out| {
        let claim = |v: NodeId| -> bool {
            let c = state.color(v);
            if c == candidate {
                state.set_color(v, bw);
                // ordering: statistic counters — exact by RMW atomicity,
                // read after the final superstep join.
                n_bw.fetch_add(1, Ordering::Relaxed);
                true
            } else if c == fw {
                state.set_color(v, scc);
                // ordering: as above.
                n_scc.fetch_add(1, Ordering::Relaxed);
                true
            } else {
                false
            }
        };
        let mut stack: Vec<NodeId> = Vec::new();
        for &v in inbox {
            if claim(v) {
                stack.push(v);
            }
        }
        while let Some(v) = stack.pop() {
            for &nbr in state.g.in_neighbors(v) {
                let owner = state.part.owner(nbr);
                if owner == w {
                    if claim(nbr) {
                        stack.push(nbr);
                    }
                } else {
                    let c = state.color(nbr);
                    if c == candidate || c == fw {
                        out.send(owner, nbr);
                    }
                }
            }
        }
    });
    // ordering: reads after run_supersteps' final join.
    (
        n_bw.load(Ordering::Relaxed),
        n_scc.load(Ordering::Relaxed),
        stats,
    )
}

// ---------------------------------------------------------------------------
// Distributed WCC (Alg. 7 as gossip)
// ---------------------------------------------------------------------------

/// One WCC gossip message: "node `dst`, a neighbor of yours in color
/// `color` carries label `label`".
#[derive(Clone, Copy, Debug)]
struct LabelMsg {
    dst: NodeId,
    color: u64,
    label: u32,
}

/// Distributed Par-WCC: min-label gossip among alive nodes within each
/// color class. Returns (number of weak components found, stats).
pub(crate) fn dist_wcc(state: &DistState<'_>) -> (usize, BspStats) {
    let p = state.part.num_workers();
    let n = state.g.num_nodes();
    let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();

    let broadcast = |w: usize, v: NodeId, label: u32, cv: u64, out: &mut Outbox<LabelMsg>| {
        for &nbr in state
            .g
            .out_neighbors(v)
            .iter()
            .chain(state.g.in_neighbors(v))
        {
            if nbr != v {
                let owner = state.part.owner(nbr);
                if owner != w {
                    out.send(
                        owner,
                        LabelMsg {
                            dst: nbr,
                            color: cv,
                            label,
                        },
                    );
                }
            }
        }
    };

    let seed: Vec<Vec<LabelMsg>> = (0..p)
        .map(|_| {
            vec![LabelMsg {
                dst: 0,
                color: 0,
                label: 0,
            }]
        })
        .collect(); // kick-off markers; content ignored in step 0
    let stats = run_supersteps(p, seed, MAX_SUPERSTEPS, |w, step, inbox, out| {
        let range = state.part.range(w);
        if step == 0 {
            // Local convergence first (labels within the block), then
            // advertise across the cut.
            local_label_sweep(state, w, &labels);
            for v in range.clone() {
                if state.alive(v) {
                    broadcast(
                        w,
                        v,
                        // ordering: owner-only label slot (see DistState's
                        // owner-computes note).
                        labels[v as usize].load(Ordering::Relaxed),
                        state.color(v),
                        out,
                    );
                }
            }
            return;
        }
        // Apply incoming labels.
        let mut changed: Vec<NodeId> = Vec::new();
        for m in inbox {
            let v = m.dst;
            if state.alive(v) && state.color(v) == m.color {
                // ordering: owner-only label slot; the incoming value was
                // published by the superstep barrier.
                let cur = labels[v as usize].load(Ordering::Relaxed);
                if m.label < cur {
                    labels[v as usize].store(m.label, Ordering::Relaxed);
                    changed.push(v);
                }
            }
        }
        if changed.is_empty() {
            return;
        }
        // Re-converge locally, then gossip every improved node outward.
        local_label_sweep(state, w, &labels);
        for v in range {
            if state.alive(v) {
                // ordering: owner-only label slot (owner-computes).
                let l = labels[v as usize].load(Ordering::Relaxed);
                if l < v {
                    broadcast(w, v, l, state.color(v), out);
                }
            }
        }
    });

    // Count distinct (color, root-label) pairs among alive nodes.
    // ordering: reads after the final superstep join published all labels.
    let mut roots: Vec<u32> = (0..n as NodeId)
        .filter(|&v| state.alive(v))
        .map(|v| labels[v as usize].load(Ordering::Relaxed))
        .collect();
    roots.sort_unstable();
    roots.dedup();
    (roots.len(), stats)
}

/// In-block min-label propagation to fixpoint (no messages needed: all
/// state owned by worker `w`).
fn local_label_sweep(state: &DistState<'_>, w: usize, labels: &[AtomicU32]) {
    let range = state.part.range(w);
    loop {
        let mut changed = false;
        for v in range.clone() {
            if !state.alive(v) {
                continue;
            }
            let cv = state.color(v);
            // ordering: all slots touched in this sweep belong to worker
            // `w` (owner-computes) — purely local, no concurrent access.
            let mut min = labels[v as usize].load(Ordering::Relaxed);
            for &u in state
                .g
                .out_neighbors(v)
                .iter()
                .chain(state.g.in_neighbors(v))
            {
                // ordering: owner-only slots, as above.
                if u != v && state.part.owner(u) == w && state.alive(u) && state.color(u) == cv {
                    min = min.min(labels[u as usize].load(Ordering::Relaxed));
                }
            }
            if min < labels[v as usize].load(Ordering::Relaxed) {
                labels[v as usize].store(min, Ordering::Relaxed);
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// The full pipeline
// ---------------------------------------------------------------------------

/// Statistics of a [`dist_scc`] run.
#[derive(Clone, Copy, Debug, Default)]
pub struct DistSccReport {
    /// Nodes resolved by the two distributed Trim rounds.
    pub trim_resolved: usize,
    /// Nodes resolved by the distributed FW-BW peel.
    pub peel_resolved: usize,
    /// FW-BW pivot trials.
    pub peel_trials: usize,
    /// Weak components found by the distributed WCC pass.
    pub wcc_groups: usize,
    /// Alive nodes gathered to the coordinator for the sequential finish.
    pub residual_nodes: usize,
    /// Total BSP supersteps across all kernels.
    pub supersteps: usize,
    /// Total messages across all kernels.
    pub messages: usize,
}

impl DistSccReport {
    fn absorb(&mut self, s: BspStats) {
        self.supersteps += s.supersteps;
        self.messages += s.messages;
    }
}

/// Runs the full distributed SCC pipeline on `g` with `num_workers`
/// partitions: Trim → FW-BW giant peel → Trim → WCC → residual gather.
///
/// The result is the exact SCC partition (cross-validated against Tarjan
/// in the tests). `giant_threshold` and `max_trials` follow §3.2 (defaults
/// in [`dist_scc`]: 1% and 5).
pub fn dist_scc_with(
    g: &CsrGraph,
    num_workers: usize,
    giant_threshold: f64,
    max_trials: usize,
) -> (SccResult, DistSccReport) {
    let state = DistState::new(g, num_workers);
    let mut report = DistSccReport::default();
    let n = g.num_nodes();
    if n == 0 {
        return (SccResult::from_assignment(vec![]), report);
    }

    // Phase 1: distributed trim.
    let (t, s) = dist_trim(&state);
    report.trim_resolved += t;
    report.absorb(s);

    // Phase 2: distributed FW-BW peel of the giant SCC.
    let giant_min = ((n as f64) * giant_threshold).ceil() as usize;
    let mut candidate = INITIAL;
    let mut candidate_size = state.count_alive();
    while report.peel_trials < max_trials && candidate_size > 0 {
        // Coordinator-side pivot reduction (max degree product).
        let pivot = (0..n as NodeId)
            .filter(|&v| state.alive(v) && state.color(v) == candidate)
            .max_by_key(|&v| (g.in_degree(v) as u64 + 1) * (g.out_degree(v) as u64 + 1));
        let Some(pivot) = pivot else { break };
        report.peel_trials += 1;

        let fw = state.alloc_color();
        let bw = state.alloc_color();
        let scc = state.alloc_color();
        let (fw_claimed, s1) = dist_reach(&state, pivot, candidate, fw, Direction::Forward);
        report.absorb(s1);
        let (bw_claimed, scc_claimed, s2) = dist_backward(&state, pivot, candidate, fw, bw, scc);
        report.absorb(s2);

        // Resolve the SCC (each owner handles its own nodes; done on the
        // coordinator here since the state is shared in the simulation).
        let comp = state.alloc_comp();
        for v in 0..n as NodeId {
            if state.color(v) == scc {
                state.resolve(v, comp);
            }
        }
        report.peel_resolved += scc_claimed;

        if scc_claimed >= giant_min {
            break;
        }
        let fw_rest = fw_claimed.saturating_sub(scc_claimed);
        let remaining = candidate_size.saturating_sub(fw_claimed + bw_claimed);
        if fw_rest >= bw_claimed && fw_rest >= remaining {
            candidate = fw;
            candidate_size = fw_rest;
        } else if bw_claimed >= remaining {
            candidate = bw;
            candidate_size = bw_claimed;
        } else {
            candidate_size = remaining;
        }
    }

    // Phase 3: trim again (the peel exposes new trims — §3.2).
    let (t, s) = dist_trim(&state);
    report.trim_resolved += t;
    report.absorb(s);

    // Phase 4: distributed WCC (the §3.3/§6 kernel; group count feeds the
    // report — the residual finish below does not depend on it).
    let (groups, s) = dist_wcc(&state);
    report.wcc_groups = groups;
    report.absorb(s);

    // Phase 5: residual gather — standard distributed-SCC practice: the
    // leftover after trim+peel is orders of magnitude smaller than N on
    // small-world graphs (Fig. 8), so ship it to the coordinator and
    // finish sequentially.
    let alive: Vec<NodeId> = (0..n as NodeId).filter(|&v| state.alive(v)).collect();
    report.residual_nodes = alive.len();
    if !alive.is_empty() {
        // No color filter needed: colors partition the residue without
        // splitting any SCC (Lemma 1), so cross-color residual edges can
        // never lie on a cycle — Tarjan on the full induced subgraph finds
        // exactly the per-color SCCs.
        let sub = g.induced_subgraph(&alive);
        let sub_scc = tarjan_scc(&sub);
        // ordering: block-id allocation on the (now single-threaded)
        // serial-finish path; uniqueness by RMW atomicity.
        let base = state
            .next_comp
            .fetch_add(sub_scc.num_components() as u32, Ordering::Relaxed);
        for (i, &v) in alive.iter().enumerate() {
            state.resolve(v, base + sub_scc.component(i as u32));
        }
    }

    // ordering: final single-threaded read-back after every superstep and
    // worker join.
    let raw: Vec<u32> = state
        .comp
        .iter()
        .map(|c| c.load(Ordering::Relaxed))
        .collect();
    (SccResult::from_assignment(raw), report)
}

/// [`dist_scc_with`] with the paper's §3.2 defaults (1% giant threshold,
/// 5 trials).
///
/// # Examples
///
/// ```
/// use swscc_distributed::dist_scc;
/// use swscc_graph::CsrGraph;
///
/// let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
/// let (scc, report) = dist_scc(&g, 2);
/// assert_eq!(scc.num_components(), 3);
/// assert!(report.supersteps > 0);
/// ```
pub fn dist_scc(g: &CsrGraph, num_workers: usize) -> (SccResult, DistSccReport) {
    dist_scc_with(g, num_workers, 0.01, 5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swscc_core::tarjan::tarjan_scc;

    fn check(g: &CsrGraph, workers: usize) {
        let (r, report) = dist_scc(g, workers);
        assert_eq!(
            r.canonical_labels(),
            tarjan_scc(g).canonical_labels(),
            "dist_scc disagrees with tarjan at {workers} workers"
        );
        assert!(report.supersteps >= 1);
    }

    #[test]
    fn trim_resolves_dag() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (4, 5)]);
        let state = DistState::new(&g, 3);
        let (resolved, stats) = dist_trim(&state);
        assert_eq!(resolved, 6);
        assert!(stats.supersteps >= 2);
    }

    #[test]
    fn trim_keeps_cycles() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let state = DistState::new(&g, 2);
        let (resolved, _) = dist_trim(&state);
        assert_eq!(resolved, 2); // 3 and 4 trim; the 3-cycle stays
        assert!(state.alive(0) && state.alive(1) && state.alive(2));
    }

    #[test]
    fn trim_cascades_across_partition_boundaries() {
        // chain crossing every boundary: 0 -> 1 -> 2 -> ... -> 9
        let edges: Vec<_> = (0..9u32).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_edges(10, &edges);
        let state = DistState::new(&g, 5);
        let (resolved, stats) = dist_trim(&state);
        assert_eq!(resolved, 10);
        // boundary cascades need extra supersteps
        assert!(stats.supersteps >= 3, "supersteps = {}", stats.supersteps);
    }

    #[test]
    fn reach_wave_crosses_partitions() {
        let edges: Vec<_> = (0..7u32).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_edges(8, &edges);
        let state = DistState::new(&g, 4);
        let to = state.alloc_color();
        let (claimed, _) = dist_reach(&state, 2, INITIAL, to, Direction::Forward);
        assert_eq!(claimed, 6); // nodes 2..=7
        assert_eq!(state.color(1), INITIAL);
        assert_eq!(state.color(5), to);
    }

    #[test]
    fn backward_wave_classifies() {
        // cycle {0,1,2}; 3 -> 0 (IN); 2 -> 4 (OUT)
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 0), (2, 4)]);
        let state = DistState::new(&g, 2);
        let fw = state.alloc_color();
        let bw = state.alloc_color();
        let scc = state.alloc_color();
        let (fw_claimed, _) = dist_reach(&state, 0, INITIAL, fw, Direction::Forward);
        assert_eq!(fw_claimed, 4); // 0,1,2,4
        let (n_bw, n_scc, _) = dist_backward(&state, 0, INITIAL, fw, bw, scc);
        assert_eq!(n_scc, 3); // the cycle
        assert_eq!(n_bw, 1); // node 3
    }

    #[test]
    fn wcc_counts_groups() {
        // two weak components + an isolated node
        let g = CsrGraph::from_edges(5, &[(0, 1), (3, 2)]);
        let state = DistState::new(&g, 3);
        let (groups, _) = dist_wcc(&state);
        assert_eq!(groups, 3);
    }

    #[test]
    fn wcc_spans_partitions() {
        // one long weak chain over 4 partitions = 1 group
        let edges: Vec<_> = (0..19u32).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_edges(20, &edges);
        let state = DistState::new(&g, 4);
        let (groups, stats) = dist_wcc(&state);
        assert_eq!(groups, 1);
        assert!(stats.supersteps >= 2);
    }

    #[test]
    fn full_pipeline_small_cases() {
        let g = CsrGraph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 3),
                (5, 6),
                (6, 5),
                (6, 7),
            ],
        );
        for workers in [1, 2, 3, 8] {
            check(&g, workers);
        }
    }

    #[test]
    fn full_pipeline_random_graphs() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(71);
        for trial in 0..12 {
            let n = rng.random_range(1..150usize);
            let m = rng.random_range(0..4 * n);
            let edges: Vec<_> = (0..m)
                .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
                .collect();
            let g = CsrGraph::from_edges(n, &edges);
            check(&g, 1 + trial % 5);
        }
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        let (r, _) = dist_scc(&g, 4);
        assert_eq!(r.num_components(), 0);
    }

    #[test]
    fn giant_scc_resolved_by_peel_not_residual() {
        // one big cycle + tendrils: the peel must take the cycle, leaving a
        // tiny (or empty) residual.
        let n = 300u32;
        let mut edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        for i in 0..50u32 {
            edges.push((i, n + i)); // OUT tendrils
        }
        let g = CsrGraph::from_edges((n + 50) as usize, &edges);
        let (r, report) = dist_scc(&g, 4);
        assert_eq!(r.largest_component_size(), 300);
        assert_eq!(report.peel_resolved, 300);
        assert_eq!(report.residual_nodes, 0);
        assert_eq!(report.trim_resolved, 50);
    }
}
