//! Criterion microbenchmarks: end-to-end SCC algorithms on fixed analogs.
//!
//! Complements the table/figure binaries with statistically rigorous
//! per-algorithm timings on small fixed inputs (criterion re-runs each
//! workload many times, so these use scale ~0.02 analogs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use swscc_core::{detect_scc, run_pipeline, Algorithm, Pipeline, RunGuard, SccConfig};
use swscc_graph::datasets::Dataset;
use swscc_graph::gen::rmat::{rmat_edges, RmatConfig};

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("scc");
    group.sample_size(10);
    for d in [
        Dataset::Livej,
        Dataset::Baidu,
        Dataset::CaRoad,
        Dataset::Patents,
    ] {
        let g = d.generate(0.02, 42);
        group.throughput(criterion::Throughput::Elements(g.num_edges() as u64));
        for a in Algorithm::all() {
            let cfg = SccConfig::with_threads(2);
            group.bench_with_input(BenchmarkId::new(a.name(), d.name()), &g, |b, g| {
                b.iter(|| {
                    let (r, _) = detect_scc(black_box(g), a, &cfg);
                    black_box(r.num_components())
                })
            });
        }
    }
    group.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("method2-threads");
    group.sample_size(10);
    let g = Dataset::Livej.generate(0.05, 42);
    for threads in [1usize, 2, 4] {
        let cfg = SccConfig::with_threads(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &g, |b, g| {
            b.iter(|| {
                let (r, _) = detect_scc(black_box(g), Algorithm::Method2, &cfg);
                black_box(r.num_components())
            })
        });
    }
    group.finish();
}

/// The "RMAT tail" workload: `blocks` disjoint small R-MAT fabrics. The
/// trim+fwbw prefix resolves one block's core SCC and the acyclic
/// fringe; the residue is thousands of small-to-medium SCCs in a single
/// color partition — the power-law SCC tail of §2.2/Fig. 2, and the
/// shape that separates the two terminal stages: the task queue walks it
/// as a serial chain of remainder tasks (re-partitioning the shrinking
/// residue each time), while multi-search resolves a doubling batch of
/// pivots per round.
fn rmat_tail(blocks: usize, scale: u32, seed: u64) -> swscc_graph::CsrGraph {
    let n_block = 1usize << scale;
    let mut edges = Vec::new();
    for b in 0..blocks {
        let off = (b * n_block) as u32;
        for (u, v) in rmat_edges(&RmatConfig::graph500(scale, 8, seed + b as u64)) {
            edges.push((u + off, v + off));
        }
    }
    swscc_graph::CsrGraph::from_edges(blocks * n_block, &edges)
}

fn bench_pipeline_ablation(c: &mut Criterion) {
    // Custom compositions through the pipeline engine: stock Method 2
    // against stage-dropping ablations, isolating what each stage buys,
    // plus the tail shoot-out — after the same trim,fwbw,trim prefix,
    // does the residue go faster through the two-level task queue or the
    // multi-pivot reachability kernel? The rmat-tail workload is the
    // interesting row: see [`rmat_tail`].
    let mut group = c.benchmark_group("pipeline-ablation");
    group.sample_size(10);
    let specs = [
        ("method2-stock", "trim,fwbw,trim,trim2,trim,wcc,tasks"),
        ("drop-trim2", "trim,fwbw,trim,wcc,tasks"),
        ("drop-wcc", "trim,fwbw,trim,trim2,trim,tasks"),
        ("queue-only", "tasks"),
        ("tasks-tail", "trim,fwbw,trim,tasks"),
        ("multisearch-tail", "trim,fwbw,trim,multisearch"),
    ];
    let workloads: Vec<(&str, swscc_graph::CsrGraph)> = vec![
        ("livej", Dataset::Livej.generate(0.02, 42)),
        ("baidu", Dataset::Baidu.generate(0.02, 42)),
        ("rmat-tail", rmat_tail(2048, 4, 42)),
    ];
    for (name, g) in &workloads {
        for (label, spec) in specs {
            let pipeline = Pipeline::parse(spec).expect("ablation composition is legal");
            let cfg = SccConfig::with_threads(2);
            group.bench_with_input(BenchmarkId::new(label, name), g, |b, g| {
                b.iter(|| {
                    let (r, _) =
                        run_pipeline(black_box(g), &pipeline, &cfg, &RunGuard::new()).unwrap();
                    black_box(r.num_components())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_algorithms,
    bench_thread_scaling,
    bench_pipeline_ablation
);
criterion_main!(benches);
