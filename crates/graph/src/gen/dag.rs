//! Citation-DAG generator (the Patents analog).
//!
//! §5 of the paper: "Patent is a special case with no cycles in the graph
//! ... a patent can only cite other patents that come before it, thus
//! preventing any cycles. The SCC structure of this graph was identified by
//! the Trim operation \[alone\]." This generator reproduces that: node ids are
//! publication order and every edge points from a later node to a strictly
//! earlier node, so the graph is acyclic by construction and every SCC has
//! size 1. Citations are skewed toward recent and toward popular (low-id
//! hub) patents, giving a scale-free in-degree like the real citation graph.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, NodeId};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`citation_dag`].
#[derive(Clone, Copy, Debug)]
pub struct CitationConfig {
    /// Number of patents (nodes).
    pub num_nodes: usize,
    /// Average citations per patent.
    pub citations_per_node: usize,
    /// Fraction of citations drawn from the "recent window" (recency bias);
    /// the rest go to a power-law-skewed earlier patent (popularity bias).
    pub recency_frac: f64,
    /// Size of the recent window, as a fraction of the node's own id.
    pub recency_window: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CitationConfig {
    fn default() -> Self {
        CitationConfig {
            num_nodes: 100_000,
            citations_per_node: 5,
            recency_frac: 0.7,
            recency_window: 0.1,
            seed: 42,
        }
    }
}

/// Generates a citation DAG. Guaranteed acyclic: every edge `u -> v`
/// satisfies `v < u`.
///
/// # Examples
///
/// ```
/// use swscc_graph::gen::{citation_dag, CitationConfig};
///
/// let g = citation_dag(&CitationConfig { num_nodes: 1000, ..Default::default() });
/// assert!(g.edges().all(|(u, v)| v < u));
/// ```
pub fn citation_dag(cfg: &CitationConfig) -> CsrGraph {
    let n = cfg.num_nodes;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut b = GraphBuilder::with_capacity(n, n * cfg.citations_per_node);
    for u in 1..n {
        // Node 0 cites nothing; others cite between 1 and 2*avg earlier nodes.
        let cites = rng.random_range(1..=(2 * cfg.citations_per_node).max(1));
        for _ in 0..cites {
            let v = if rng.random_bool(cfg.recency_frac) {
                // recent: within `recency_window * u` ids before u
                let w = ((u as f64 * cfg.recency_window) as usize).max(1);
                u - 1 - rng.random_range(0..w.min(u))
            } else {
                // popular: power-law toward low ids
                let r: f64 = rng.random();
                ((r * r * u as f64) as usize).min(u - 1)
            };
            b.add_edge(u as NodeId, v as NodeId);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize) -> CitationConfig {
        CitationConfig {
            num_nodes: n,
            ..Default::default()
        }
    }

    #[test]
    fn strictly_backward_edges() {
        let g = citation_dag(&cfg(2000));
        assert!(g.edges().all(|(u, v)| v < u));
    }

    #[test]
    fn acyclic_by_topological_peel() {
        // Kahn's algorithm must consume every node.
        let g = citation_dag(&cfg(1000));
        let mut indeg: Vec<usize> = g.nodes().map(|v| g.in_degree(v)).collect();
        let mut queue: Vec<NodeId> = g.nodes().filter(|&v| indeg[v as usize] == 0).collect();
        let mut seen = 0usize;
        while let Some(u) = queue.pop() {
            seen += 1;
            for &v in g.out_neighbors(u) {
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    queue.push(v);
                }
            }
        }
        assert_eq!(seen, g.num_nodes());
    }

    #[test]
    fn node_zero_is_a_sink() {
        let g = citation_dag(&cfg(500));
        assert_eq!(g.out_degree(0), 0);
        assert!(g.in_degree(0) > 0);
    }

    #[test]
    fn deterministic() {
        let a: Vec<_> = citation_dag(&cfg(300)).edges().collect();
        let b: Vec<_> = citation_dag(&cfg(300)).edges().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn average_degree_reasonable() {
        let g = citation_dag(&cfg(5000));
        let avg = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(avg > 2.0 && avg < 12.0, "avg degree {avg}");
    }
}
