//@ path: crates/core/src/bad_safety_tag.rs
//! Known-bad: SAFETY comments with missing or dangling invariant tags.

pub fn missing_tag(p: *const u32) -> u32 {
    // SAFETY: valid pointer by caller contract, but no invariant tag. //~ safety-tag
    unsafe { *p }
}

pub fn dangling_tag(p: *const u32) -> u32 {
    // SAFETY: [inv:never-referenced-by-any-test] is a dangling tag. //~ safety-tag
    unsafe { *p }
}

pub fn good_tag(p: *const u32) -> u32 {
    // SAFETY: [inv:good-tag] referenced by tests/fixture_refs.rs.
    unsafe { *p }
}
