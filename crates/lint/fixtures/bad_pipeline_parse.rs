//@ path: crates/core/src/bad_pipeline_parse.rs
//! Known-bad literal pipeline specs in non-test code.

pub fn illegal_specs() {
    let _bad = Pipeline::parse("trim,tasks,wcc"); //~ pipeline //~ pipeline
    let _unknown = Pipeline::parse("trim,frobnicate,tasks"); //~ pipeline
    let _fine = Pipeline::parse("trim,fwbw,trim,tasks");
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_probe_illegal_specs_on_purpose() {
        let _ = Pipeline::parse("tasks,tasks");
    }
}
