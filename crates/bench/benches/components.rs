//! Criterion microbenchmarks: individual algorithm kernels.
//!
//! Times Par-Trim, Par-Trim2, Par-WCC, the Par-FWBW peel, and the BFS
//! primitive in isolation, each on a fresh state over the LiveJournal
//! analog — the per-phase costs that Fig. 7 stacks.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use swscc_core::fwbw::parallel::par_fwbw;
use swscc_core::state::{AlgoState, INITIAL_COLOR};
use swscc_core::trim::{par_trim, par_trim_sweeping};
use swscc_core::trim2::par_trim2;
use swscc_core::wcc::par_wcc;
use swscc_core::SccConfig;
use swscc_graph::bfs::{bfs_levels, par_bfs_levels, Direction};
use swscc_graph::datasets::Dataset;

fn bench_kernels(c: &mut Criterion) {
    let g = Dataset::Livej.generate(0.05, 42);
    let cfg = SccConfig::with_threads(2);
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(g.num_edges() as u64));

    group.bench_function("par-trim", |b| {
        b.iter(|| {
            let state = AlgoState::new(&g);
            black_box(par_trim(&state))
        })
    });

    group.bench_function("par-trim-sweeping", |b| {
        b.iter(|| {
            let state = AlgoState::new(&g);
            black_box(par_trim_sweeping(&state))
        })
    });

    group.bench_function("par-trim2", |b| {
        b.iter(|| {
            let state = AlgoState::new(&g);
            black_box(par_trim2(&state))
        })
    });

    group.bench_function("par-fwbw-peel", |b| {
        b.iter(|| {
            let state = AlgoState::new(&g);
            black_box(par_fwbw(&state, &cfg, INITIAL_COLOR).resolved)
        })
    });

    group.bench_function("par-wcc-after-peel", |b| {
        b.iter(|| {
            let state = AlgoState::new(&g);
            par_trim(&state);
            par_fwbw(&state, &cfg, INITIAL_COLOR);
            black_box(par_wcc(&state).groups.len())
        })
    });

    group.finish();
}

fn bench_bfs(c: &mut Criterion) {
    let g = Dataset::Livej.generate(0.05, 42);
    let mut group = c.benchmark_group("bfs");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(g.num_edges() as u64));
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(bfs_levels(&g, 0, Direction::Forward).len()))
    });
    group.bench_function("parallel", |b| {
        b.iter(|| black_box(par_bfs_levels(&g, 0, Direction::Forward).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_bfs);
criterion_main!(benches);
