//! Related-work and follow-on comparison (extra, beyond the paper's own
//! figures): Coloring (Orzan) and Multistep (Slota et al., IPDPS'14) vs
//! this paper's Method 2 and Tarjan.
//!
//! The expected shape (and the reason the FW-BW-Trim family won on
//! small-world graphs): Coloring alone suffers on instances where the
//! giant SCC's max-id label floods the graph every round; Multistep and
//! Method 2 both neutralize the giant SCC first and differ mainly in how
//! they mop up the tail (Coloring rounds vs WCC + task queue).

use swscc_bench::{ms, print_header, reps, scale, time_algorithm};
use swscc_core::{detect_scc, Algorithm, SccConfig};
use swscc_graph::datasets::Dataset;

fn main() {
    print_header("follow-ons: Tarjan vs Coloring vs Method 2 vs Multistep (ms)");
    let reps = reps();
    println!(
        "{:<9} {:>9} {:>10} {:>9} {:>11}",
        "name", "tarjan", "coloring", "method2", "multistep"
    );
    let cfg = SccConfig::default();
    for d in Dataset::all() {
        let g = d.load(scale(), 42);
        // cross-check once per dataset
        let (want, _) = detect_scc(&g, Algorithm::Tarjan, &cfg);
        for a in [Algorithm::Coloring, Algorithm::Multistep] {
            let (r, _) = detect_scc(&g, a, &cfg);
            assert_eq!(
                r.canonical_labels(),
                want.canonical_labels(),
                "{} wrong on {}",
                a.name(),
                d.name()
            );
        }
        let t = |a| time_algorithm(&g, a, &cfg, reps);
        println!(
            "{:<9} {:>9} {:>10} {:>9} {:>11}",
            d.name(),
            ms(t(Algorithm::Tarjan)),
            ms(t(Algorithm::Coloring)),
            ms(t(Algorithm::Method2)),
            ms(t(Algorithm::Multistep)),
        );
    }
    println!("\nall results verified against Tarjan ✓");
}
