//@ path: crates/core/src/bad_engine.rs
//! Known-bad: recovery machinery called outside the pipeline engine.

pub fn polls_on_its_own(guard: &RunGuard) -> Result<(), SccError> {
    check_guard(guard)?; //~ engine
    Ok(())
}

pub fn recovers_on_its_own(g: &CsrGraph) {
    let _ = recover_full_restart(g, collector(), &cfg(), String::new()); //~ engine
}

pub fn justified(guard: &RunGuard) -> Result<(), SccError> {
    // engine: demo harness polls between stages by design (fixture negative).
    check_guard(guard)?;
    Ok(())
}
