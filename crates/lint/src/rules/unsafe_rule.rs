//! Rule 3 — unsafe justification: every `unsafe` keyword (block, fn,
//! impl, trait) must carry a `// SAFETY:` comment on the same line or
//! earlier in the same paragraph. Applies to test code too — a test
//! leaning on `unsafe` is asserting something about memory safety and
//! must say what.
//!
//! Token-aware: `unsafe` inside strings, doc comments, and identifiers
//! like `unsafe_op` never fires; conversely a `// SAFETY:` that lives
//! only in a doc comment or a string no longer satisfies the rule.

use crate::engine::{Finding, Rule, Workspace};
use crate::rules::{finding_at, Code};
use crate::source::SourceFile;

pub struct UnsafeJustified;

impl Rule for UnsafeJustified {
    fn name(&self) -> &'static str {
        "unsafe"
    }

    fn description(&self) -> &'static str {
        "every `unsafe` carries a `// SAFETY:` comment in the same paragraph"
    }

    fn check_file(&self, file: &SourceFile, _ws: &Workspace, out: &mut Vec<Finding>) {
        let code = Code::new(file);
        for i in 0..code.len() {
            if code.text(i) != "unsafe" {
                continue;
            }
            if !file.has_justification(code.line(i), "// SAFETY:") {
                out.push(finding_at(
                    &code,
                    i,
                    self.name(),
                    "`unsafe` without a `// SAFETY:` comment (same line or earlier in the \
                     same paragraph; doc comments and strings don't count)"
                        .to_string(),
                ));
            }
        }
    }
}
