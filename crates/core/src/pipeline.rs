//! Composable phase-pipeline engine: the paper's algorithms as declarative
//! stage lists.
//!
//! The paper itself frames its methods as *compositions* — Method 2
//! (Alg. 9) is Method 1 (Alg. 6) plus Par-Trim2 (Alg. 8) and Par-WCC
//! (Alg. 7) spliced into the same skeleton. This module makes that
//! composition literal: each building block is a [`PhaseKernel`], a
//! pipeline is a validated list of [`Stage`]s, and [`run_pipeline`] is the
//! single engine loop that owns — exactly once — everything the five
//! drivers used to copy-paste:
//!
//! * [`Collector`] phase timing and Fig. 7/8 resolution attribution,
//! * interrupt polling at stage boundaries (`driver::check_interrupt`),
//! * panic capture and the retry/degrade/restart recovery policy
//!   (`driver::catch_phase`, `driver::run_queue_with_recovery`,
//!   `driver::recover_full_restart`),
//! * [`LiveSet`](swscc_parallel::LiveSet) compaction hand-offs between
//!   stages,
//! * watchdog wiring for the fixpoint kernels, and
//! * work-queue spin-up (including the Par-WCC groups → initial-tasks
//!   hand-off).
//!
//! The five paper algorithms are rows in the stock pipeline table
//! ([`Pipeline::stock`]); the legacy `*_scc_checked` entry points are
//! one-line lookups into it, and the CLI's `--pipeline` flag runs any
//! legal custom composition with the same per-phase breakdown for free.
//!
//! # Legality rules
//!
//! [`Pipeline::new`] (and hence [`Pipeline::parse`]) rejects nonsense
//! compositions; a [`Pipeline`] value is always runnable:
//!
//! 1. A pipeline has at least one stage.
//! 2. The final stage is **terminal** — [`Stage::Tasks`],
//!    [`Stage::Coloring`], [`Stage::Serial`], or [`Stage::Multisearch`] —
//!    because only the terminal kernels guarantee every remaining node is
//!    resolved.
//! 3. Terminal stages appear *only* in final position (anything after one
//!    would be dead code).
//! 4. [`Stage::Fwbw`] / [`Stage::Peel`] never follow a re-partitioning
//!    stage ([`Stage::Wcc`] or [`Stage::ColorTail`]): the peel targets the
//!    initial whole-graph partition, which re-partitioning destroys.
//!
//! Compositions that are legal but wasteful (a second `fwbw` that finds
//! its partition already dissolved, a `wcc` with no `tasks` to consume its
//! groups) run as no-ops rather than erroring: the rules reject *unsound*
//! pipelines, not unprofitable ones.

use crate::baseline::BASELINE_K;
use crate::config::{PanicPolicy, PivotStrategy, SccConfig};
use crate::driver;
use crate::error::{RunGuard, SccError};
use crate::fwbw::parallel::par_fwbw;
use crate::fwbw::recursive::{seed_tasks, RecurContext, Task};
use crate::instrument::{Collector, Phase, RecoveryEvent, RunReport};
use crate::method2::METHOD2_K;
use crate::multireach;
use crate::result::SccResult;
use crate::state::{AlgoState, Color, INITIAL_COLOR};
use crate::trim::par_trim;
use crate::trim2::par_trim2;
use crate::wcc::run_wcc;
use rayon::prelude::*;
use std::sync::Arc;
use swscc_graph::bfs::Direction;
use swscc_graph::{CsrGraph, GraphView, NodeId};
use swscc_parallel::{pool::with_pool, QueueStats, TwoLevelQueue};
use swscc_sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};

/// Below this many alive nodes, [`Stage::ColorTail`] stops its parallel
/// rounds (Multistep's serial cutoff; the [`Stage::Serial`] finish takes
/// the rest).
pub const COLOR_TAIL_SERIAL_CUTOFF: usize = 512;
/// Cap on [`Stage::ColorTail`] Coloring rounds before falling through to
/// the next stage regardless of residue size.
pub const COLOR_TAIL_MAX_ROUNDS: usize = 8;

/// One composable building block of an SCC pipeline.
///
/// Each stage names a [`PhaseKernel`]; [`Stage::name`] is the spelling the
/// CLI's `--pipeline` flag accepts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Par-Trim (Alg. 4) to fixpoint. The first `trim` of a pipeline is
    /// attributed to [`Phase::ParTrim`], later ones to [`Phase::ParTrim2`]
    /// (the Fig. 7 "Par-Trim′" convention).
    Trim,
    /// Data-parallel FW-BW peel of the giant SCC (§3.2), with the
    /// configured pivot strategy and trial budget.
    Fwbw,
    /// Multistep's single-shot peel: one FW-BW trial from the
    /// max-degree-product pivot, overriding the configured strategy.
    Peel,
    /// One Par-Trim2 pass (size-2 SCCs, Alg. 8 / §3.4).
    Trim2,
    /// Par-WCC re-partitioning (Alg. 7): splits the residue into weakly
    /// connected components and hands them to a following [`Stage::Tasks`]
    /// as ready-made work items.
    Wcc,
    /// Orzan max-label-propagation rounds until the residue is exhausted
    /// (terminal).
    Coloring,
    /// Multistep's bounded Coloring tail: color-respecting rounds with
    /// interleaved trims until the residue drops below
    /// [`COLOR_TAIL_SERIAL_CUTOFF`] or [`COLOR_TAIL_MAX_ROUNDS`] is hit.
    ColorTail,
    /// Sequential Tarjan on the induced residual subgraph (terminal).
    Serial,
    /// Recursive FW-BW over the two-level work queue (Alg. 5; terminal).
    Tasks,
    /// Multi-pivot reachability rounds (Wang et al., arXiv 2303.04934):
    /// batches of pivots searched forward+backward in one hash-bag BFS,
    /// reach sets intersected to resolve many SCCs per round (terminal).
    Multisearch,
}

impl Stage {
    /// Every stage, in the order used by documentation and diagnostics.
    pub fn all() -> [Stage; 10] {
        [
            Stage::Trim,
            Stage::Fwbw,
            Stage::Peel,
            Stage::Trim2,
            Stage::Wcc,
            Stage::Coloring,
            Stage::ColorTail,
            Stage::Serial,
            Stage::Tasks,
            Stage::Multisearch,
        ]
    }

    /// The spelling used in `--pipeline` specs.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Trim => "trim",
            Stage::Fwbw => "fwbw",
            Stage::Peel => "peel",
            Stage::Trim2 => "trim2",
            Stage::Wcc => "wcc",
            Stage::Coloring => "coloring",
            Stage::ColorTail => "colortail",
            Stage::Serial => "serial",
            Stage::Tasks => "tasks",
            Stage::Multisearch => "multisearch",
        }
    }

    /// Parses a name as printed by [`Stage::name`].
    pub fn from_name(s: &str) -> Option<Stage> {
        Stage::all().into_iter().find(|st| st.name() == s)
    }

    /// Whether this stage guarantees every remaining alive node is
    /// resolved when it returns (and may therefore end a pipeline).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            Stage::Tasks | Stage::Coloring | Stage::Serial | Stage::Multisearch
        )
    }

    /// Whether this stage re-colors the residue into fresh partitions,
    /// invalidating the initial whole-graph partition the peels target.
    fn repartitions(self) -> bool {
        matches!(self, Stage::Wcc | Stage::ColorTail)
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a stage list is not a legal pipeline (see the module docs for the
/// rules). This is a *configuration* error — the CLI maps it to exit
/// code 2 — distinct from the runtime [`SccError`]s a legal pipeline can
/// return.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PipelineError {
    /// The stage list is empty.
    Empty,
    /// A stage name in the spec did not parse.
    UnknownStage(String),
    /// The final stage does not resolve the whole residue.
    NotTerminal(Stage),
    /// A terminal stage appears before the final position.
    TerminalNotLast(Stage),
    /// A peel stage follows a re-partitioning stage.
    PeelAfterRepartition {
        /// The offending peel stage.
        peel: Stage,
        /// The re-partitioning stage it follows.
        after: Stage,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Empty => write!(f, "pipeline has no stages"),
            PipelineError::UnknownStage(s) => {
                let known: Vec<&str> = Stage::all().iter().map(|st| st.name()).collect();
                write!(f, "unknown stage {s:?}; available: {}", known.join(", "))
            }
            PipelineError::NotTerminal(s) => write!(
                f,
                "final stage `{s}` does not resolve the whole residue; end with \
                 one of tasks, coloring, serial, multisearch"
            ),
            PipelineError::TerminalNotLast(s) => write!(
                f,
                "terminal stage `{s}` must be the final stage (everything after \
                 it would be dead code)"
            ),
            PipelineError::PeelAfterRepartition { peel, after } => write!(
                f,
                "`{peel}` cannot follow `{after}`: the FW-BW peel targets the \
                 initial whole-graph partition, which re-partitioning destroys"
            ),
        }
    }
}

impl std::error::Error for PipelineError {}

/// A validated, runnable composition of [`Stage`]s.
///
/// Constructed by [`Pipeline::new`] / [`Pipeline::parse`] (which enforce
/// the legality rules) or looked up from the stock table with
/// [`Pipeline::stock`]. Run it with [`run_pipeline`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pipeline {
    stages: Vec<Stage>,
}

/// The stock pipeline table: the five paper algorithms as stage lists.
const STOCK: &[(crate::Algorithm, &[Stage])] = &[
    (crate::Algorithm::Baseline, &[Stage::Trim, Stage::Tasks]),
    (
        crate::Algorithm::Method1,
        &[Stage::Trim, Stage::Fwbw, Stage::Trim, Stage::Tasks],
    ),
    (
        crate::Algorithm::Method2,
        &[
            Stage::Trim,
            Stage::Fwbw,
            Stage::Trim,
            Stage::Trim2,
            Stage::Trim,
            Stage::Wcc,
            Stage::Tasks,
        ],
    ),
    (crate::Algorithm::Coloring, &[Stage::Trim, Stage::Coloring]),
    (
        crate::Algorithm::Multistep,
        &[
            Stage::Trim,
            Stage::Peel,
            Stage::Trim,
            Stage::ColorTail,
            Stage::Serial,
        ],
    ),
];

impl Pipeline {
    /// Validates `stages` into a runnable pipeline.
    pub fn new(stages: Vec<Stage>) -> Result<Pipeline, PipelineError> {
        let Some((&last, init)) = stages.split_last() else {
            return Err(PipelineError::Empty);
        };
        if !last.is_terminal() {
            return Err(PipelineError::NotTerminal(last));
        }
        if let Some(&s) = init.iter().find(|s| s.is_terminal()) {
            return Err(PipelineError::TerminalNotLast(s));
        }
        let mut repartitioned_by = None;
        for &s in &stages {
            if matches!(s, Stage::Fwbw | Stage::Peel) {
                if let Some(after) = repartitioned_by {
                    return Err(PipelineError::PeelAfterRepartition { peel: s, after });
                }
            }
            if s.repartitions() {
                repartitioned_by = Some(s);
            }
        }
        Ok(Pipeline { stages })
    }

    /// Parses a comma-separated spec (`"trim,fwbw,trim2,wcc,tasks"`) and
    /// validates it. Whitespace around stage names is ignored.
    pub fn parse(spec: &str) -> Result<Pipeline, PipelineError> {
        let mut stages = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match Stage::from_name(part) {
                Some(s) => stages.push(s),
                None => return Err(PipelineError::UnknownStage(part.to_string())),
            }
        }
        Pipeline::new(stages)
    }

    /// The stock pipeline implementing `algo`, or `None` for the
    /// sequential oracles and the demo FW-BW (which run outside the
    /// engine).
    pub fn stock(algo: crate::Algorithm) -> Option<Pipeline> {
        STOCK
            .iter()
            .find(|(a, _)| *a == algo)
            .map(|(_, stages)| Pipeline {
                stages: stages.to_vec(),
            })
    }

    /// The validated stage list.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// The work-queue batch size this composition implies when
    /// [`SccConfig::k`] is `None`: the paper uses K = 8 once Par-WCC
    /// multiplies the task count (§4.3) and K = 1 otherwise.
    pub fn default_k(&self) -> usize {
        if self.stages.contains(&Stage::Wcc) {
            METHOD2_K
        } else {
            BASELINE_K
        }
    }

    /// Compiles the stage list into kernel instances, assigning the
    /// Fig. 7 phase tags (first `trim` → `ParTrim`, later trims →
    /// `ParTrim2`).
    fn compile<G: GraphView>(&self) -> Vec<Box<dyn PhaseKernel<G>>> {
        let mut seen_trim = false;
        self.stages
            .iter()
            .map(|&s| -> Box<dyn PhaseKernel<G>> {
                match s {
                    Stage::Trim => {
                        let phase = if seen_trim {
                            Phase::ParTrim2
                        } else {
                            seen_trim = true;
                            Phase::ParTrim
                        };
                        Box::new(TrimKernel { phase })
                    }
                    Stage::Fwbw => Box::new(FwbwKernel { single_peel: false }),
                    Stage::Peel => Box::new(FwbwKernel { single_peel: true }),
                    Stage::Trim2 => Box::new(Trim2Kernel),
                    Stage::Wcc => Box::new(WccKernel),
                    Stage::Coloring => Box::new(ColoringKernel),
                    Stage::ColorTail => Box::new(ColorTailKernel),
                    Stage::Serial => Box::new(SerialKernel),
                    Stage::Tasks => Box::new(TasksKernel),
                    Stage::Multisearch => Box::new(MultiSearchKernel),
                }
            })
            .collect()
    }
}

impl std::fmt::Display for Pipeline {
    /// The `--pipeline` spelling: stage names joined by commas.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            f.write_str(s.name())?;
        }
        Ok(())
    }
}

/// Shared engine context handed to every kernel: the run configuration,
/// the instrumentation sink, and the cross-stage hand-off slots.
pub struct PipelineCtx<'a> {
    /// The run configuration.
    pub cfg: &'a SccConfig,
    /// The instrumentation sink (phase times, task log, recoveries).
    pub collector: &'a Collector,
    /// Par-WCC → Tasks hand-off: groups produced by a [`Stage::Wcc`]
    /// kernel, consumed (instead of a fresh color scan) by the next
    /// [`Stage::Tasks`]. Stale entries are harmless — task processing
    /// skips resolved members.
    pub groups: Option<Vec<(Color, Vec<NodeId>)>>,
    /// Work-queue statistics reported by a [`Stage::Tasks`] kernel.
    pub queue_stats: QueueStats,
    /// Work items seeding the recursive phase (or Coloring rounds, for
    /// the stock Coloring pipeline's legacy report shape).
    pub initial_tasks: usize,
    /// The composition's work-queue K default ([`Pipeline::default_k`]).
    pub k_default: usize,
}

/// How one stage run ended short of success. `Fatal` propagates as-is;
/// `Dirty` means shared state may hold partial SCC claims and the engine
/// must discard everything and restart sequentially
/// (`driver::recover_full_restart`) — the same split as
/// `driver::DriverError`, surfaced at the trait boundary.
pub enum StageError {
    /// A clean typed failure (interrupt, or a panic under
    /// [`crate::PanicPolicy::Fail`]).
    Fatal(SccError),
    /// A dirty panic under [`crate::PanicPolicy::Fallback`]; carries the
    /// panic text.
    Dirty(String),
}

/// What a completed stage reports back to the engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseOutcome {
    /// Nodes this stage resolved, attributed to the kernel's phase tag by
    /// the engine (composite kernels that attribute internally report 0).
    pub resolved: usize,
}

/// One composable pipeline stage: a named kernel the engine times,
/// guards, and sequences.
///
/// Implementations mutate the shared [`AlgoState`] (colors, marks,
/// component output) and use [`PipelineCtx`] for configuration and
/// cross-stage hand-offs. The *engine* owns the cross-cutting concerns:
/// kernels never poll the interrupt at stage granularity, never call
/// `driver::catch_phase`, and never record recovery events themselves —
/// the engine wraps every non-self-recovering kernel in a panic boundary
/// and maps a caught panic to the dirty-restart policy.
pub trait PhaseKernel<G: GraphView = CsrGraph> {
    /// Stage name, as spelled in `--pipeline` specs.
    fn name(&self) -> &'static str;

    /// The Fig. 7 phase the engine attributes this stage's wall-clock
    /// time and resolved-node count to. `None` for composite kernels
    /// (Coloring rounds, the Multistep tail) that attribute their
    /// sub-steps internally via [`PipelineCtx::collector`].
    fn phase(&self) -> Option<Phase>;

    /// Whether the kernel manages its own panic/recovery boundary. Only
    /// the work-queue stage returns `true`: its boundary panics are
    /// recoverable in place (retry / degrade), which the blanket dirty
    /// boundary the engine wraps around everything else cannot express.
    fn self_recovering(&self) -> bool {
        false
    }

    /// Runs the stage to completion (or typed failure).
    fn run(
        &self,
        state: &AlgoState<'_, G>,
        ctx: &mut PipelineCtx<'_>,
    ) -> Result<PhaseOutcome, StageError>;
}

// ---------------------------------------------------------------------------
// Engine loop
// ---------------------------------------------------------------------------

/// Runs `pipeline` on `g` under `guard`: the single checked entry point
/// behind every parallel algorithm and every custom `--pipeline`
/// composition.
///
/// The engine polls the guard at stage boundaries, wraps data-parallel
/// stages in a dirty panic boundary (caught panic → full sequential
/// restart under [`crate::PanicPolicy::Fallback`]), compacts the
/// live-residue set between stages, and assembles the per-phase
/// [`RunReport`].
#[must_use = "dropping the result discards both the SCC partition and the run's error/recovery record"]
pub fn run_pipeline<G: GraphView>(
    g: &G,
    pipeline: &Pipeline,
    cfg: &SccConfig,
    guard: &RunGuard,
) -> Result<(SccResult, RunReport), SccError> {
    with_pool(cfg.threads, || {
        let kernels: Vec<Box<dyn PhaseKernel<G>>> = pipeline.compile();
        let state =
            AlgoState::with_interrupt(g, Arc::clone(guard.interrupt()), cfg.watchdog_factor);
        let collector = Collector::new(cfg.task_log_limit);

        let outcome = {
            let mut ctx = PipelineCtx {
                cfg,
                collector: &collector,
                groups: None,
                queue_stats: QueueStats::default(),
                initial_tasks: 0,
                k_default: pipeline.default_k(),
            };
            run_stages(&kernels, &state, &mut ctx).map(|()| (ctx.queue_stats, ctx.initial_tasks))
        };
        match outcome {
            Ok((queue_stats, initial_tasks)) => {
                driver::check_interrupt(&state)?;
                let report = collector.into_report(queue_stats, initial_tasks);
                Ok((state.into_result(), report))
            }
            Err(StageError::Fatal(e)) => Err(e),
            Err(StageError::Dirty(message)) => {
                driver::recover_full_restart(g, collector, cfg, message)
            }
        }
    })
}

/// The stage sequencer: interrupt poll, timed + guarded kernel run, then
/// a live-set compaction hand-off, per stage.
fn run_stages<G: GraphView>(
    kernels: &[Box<dyn PhaseKernel<G>>],
    state: &AlgoState<'_, G>,
    ctx: &mut PipelineCtx<'_>,
) -> Result<(), StageError> {
    for kernel in kernels {
        driver::check_interrupt(state).map_err(StageError::Fatal)?;
        let collector = ctx.collector;
        let outcome = match kernel.phase() {
            Some(phase) => collector.phase(phase, || {
                let out = run_guarded(kernel.as_ref(), state, ctx);
                let resolved = out.as_ref().map_or(0, |o| o.resolved);
                (resolved, out)
            }),
            // Composite kernels attribute their sub-steps internally.
            None => run_guarded(kernel.as_ref(), state, ctx),
        };
        outcome?;
        // Phase-boundary compaction point: the next stage's full sweeps
        // cost O(|residue|) (policy-gated; `Never` keeps O(N) sweeps).
        state.compact_live(ctx.cfg.live_set_compaction);
    }
    Ok(())
}

/// Runs one kernel inside the engine's panic boundary (unless the kernel
/// is self-recovering — the work-queue stage, whose recovery loop
/// distinguishes boundary from dirty panics itself).
fn run_guarded<G: GraphView>(
    kernel: &dyn PhaseKernel<G>,
    state: &AlgoState<'_, G>,
    ctx: &mut PipelineCtx<'_>,
) -> Result<PhaseOutcome, StageError> {
    if kernel.self_recovering() {
        return kernel.run(state, ctx);
    }
    match driver::catch_phase(|| kernel.run(state, ctx)) {
        Ok(out) => out,
        // A panic inside a data-parallel kernel may have split an SCC
        // across the resolved/unresolved divide; only a restart is sound.
        Err(message) => Err(StageError::Dirty(message)),
    }
}

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------

/// [`Stage::Trim`]: Par-Trim to fixpoint.
struct TrimKernel {
    /// `ParTrim` for the pipeline's first trim, `ParTrim2` after.
    phase: Phase,
}

impl<G: GraphView> PhaseKernel<G> for TrimKernel {
    fn name(&self) -> &'static str {
        "trim"
    }
    fn phase(&self) -> Option<Phase> {
        Some(self.phase)
    }
    fn run(
        &self,
        state: &AlgoState<'_, G>,
        _ctx: &mut PipelineCtx<'_>,
    ) -> Result<PhaseOutcome, StageError> {
        Ok(PhaseOutcome {
            resolved: par_trim(state),
        })
    }
}

/// [`Stage::Fwbw`] / [`Stage::Peel`]: the data-parallel giant-SCC peel.
struct FwbwKernel {
    /// Multistep mode: exactly one trial from the max-degree-product
    /// pivot, regardless of the configured strategy.
    single_peel: bool,
}

impl<G: GraphView> PhaseKernel<G> for FwbwKernel {
    fn name(&self) -> &'static str {
        if self.single_peel {
            "peel"
        } else {
            "fwbw"
        }
    }
    fn phase(&self) -> Option<Phase> {
        Some(Phase::ParFwbw)
    }
    fn run(
        &self,
        state: &AlgoState<'_, G>,
        ctx: &mut PipelineCtx<'_>,
    ) -> Result<PhaseOutcome, StageError> {
        let peel_cfg;
        let cfg = if self.single_peel {
            peel_cfg = SccConfig {
                pivot: PivotStrategy::MaxDegreeProduct,
                max_trials: 1,
                ..*ctx.cfg
            };
            &peel_cfg
        } else {
            ctx.cfg
        };
        let outcome = par_fwbw(state, cfg, INITIAL_COLOR);
        // ordering: driver-thread statistic updated between stages; the
        // into_report load happens after all joins.
        ctx.collector
            .fwbw_trials
            .fetch_add(outcome.trials, Ordering::Relaxed);
        Ok(PhaseOutcome {
            resolved: outcome.resolved,
        })
    }
}

/// [`Stage::Trim2`]: one Par-Trim2 pass.
struct Trim2Kernel;

impl<G: GraphView> PhaseKernel<G> for Trim2Kernel {
    fn name(&self) -> &'static str {
        "trim2"
    }
    fn phase(&self) -> Option<Phase> {
        Some(Phase::ParTrim2)
    }
    fn run(
        &self,
        state: &AlgoState<'_, G>,
        _ctx: &mut PipelineCtx<'_>,
    ) -> Result<PhaseOutcome, StageError> {
        Ok(PhaseOutcome {
            resolved: par_trim2(state),
        })
    }
}

/// [`Stage::Wcc`]: Par-WCC re-partitioning, groups stashed for the next
/// [`Stage::Tasks`].
struct WccKernel;

impl<G: GraphView> PhaseKernel<G> for WccKernel {
    fn name(&self) -> &'static str {
        "wcc"
    }
    fn phase(&self) -> Option<Phase> {
        Some(Phase::ParWcc)
    }
    fn run(
        &self,
        state: &AlgoState<'_, G>,
        ctx: &mut PipelineCtx<'_>,
    ) -> Result<PhaseOutcome, StageError> {
        let out = run_wcc(state, ctx.cfg);
        ctx.groups = Some(out.groups);
        Ok(PhaseOutcome { resolved: 0 })
    }
}

/// [`Stage::Tasks`]: the recursive FW-BW work-queue phase, seeded either
/// by a preceding Par-WCC's groups or by the §4.2 color scan.
struct TasksKernel;

impl<G: GraphView> PhaseKernel<G> for TasksKernel {
    fn name(&self) -> &'static str {
        "tasks"
    }
    fn phase(&self) -> Option<Phase> {
        Some(Phase::RecurFwbw)
    }
    fn self_recovering(&self) -> bool {
        true
    }
    fn run(
        &self,
        state: &AlgoState<'_, G>,
        ctx: &mut PipelineCtx<'_>,
    ) -> Result<PhaseOutcome, StageError> {
        run_task_tail(state, ctx)
    }
}

/// The recursive work-queue tail shared by [`TasksKernel`] and the
/// [`MultiSearchKernel`] degrade path: seed tasks (from stashed Par-WCC
/// groups or a fresh color scan), run the two-level queue under the
/// boundary-recovery loop, surface the stats.
fn run_task_tail<G: GraphView>(
    state: &AlgoState<'_, G>,
    ctx: &mut PipelineCtx<'_>,
) -> Result<PhaseOutcome, StageError> {
    let cfg = ctx.cfg;
    let tasks: Vec<Task> = match ctx.groups.take() {
        Some(groups) => groups
            .into_iter()
            .map(|(color, members)| {
                if cfg.hybrid_sets {
                    Task::WithMembers { color, members }
                } else {
                    Task::ColorOnly { color }
                }
            })
            .collect(),
        None => seed_tasks(state, cfg),
    };
    ctx.initial_tasks = tasks.len();
    let queue: TwoLevelQueue<Task> = TwoLevelQueue::from_tasks(cfg.resolve_k(ctx.k_default), tasks);
    let rctx = RecurContext::new(state, ctx.collector, cfg);
    match driver::run_queue_with_recovery(&queue, &rctx, cfg) {
        Ok(res) => {
            ctx.queue_stats = res.stats;
            Ok(PhaseOutcome {
                resolved: res.resolved,
            })
        }
        Err(driver::DriverError::Fatal(e)) => Err(StageError::Fatal(e)),
        Err(driver::DriverError::DirtyRestart(message)) => Err(StageError::Dirty(message)),
    }
}

/// [`Stage::Multisearch`]: multi-pivot reachability rounds over the live
/// residue (terminal) — see [`crate::multireach`].
///
/// Each round picks a pivot batch (doubling per round from
/// [`SccConfig::multisearch_batch`]), runs the forward and backward
/// hash-bag multi-searches, and resolves every vertex that landed in a
/// pivot's SCC. Composite kernel: searches are attributed to
/// [`Phase::ParFwbw`] and the resolve pass to [`Phase::RecurFwbw`],
/// mirroring the Coloring rounds' report shape.
///
/// Self-recovering, with an asymmetric policy rooted in what each half
/// touches. The *searches* only read shared state (all writes go to
/// round-local tables and bags), so a panic there is clean: under
/// [`PanicPolicy::Fallback`] the kernel records a
/// [`RecoveryEvent::DegradedToQueue`] and finishes the intact residue on
/// the two-level work-queue tail ([`run_task_tail`]). The *resolve pass*
/// writes component claims, so a panic there may split an SCC across the
/// resolved divide and surfaces as [`StageError::Dirty`] (full
/// sequential restart), like any data-parallel kernel.
struct MultiSearchKernel;

impl<G: GraphView> PhaseKernel<G> for MultiSearchKernel {
    fn name(&self) -> &'static str {
        "multisearch"
    }
    fn phase(&self) -> Option<Phase> {
        None
    }
    fn self_recovering(&self) -> bool {
        true
    }
    fn run(
        &self,
        state: &AlgoState<'_, G>,
        ctx: &mut PipelineCtx<'_>,
    ) -> Result<PhaseOutcome, StageError> {
        let cfg = ctx.cfg;
        let n = state.num_nodes();
        // One winner slot per node, allocated once and reset over the
        // (shrinking) alive list each round by `resolve_round`.
        let winner: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
        let mut total = 0usize;
        let mut round = 0u32;
        // Every round resolves at least its pivots' SCCs (each pivot is
        // in both of its own reach sets), so rounds ≤ n.
        let mut watchdog = state.watchdog("multisearch-rounds", n + 1);
        loop {
            if watchdog.check().is_some() {
                break;
            }
            state.compact_live(cfg.live_set_compaction);
            let alive = state.collect_alive();
            if alive.is_empty() {
                break;
            }
            // The batch doubles each round: early rounds stay cheap while
            // the residue may still hold one big SCC that a single pivot
            // resolves; later rounds blanket a residue of many small SCCs.
            let batch = cfg
                .multisearch_batch
                .saturating_mul(1usize << round.min(16));
            round += 1;
            let pivots = multireach::pick_pivots(&alive, batch);
            let pivot_colors: Vec<Color> = pivots.iter().map(|&p| state.color(p)).collect();

            let searched = ctx.collector.phase(Phase::ParFwbw, || {
                let out = driver::catch_phase(|| {
                    swscc_sync::fault::point("multisearch-round");
                    let fwd = multireach::multi_search(
                        state,
                        &alive,
                        &pivots,
                        &pivot_colors,
                        true,
                        cfg.threads,
                    );
                    let bwd = multireach::multi_search(
                        state,
                        &alive,
                        &pivots,
                        &pivot_colors,
                        false,
                        cfg.threads,
                    );
                    (fwd, bwd)
                });
                (0, out)
            });
            let (fwd, bwd) = match searched {
                Ok(tables) => tables,
                Err(message) => {
                    if cfg.on_panic == PanicPolicy::Fail {
                        return Err(StageError::Fatal(SccError::WorkerPanic { message }));
                    }
                    ctx.collector
                        .record_recovery(RecoveryEvent::DegradedToQueue {
                            message,
                            residue: alive.len(),
                        });
                    let out = run_task_tail(state, ctx)?;
                    return Ok(PhaseOutcome {
                        resolved: total + out.resolved,
                    });
                }
            };
            if state.should_stop() {
                // The searches bailed early, so the tables may be partial
                // and must not drive resolution. The engine surfaces the
                // abort below.
                break;
            }

            let resolved = ctx.collector.phase(Phase::RecurFwbw, || {
                let out = driver::catch_phase(|| {
                    multireach::resolve_round(state, &alive, &pivots, &fwd, &bwd, &winner)
                });
                (*out.as_ref().unwrap_or(&0), out)
            });
            match resolved {
                Ok(k) => total += k,
                Err(message) => return Err(StageError::Dirty(message)),
            }
        }
        driver::check_interrupt(state).map_err(StageError::Fatal)?;
        // ordering: driver-thread statistic (between stages, before the
        // into_report load) — the round count lands in the trials slot
        // like the Coloring rounds do.
        ctx.collector
            .fwbw_trials
            .fetch_add(round as usize, Ordering::Relaxed);
        Ok(PhaseOutcome { resolved: total })
    }
}

/// [`Stage::Serial`]: sequential Tarjan on the induced residual subgraph.
struct SerialKernel;

impl<G: GraphView> PhaseKernel<G> for SerialKernel {
    fn name(&self) -> &'static str {
        "serial"
    }
    fn phase(&self) -> Option<Phase> {
        Some(Phase::RecurFwbw)
    }
    fn run(
        &self,
        state: &AlgoState<'_, G>,
        _ctx: &mut PipelineCtx<'_>,
    ) -> Result<PhaseOutcome, StageError> {
        Ok(PhaseOutcome {
            resolved: state.resolve_residue_sequential(),
        })
    }
}

/// [`Stage::Coloring`]: Orzan max-label-propagation rounds until the
/// residue is exhausted.
///
/// Composite kernel: label-propagation work is attributed to
/// [`Phase::ParFwbw`] (it plays the same "find SCC seeds by reachability"
/// role) and the backward collection to [`Phase::RecurFwbw`], matching
/// the legacy Coloring driver's report shape. The round count lands in
/// [`RunReport::fwbw_trials`] and [`RunReport::initial_tasks`].
struct ColoringKernel;

impl<G: GraphView> PhaseKernel<G> for ColoringKernel {
    fn name(&self) -> &'static str {
        "coloring"
    }
    fn phase(&self) -> Option<Phase> {
        None
    }
    fn run(
        &self,
        state: &AlgoState<'_, G>,
        ctx: &mut PipelineCtx<'_>,
    ) -> Result<PhaseOutcome, StageError> {
        let rounds = coloring_rounds(state, ctx);
        // ordering: driver-thread statistic (between stages, before the
        // into_report load).
        ctx.collector
            .fwbw_trials
            .fetch_add(rounds, Ordering::Relaxed);
        ctx.initial_tasks = rounds;
        Ok(PhaseOutcome { resolved: 0 })
    }
}

/// The Coloring rounds proper; returns the round count.
fn coloring_rounds<G: GraphView>(state: &AlgoState<'_, G>, ctx: &mut PipelineCtx<'_>) -> usize {
    let n = state.num_nodes();
    let collector = ctx.collector;
    let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let mut rounds = 0usize;
    loop {
        swscc_sync::fault::point("coloring-round");
        if state.should_stop() {
            break;
        }
        // Round setup: compact the live set (each round resolves whole
        // label classes, so the residue shrinks fast), then gather the
        // alive nodes from it — O(|residue|) instead of O(N) per round.
        state.compact_live(ctx.cfg.live_set_compaction);
        let alive: Vec<NodeId> = state.collect_alive();
        if alive.is_empty() {
            break;
        }
        rounds += 1;
        // ordering: per-round label reset — each worker writes only
        // its own chunk's entries and the par_iter join publishes
        // them before the propagation loop reads any.
        alive
            .par_iter()
            .for_each(|&v| labels[v as usize].store(v, Ordering::Relaxed));

        // Forward max-propagation to fixpoint. The max label needs at
        // most one round per node on the longest alive path plus one
        // no-change round to detect convergence, hence the n + 1 bound.
        collector.phase(Phase::ParFwbw, || {
            let mut watchdog = state.watchdog("coloring-propagation", n + 1);
            loop {
                if watchdog.check().is_some() {
                    break;
                }
                let changed = AtomicBool::new(false);
                alive.par_iter().for_each(|&v| {
                    // ordering: monotone fetch_max convergence — labels
                    // only increase, stale reads merely defer an update
                    // to a later sweep, and the atomic fetch_max never
                    // loses the larger value. `changed` is a sticky
                    // flag read after the sweep's join (which is what
                    // publishes it), so Relaxed suffices there too.
                    let mut max = labels[v as usize].load(Ordering::Relaxed);
                    state.g.for_each_neighbor(Direction::Backward, v, |u| {
                        if u != v && state.alive(u) {
                            max = max.max(labels[u as usize].load(Ordering::Relaxed));
                        }
                    });
                    if max > labels[v as usize].load(Ordering::Relaxed) {
                        labels[v as usize].fetch_max(max, Ordering::Relaxed);
                        changed.store(true, Ordering::Relaxed);
                    }
                });
                // ordering: read after the par_iter join above.
                if !changed.load(Ordering::Relaxed) {
                    break;
                }
            }
            (0, ())
        });
        if state.should_stop() {
            // Labels may be mid-fixpoint; collecting classes now would
            // resolve sets that are not SCCs. The engine surfaces the
            // abort, so partial state is discarded anyway.
            break;
        }

        // Collect one SCC per root: backward BFS within the label class.
        // Within one round the label classes partition the alive nodes
        // and each class is processed by exactly one root's backward
        // search, so no two searches can claim the same node.
        let resolved_this_round = collector.phase(Phase::RecurFwbw, || {
            let resolved = AtomicUsize::new(0);
            // ordering: the propagation fixpoint completed and its
            // joins published the final labels; these reads race with
            // nothing.
            let roots: Vec<NodeId> = alive
                .par_iter()
                .copied()
                .filter(|&v| labels[v as usize].load(Ordering::Relaxed) == v)
                .collect();
            // Roots own disjoint label classes, so their backward
            // searches touch disjoint node sets and can run in parallel.
            roots.par_iter().for_each(|&r| {
                let comp = state.alloc_component();
                debug_assert!(state.alive(r));
                state.resolve_into(r, comp);
                // ordering: statistic counter — atomicity keeps the
                // total exact, the join below publishes it.
                resolved.fetch_add(1, Ordering::Relaxed);
                let mut stack = vec![r];
                while let Some(v) = stack.pop() {
                    state.g.for_each_neighbor(Direction::Backward, v, |u| {
                        // ordering: label classes are frozen (fixpoint
                        // reached, published by the joins above) and
                        // disjoint per root, so these reads see final
                        // values; the counter argument is as above.
                        if u != v
                            && state.alive(u)
                            && labels[u as usize].load(Ordering::Relaxed) == r
                        {
                            state.resolve_into(u, comp);
                            resolved.fetch_add(1, Ordering::Relaxed);
                            stack.push(u);
                        }
                    });
                }
            });
            // ordering: read after the par_iter join.
            let r = resolved.load(Ordering::Relaxed);
            (r, r)
        });
        debug_assert!(resolved_this_round > 0, "a round must make progress");
    }
    rounds
}

/// [`Stage::ColorTail`]: Multistep's bounded, color-respecting Coloring
/// tail with interleaved trims.
///
/// Composite kernel: rounds are attributed to [`Phase::ParWcc`] (the
/// label-propagation slot) and the interleaved trims to
/// [`Phase::ParTrim2`], matching the legacy Multistep driver. The round
/// count is added to [`RunReport::fwbw_trials`].
struct ColorTailKernel;

impl<G: GraphView> PhaseKernel<G> for ColorTailKernel {
    fn name(&self) -> &'static str {
        "colortail"
    }
    fn phase(&self) -> Option<Phase> {
        None
    }
    fn run(
        &self,
        state: &AlgoState<'_, G>,
        ctx: &mut PipelineCtx<'_>,
    ) -> Result<PhaseOutcome, StageError> {
        let n = state.num_nodes();
        let collector = ctx.collector;
        let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
        let mut rounds = 0usize;
        loop {
            swscc_sync::fault::point("coloring-round");
            if state.should_stop() {
                break;
            }
            // Each hand-off compacts the live set, so the per-round alive
            // gather costs O(|residue|).
            state.compact_live(ctx.cfg.live_set_compaction);
            let alive: Vec<NodeId> = state.collect_alive();
            if alive.len() <= COLOR_TAIL_SERIAL_CUTOFF || rounds >= COLOR_TAIL_MAX_ROUNDS {
                break;
            }
            rounds += 1;
            collector.phase(Phase::ParWcc, || {
                (color_tail_round(state, &labels, &alive), ())
            });
            collector.phase(Phase::ParTrim2, || (par_trim(state), ()));
        }
        // ordering: driver-thread statistic (between stages, before the
        // into_report load).
        collector.fwbw_trials.fetch_add(rounds, Ordering::Relaxed);
        Ok(PhaseOutcome { resolved: 0 })
    }
}

/// One Coloring round restricted to nodes whose colors partition the
/// residue: labels respect the color classes (max-label flows only between
/// same-color alive nodes), so every detected SCC stays within one class.
/// Returns the number of nodes resolved.
fn color_tail_round<G: GraphView>(
    state: &AlgoState<'_, G>,
    labels: &[AtomicU32],
    alive: &[NodeId],
) -> usize {
    // ordering: disjoint per-round reset published by the par_iter join
    // (same argument as the Coloring kernel's round setup).
    alive
        .par_iter()
        .for_each(|&v| labels[v as usize].store(v, Ordering::Relaxed));
    // Bound as in the Coloring kernel: the max label travels at most one
    // hop per round, plus one no-change round to detect convergence.
    let mut watchdog = state.watchdog("multistep-coloring", state.g.num_nodes() + 1);
    loop {
        if watchdog.check().is_some() {
            // Mid-fixpoint labels are unusable for collection; the engine
            // polls the interrupt and surfaces the abort.
            return 0;
        }
        let changed = AtomicBool::new(false);
        alive.par_iter().for_each(|&v| {
            let cv = state.color(v);
            // ordering: monotone fetch_max convergence — labels only
            // increase, a stale read defers the update to a later sweep,
            // fetch_max never loses the larger value, and the sticky
            // `changed` flag is read only after the sweep's join.
            let mut max = labels[v as usize].load(Ordering::Relaxed);
            state.g.for_each_neighbor(Direction::Backward, v, |u| {
                if u != v && state.color(u) == cv {
                    max = max.max(labels[u as usize].load(Ordering::Relaxed));
                }
            });
            if max > labels[v as usize].load(Ordering::Relaxed) {
                labels[v as usize].fetch_max(max, Ordering::Relaxed);
                changed.store(true, Ordering::Relaxed);
            }
        });
        // ordering: read after the par_iter join above.
        if !changed.load(Ordering::Relaxed) {
            break;
        }
    }
    let resolved = AtomicUsize::new(0);
    // ordering: fixpoint reached; final labels were published by the
    // sweep joins, so root selection races with nothing.
    let roots: Vec<NodeId> = alive
        .par_iter()
        .copied()
        .filter(|&v| labels[v as usize].load(Ordering::Relaxed) == v)
        .collect();
    roots.par_iter().for_each(|&r| {
        let comp = state.alloc_component();
        let cr = state.color(r);
        state.resolve_into(r, comp);
        // ordering: statistic counter — exactness from RMW atomicity,
        // published by the join before the load below.
        resolved.fetch_add(1, Ordering::Relaxed);
        let mut stack = vec![r];
        while let Some(v) = stack.pop() {
            state.g.for_each_neighbor(Direction::Backward, v, |u| {
                // ordering: frozen label classes (see roots above); the
                // counter argument is as above.
                if u != v && state.color(u) == cr && labels[u as usize].load(Ordering::Relaxed) == r
                {
                    state.resolve_into(u, comp);
                    resolved.fetch_add(1, Ordering::Relaxed);
                    stack.push(u);
                }
            });
        }
    });
    // ordering: read after the par_iter join.
    resolved.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tarjan::tarjan_scc;
    use crate::Algorithm;

    #[test]
    fn stage_names_round_trip() {
        for s in Stage::all() {
            assert_eq!(Stage::from_name(s.name()), Some(s));
        }
        assert_eq!(Stage::from_name("bogus"), None);
    }

    #[test]
    fn stock_table_covers_the_five_drivers() {
        for algo in [
            Algorithm::Baseline,
            Algorithm::Method1,
            Algorithm::Method2,
            Algorithm::Coloring,
            Algorithm::Multistep,
        ] {
            let p = Pipeline::stock(algo).expect("stock pipeline");
            assert!(p.stages().last().unwrap().is_terminal());
        }
        for algo in [
            Algorithm::Tarjan,
            Algorithm::Kosaraju,
            Algorithm::Pearce,
            Algorithm::FwBw,
        ] {
            assert!(Pipeline::stock(algo).is_none());
        }
    }

    #[test]
    fn stock_method2_matches_paper_composition() {
        let p = Pipeline::stock(Algorithm::Method2).unwrap();
        assert_eq!(
            p.stages(),
            &[
                Stage::Trim,
                Stage::Fwbw,
                Stage::Trim,
                Stage::Trim2,
                Stage::Trim,
                Stage::Wcc,
                Stage::Tasks
            ]
        );
        assert_eq!(p.default_k(), METHOD2_K);
        assert_eq!(
            Pipeline::stock(Algorithm::Baseline).unwrap().default_k(),
            BASELINE_K
        );
    }

    #[test]
    fn parse_round_trips_display() {
        let p = Pipeline::parse("trim, fwbw ,trim2,wcc,tasks").unwrap();
        assert_eq!(p.to_string(), "trim,fwbw,trim2,wcc,tasks");
        assert_eq!(Pipeline::parse(&p.to_string()).unwrap(), p);
    }

    #[test]
    fn legality_rules_reject_nonsense() {
        assert_eq!(Pipeline::parse(""), Err(PipelineError::Empty));
        assert_eq!(
            Pipeline::parse("trim,bogus,tasks"),
            Err(PipelineError::UnknownStage("bogus".into()))
        );
        assert_eq!(
            Pipeline::parse("trim"),
            Err(PipelineError::NotTerminal(Stage::Trim))
        );
        assert_eq!(
            Pipeline::parse("trim,wcc"),
            Err(PipelineError::NotTerminal(Stage::Wcc))
        );
        assert_eq!(
            Pipeline::parse("tasks,trim,tasks"),
            Err(PipelineError::TerminalNotLast(Stage::Tasks))
        );
        assert_eq!(
            Pipeline::parse("coloring,tasks"),
            Err(PipelineError::TerminalNotLast(Stage::Coloring))
        );
        assert_eq!(
            Pipeline::parse("multisearch,tasks"),
            Err(PipelineError::TerminalNotLast(Stage::Multisearch))
        );
        assert_eq!(
            Pipeline::parse("wcc,fwbw,tasks"),
            Err(PipelineError::PeelAfterRepartition {
                peel: Stage::Fwbw,
                after: Stage::Wcc
            })
        );
        assert_eq!(
            Pipeline::parse("trim,colortail,peel,serial"),
            Err(PipelineError::PeelAfterRepartition {
                peel: Stage::Peel,
                after: Stage::ColorTail
            })
        );
    }

    #[test]
    fn errors_display_actionably() {
        let e = Pipeline::parse("trim,frobnicate,tasks").unwrap_err();
        let text = e.to_string();
        assert!(text.contains("frobnicate"));
        assert!(text.contains("trim"), "lists available stages");
    }

    #[test]
    fn custom_composition_matches_tarjan() {
        let g = CsrGraph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (0, 3),
                (3, 4),
                (4, 3),
                (4, 5),
                (5, 6),
                (6, 5),
                (0, 7),
            ],
        );
        for spec in [
            "tasks",
            "serial",
            "trim,fwbw,trim2,wcc,tasks",
            "coloring",
            "multisearch",
            "trim,fwbw,peel,multisearch",
        ] {
            let p = Pipeline::parse(spec).unwrap();
            let (r, report) =
                run_pipeline(&g, &p, &SccConfig::with_threads(2), &RunGuard::new()).unwrap();
            assert_eq!(
                r.canonical_labels(),
                tarjan_scc(&g).canonical_labels(),
                "pipeline {spec:?} disagrees with tarjan"
            );
            let resolved: usize = report.phase_resolved.iter().map(|(_, n)| n).sum();
            assert_eq!(resolved, g.num_nodes(), "pipeline {spec:?} loses nodes");
        }
    }

    #[test]
    fn wcc_groups_hand_off_to_tasks() {
        // two disjoint 3-cycles: wcc splits them into two work items
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let p = Pipeline::parse("wcc,tasks").unwrap();
        let (r, report) =
            run_pipeline(&g, &p, &SccConfig::with_threads(1), &RunGuard::new()).unwrap();
        assert_eq!(r.num_components(), 2);
        assert_eq!(report.initial_tasks, 2);
    }
}
