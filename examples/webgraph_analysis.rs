//! Bow-tie decomposition of a synthetic web graph.
//!
//! Broder et al.'s classic result (reference \[11\] of the paper) decomposes
//! the web into a giant SCC ("CORE"), the pages that can reach it ("IN"),
//! the pages reachable from it ("OUT"), and the rest ("TENDRILS &
//! DISCONNECTED"). This example runs the paper's Method 2 to find the SCCs
//! of a LiveJournal-analog web graph, then classifies every node with two
//! BFS passes from the giant component.
//!
//! ```text
//! cargo run --release --example webgraph_analysis
//! ```

use swscc::graph::bfs::{bfs_levels, Direction, UNREACHED};
use swscc::graph::datasets::Dataset;
use swscc::{detect_scc, Algorithm, SccConfig};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    println!("generating livej analog at scale {scale}…");
    let g = Dataset::Livej.generate(scale, 42);
    println!("  {} nodes, {} edges", g.num_nodes(), g.num_edges());

    let cfg = SccConfig::default();
    let (scc, report) = detect_scc(&g, Algorithm::Method2, &cfg);
    println!(
        "SCC detection: {} components in {:?}",
        scc.num_components(),
        report.total_time
    );

    // The CORE is the largest SCC.
    let sizes = scc.component_sizes();
    let (core_id, &core_size) = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| s)
        .expect("non-empty graph");
    let core_rep = (0..g.num_nodes() as u32)
        .find(|&v| scc.component(v) == core_id as u32)
        .expect("core member exists");

    // IN = reaches the core; OUT = reachable from the core.
    let fw = bfs_levels(&g, core_rep, Direction::Forward);
    let bw = bfs_levels(&g, core_rep, Direction::Backward);
    let (mut n_core, mut n_in, mut n_out, mut n_rest) = (0usize, 0usize, 0usize, 0usize);
    for v in 0..g.num_nodes() {
        let in_core = scc.component(v as u32) == core_id as u32;
        let fwd = fw[v] != UNREACHED;
        let back = bw[v] != UNREACHED;
        if in_core {
            n_core += 1;
        } else if back {
            n_in += 1; // v reaches the core
        } else if fwd {
            n_out += 1; // core reaches v
        } else {
            n_rest += 1;
        }
    }
    assert_eq!(n_core, core_size);

    let n = g.num_nodes() as f64;
    println!("\nbow-tie decomposition:");
    println!(
        "  CORE     {:>9} ({:>5.1}%)",
        n_core,
        100.0 * n_core as f64 / n
    );
    println!("  IN       {:>9} ({:>5.1}%)", n_in, 100.0 * n_in as f64 / n);
    println!(
        "  OUT      {:>9} ({:>5.1}%)",
        n_out,
        100.0 * n_out as f64 / n
    );
    println!(
        "  TENDRILS {:>9} ({:>5.1}%)",
        n_rest,
        100.0 * n_rest as f64 / n
    );

    println!("\nSCC size histogram (log-binned):");
    for (lo, count) in scc.size_histogram().log_binned() {
        println!("  size ≥ {lo:>8}: {count:>8} SCCs");
    }
}
