//! Criterion benchmarks: incremental SCC maintenance (the `incremental`
//! groups — the target is `incr` only because cargo reserves the name
//! `incremental` for its build directory).
//!
//! Two groups on an rmat-s14 fabric:
//!
//! 1. `incremental/mutation` — the three single-mutation paths at their
//!    smallest honest residue: an in-order cross insert (O(1) after the
//!    priority check), a residue-2 back-edge merge, and a residue-2
//!    delete repair. Each iteration runs the full round trip so the
//!    engine returns to its starting partition and iterations stay
//!    independent.
//! 2. `incremental/recompute` — `rebuild()` on the same engine, the
//!    baseline every maintained mutation is amortizing away.
//!
//! The headline p50/p99-vs-recompute artifact (and the 10x acceptance
//! gate on rmat-s18) lives in the `incr_latency` bin; these groups are
//! the statistically-sampled counterpart at a scale criterion can
//! afford to iterate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use swscc_core::incremental::{IncrementalEngine, MutationOutcome};
use swscc_core::{Algorithm, Pipeline, RunGuard, SccConfig};
use swscc_graph::gen::rmat::{rmat, RmatConfig};
use swscc_graph::{CsrGraph, DeltaGraph};

/// Engine over rmat-s14 plus two isolated nodes (guaranteed by
/// extending the node range past anything rmat touched) — the minimal
/// residue for controlled merge/repair, immune to base-path widening.
fn engine_with_spares() -> (IncrementalEngine<CsrGraph>, RunGuard, u32, u32) {
    let g = rmat(&RmatConfig::graph500(14, 8, 0x5cc));
    let n = g.num_nodes();
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let padded = CsrGraph::from_edges(n + 2, &edges);
    let guard = RunGuard::new();
    let pipeline = Pipeline::stock(Algorithm::Method2).unwrap();
    let engine = IncrementalEngine::new(
        DeltaGraph::new(padded),
        pipeline,
        SccConfig::with_threads(2),
        &guard,
    )
    .unwrap();
    (engine, guard, n as u32, n as u32 + 1)
}

fn bench_mutation(c: &mut Criterion) {
    let (mut engine, guard, u, v) = engine_with_spares();
    let mut group = c.benchmark_group("incremental/mutation");
    group.sample_size(10);

    group.bench_function("insert-in-order", |b| {
        b.iter(|| {
            let out = engine.insert_edge(u, v, &guard).unwrap();
            assert!(matches!(
                out,
                MutationOutcome::InOrder | MutationOutcome::Reordered
            ));
            engine.delete_edge(u, v, &guard).unwrap();
            black_box(engine.num_components())
        })
    });

    // Merge measured with the forward edge pre-staged: the timed call
    // is exactly one back-edge merge, the rest is cleanup.
    group.bench_function("merge-residue2", |b| {
        b.iter(|| {
            engine.insert_edge(u, v, &guard).unwrap();
            let out = engine.insert_edge(v, u, &guard).unwrap();
            assert!(matches!(out, MutationOutcome::Merged { .. }));
            engine.delete_edge(v, u, &guard).unwrap();
            engine.delete_edge(u, v, &guard).unwrap();
            black_box(engine.num_components())
        })
    });

    group.bench_function("delete-repair-residue2", |b| {
        b.iter(|| {
            engine.insert_edge(u, v, &guard).unwrap();
            engine.insert_edge(v, u, &guard).unwrap();
            let out = engine.delete_edge(v, u, &guard).unwrap();
            assert!(matches!(out, MutationOutcome::Repaired { .. }));
            engine.delete_edge(u, v, &guard).unwrap();
            black_box(engine.num_components())
        })
    });
    group.finish();
}

fn bench_recompute(c: &mut Criterion) {
    let (mut engine, guard, _, _) = engine_with_spares();
    let mut group = c.benchmark_group("incremental/recompute");
    group.sample_size(10);
    group.bench_function("full-rebuild", |b| {
        b.iter(|| {
            engine.rebuild(&guard).unwrap();
            black_box(engine.num_components())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mutation, bench_recompute);
criterion_main!(benches);
