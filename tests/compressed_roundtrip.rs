//! Round-trip battery for the compressed CSR backend (the VarInt
//! byte-delta encoding behind `--compressed`).
//!
//! Three layers:
//!
//! 1. **Encoding round-trip** — proptest over adversarial adjacency
//!    shapes (empty lists, self-loops, duplicate edges, max-id deltas):
//!    `CompressedCsr::from_csr` must reproduce every neighbor list
//!    byte-for-byte through the `GraphView` decode path, and the
//!    streaming `has_edge` probe must agree with the raw binary search.
//!    This battery is the validation anchor for [inv:varint-validated]:
//!    the unchecked VarInt decode in `crates/graph/src/compressed.rs` is
//!    sound because every byte stream it reads was produced by
//!    `push_list` (exhaustively exercised here) or admitted by
//!    `validate()` on untrusted input.
//! 2. **Streaming construction** — `from_edge_stream` must be invariant
//!    in the shard count and equal the `GraphBuilder` (dedup +
//!    drop-self-loops) semantics on random edge streams.
//! 3. **Binary I/O** — `write_compressed`/`read_compressed` identity on
//!    random graphs, plus the rmat/bowtie/grid corpus the pipelines run
//!    on (compression ratio asserted on the small-world shapes).

use proptest::prelude::*;
use swscc::graph::gen::bowtie::{bowtie, BowtieConfig};
use swscc::graph::gen::grid::{road_grid, RoadGridConfig};
use swscc::graph::gen::rmat::{rmat, RmatConfig};
use swscc::graph::io::{read_compressed, write_compressed};
use swscc::graph::{bfs::Direction, CompressedCsr, CsrGraph, GraphView};

/// Neighbor-for-neighbor equivalence across both directions, plus the
/// degree and membership surfaces.
fn assert_backends_equivalent(g: &CsrGraph, z: &CompressedCsr, label: &str) {
    assert_eq!(g.num_nodes(), z.num_nodes(), "{label}: node count");
    assert_eq!(g.num_edges(), z.num_edges(), "{label}: edge count");
    for v in g.nodes() {
        for dir in [Direction::Forward, Direction::Backward] {
            let want: &[u32] = match dir {
                Direction::Forward => g.out_neighbors(v),
                Direction::Backward => g.in_neighbors(v),
            };
            assert_eq!(
                z.degree(dir, v),
                want.len(),
                "{label}: degree({dir:?}, {v})"
            );
            let mut got = Vec::with_capacity(want.len());
            z.for_each_neighbor(dir, v, |u| got.push(u));
            assert_eq!(got, want, "{label}: neighbors({dir:?}, {v})");
        }
    }
}

/// Random graph that deliberately keeps self-loops and duplicate edges
/// (`CsrGraph::from_edges` preserves both; `from_csr` must too).
fn arb_graph(max_n: usize) -> impl Strategy<Value = CsrGraph> {
    (1..max_n).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..6 * n)
            .prop_map(move |edges| CsrGraph::from_edges(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// from_csr ≡ raw, neighbor for neighbor, on arbitrary multigraphs.
    #[test]
    fn encode_decode_round_trips(g in arb_graph(80)) {
        let z = CompressedCsr::from_csr(&g);
        assert_backends_equivalent(&g, &z, "arb");
    }

    /// The trait-default streaming membership probe must agree with the
    /// raw CSR's binary search on every possible pair.
    #[test]
    fn has_edge_probe_agrees(g in arb_graph(24)) {
        let z = CompressedCsr::from_csr(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(z.has_edge(u, v), g.has_edge(u, v), "({}, {})", u, v);
            }
        }
    }

    /// Streaming construction is shard-invariant and implements the
    /// builder's dedup + drop-self-loop semantics.
    #[test]
    fn edge_stream_matches_builder(
        n in 1usize..60,
        edges in proptest::collection::vec((0u32..60, 0u32..60), 0..200),
        shards in 1usize..12,
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .collect();
        let mut b = swscc::GraphBuilder::new(n);
        b.extend(edges.iter().copied());
        let want = b.build();
        let z = CompressedCsr::from_edge_stream(n, shards, |emit| {
            for &(u, v) in &edges {
                emit(u, v);
            }
        });
        assert_backends_equivalent(&want, &z, "stream");
    }

    /// write_compressed → read_compressed is the identity.
    #[test]
    fn io_round_trips(g in arb_graph(60)) {
        let z = CompressedCsr::from_csr(&g);
        let mut buf = Vec::new();
        write_compressed(&z, &mut buf).unwrap();
        let z2 = read_compressed(buf.as_slice()).unwrap();
        assert_backends_equivalent(&g, &z2, "io");
    }
}

#[test]
fn adversarial_shapes_round_trip() {
    let cases: Vec<(&str, CsrGraph)> = vec![
        ("empty", CsrGraph::from_edges(0, &[])),
        ("isolated", CsrGraph::from_edges(5, &[])),
        (
            "self-loops",
            CsrGraph::from_edges(3, &[(0, 0), (1, 1), (2, 2)]),
        ),
        (
            "duplicates",
            CsrGraph::from_edges(4, &[(0, 1), (0, 1), (0, 1), (3, 2), (3, 2)]),
        ),
        (
            // First-neighbor deltas at both sign extremes: the max node
            // points at 0 (large negative zigzag), node 0 points at the
            // max id (large positive delta).
            "max-id-deltas",
            CsrGraph::from_edges(
                1 << 20,
                &[
                    (0, (1 << 20) - 1),
                    ((1 << 20) - 1, 0),
                    (0, 1),
                    (1, (1 << 20) - 1),
                ],
            ),
        ),
        (
            "hub",
            CsrGraph::from_edges(1000, &(1..1000u32).map(|v| (0, v)).collect::<Vec<_>>()),
        ),
    ];
    for (label, g) in cases {
        let z = CompressedCsr::from_csr(&g);
        assert_backends_equivalent(&g, &z, label);
        let mut buf = Vec::new();
        write_compressed(&z, &mut buf).unwrap();
        assert_backends_equivalent(&g, &read_compressed(buf.as_slice()).unwrap(), label);
    }
}

/// The corpus the pipelines actually run on: RMAT skew, bowtie SCC
/// structure, planar road grid. Equivalence plus the compression-ratio
/// contract on the small-world shapes (clustered ids, small deltas).
#[test]
fn corpus_round_trips_and_compresses() {
    let corpus: Vec<(&str, CsrGraph, bool)> = vec![
        ("rmat-s10", rmat(&RmatConfig::graph500(10, 8, 0x5cc)), true),
        (
            "bowtie-2000",
            bowtie(&BowtieConfig {
                num_nodes: 2000,
                ..Default::default()
            })
            .graph,
            true,
        ),
        (
            "grid-40x40",
            road_grid(&RoadGridConfig {
                width: 40,
                height: 40,
                one_way_frac: 0.2,
                missing_frac: 0.05,
                seed: 7,
            }),
            true,
        ),
    ];
    for (label, g, expect_small) in corpus {
        let z = CompressedCsr::from_csr(&g);
        assert_backends_equivalent(&g, &z, label);
        let mut buf = Vec::new();
        write_compressed(&z, &mut buf).unwrap();
        assert_backends_equivalent(&g, &read_compressed(buf.as_slice()).unwrap(), label);
        if expect_small {
            let ratio = z.memory_footprint().ratio_vs_raw();
            assert!(
                ratio < 0.6,
                "{label}: compressed backend is {:.1}% of raw, want < 60%",
                ratio * 100.0
            );
        }
    }
}
