//! Analog registry for the paper's nine evaluation datasets (Table 1).
//!
//! The original graphs (LiveJournal … CA-road, up to 1.8B edges) are not
//! redistributable or downloadable in this environment, so each entry here
//! generates a scaled-down synthetic analog of the same *structural class*,
//! with the bow-tie parameters tuned to the Table 1 ratios that drive the
//! paper's analysis:
//!
//! * `giant_frac` = largest-SCC size / node count from Table 1,
//! * density (edges per node) from Table 1,
//! * Patents is a pure citation DAG (every SCC is size 1 — §5),
//! * CA-road is a planar lattice with huge diameter and many mid-sized
//!   SCCs (§5's negative case).
//!
//! The benchmark harness consumes datasets through this registry. If the
//! real SNAP/KONECT files are available, set the environment variable
//! `SWSCC_DATA_DIR` to a directory containing `<name>.txt` edge lists and
//! [`Dataset::load`] will use them instead of generating an analog.

use crate::csr::CsrGraph;
use crate::gen::{bowtie, citation_dag, road_grid, BowtieConfig, CitationConfig, RoadGridConfig};

/// Identifier of one of the paper's nine Table 1 datasets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// LiveJournal links (web/social), giant SCC 79% of N.
    Livej,
    /// Flickr user connections (social), giant SCC 70%.
    Flickr,
    /// Baidu encyclopedia links (web), giant SCC 28%.
    Baidu,
    /// English Wikipedia links (web), giant SCC 31%.
    Wiki,
    /// Friendster (social, undirected original), giant SCC 38%.
    Friend,
    /// Twitter follower graph (social), giant SCC 80%.
    Twitter,
    /// Orkut (social, undirected original), giant SCC 96%.
    Orkut,
    /// US patent citations: a DAG, largest SCC size 1.
    Patents,
    /// California road network: planar, diameter ~850.
    CaRoad,
}

impl Dataset {
    /// All nine datasets, in Table 1 order.
    pub fn all() -> [Dataset; 9] {
        [
            Dataset::Livej,
            Dataset::Flickr,
            Dataset::Baidu,
            Dataset::Wiki,
            Dataset::Friend,
            Dataset::Twitter,
            Dataset::Orkut,
            Dataset::Patents,
            Dataset::CaRoad,
        ]
    }

    /// The seven small-world instances (everything but Patents and CA-road).
    pub fn small_world() -> [Dataset; 7] {
        [
            Dataset::Livej,
            Dataset::Flickr,
            Dataset::Baidu,
            Dataset::Wiki,
            Dataset::Friend,
            Dataset::Twitter,
            Dataset::Orkut,
        ]
    }

    /// Short name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Livej => "livej",
            Dataset::Flickr => "flickr",
            Dataset::Baidu => "baidu",
            Dataset::Wiki => "wiki",
            Dataset::Friend => "friend",
            Dataset::Twitter => "twitter",
            Dataset::Orkut => "orkut",
            Dataset::Patents => "patents",
            Dataset::CaRoad => "ca-road",
        }
    }

    /// Parses a dataset name (as printed by [`Dataset::name`]).
    pub fn from_name(s: &str) -> Option<Dataset> {
        Dataset::all().into_iter().find(|d| d.name() == s)
    }

    /// One-line description mirroring Table 1.
    pub fn description(self) -> &'static str {
        match self {
            Dataset::Livej => "Links in LiveJournal (Web)",
            Dataset::Flickr => "Connection of Flickr users (Social)",
            Dataset::Baidu => "Links in Baidu Chinese online encyclopedia (Web)",
            Dataset::Wiki => "Links in English Wikipedia (Web)",
            Dataset::Friend => "Connection of Friendster users (Social)*",
            Dataset::Twitter => "Connection of Twitter users (Social)",
            Dataset::Orkut => "Connection of Orkut users (Social)*",
            Dataset::Patents => "Citation among US Patents",
            Dataset::CaRoad => "Road network of California*",
        }
    }

    /// Fraction of nodes in the giant SCC per Table 1 (largest SCC / nodes).
    /// `0.0` for Patents (largest SCC has size 1).
    pub fn table1_giant_frac(self) -> f64 {
        match self {
            Dataset::Livej => 0.79,
            Dataset::Flickr => 0.70,
            Dataset::Baidu => 0.28,
            Dataset::Wiki => 0.31,
            Dataset::Friend => 0.38,
            Dataset::Twitter => 0.80,
            Dataset::Orkut => 0.96,
            Dataset::Patents => 0.0,
            Dataset::CaRoad => 0.59,
        }
    }

    /// Default analog node count at scale 1.0. Chosen so the full harness
    /// sweep finishes in minutes on a laptop; pass a larger scale to the
    /// generator for bigger runs.
    pub fn base_nodes(self) -> usize {
        match self {
            Dataset::Livej => 120_000,
            Dataset::Flickr => 80_000,
            Dataset::Baidu => 80_000,
            Dataset::Wiki => 150_000,
            Dataset::Friend => 200_000,
            Dataset::Twitter => 150_000,
            Dataset::Orkut => 100_000,
            Dataset::Patents => 120_000,
            Dataset::CaRoad => 90_000, // 300 x 300 lattice
        }
    }

    /// Generates the synthetic analog at the given size multiplier.
    /// Deterministic for a given `(dataset, scale, seed)`.
    pub fn generate(self, scale: f64, seed: u64) -> CsrGraph {
        let n = ((self.base_nodes() as f64 * scale) as usize).max(64);
        match self {
            Dataset::Patents => citation_dag(&CitationConfig {
                num_nodes: n,
                citations_per_node: 4,
                recency_frac: 0.7,
                recency_window: 0.1,
                seed,
            }),
            Dataset::CaRoad => {
                let side = (n as f64).sqrt() as usize;
                road_grid(&RoadGridConfig {
                    width: side,
                    height: side,
                    one_way_frac: 0.8,
                    missing_frac: 0.12,
                    seed,
                })
            }
            _ => bowtie(&self.bowtie_config(n, seed)).graph,
        }
    }

    /// The bow-tie configuration for a small-world dataset analog.
    ///
    /// # Panics
    ///
    /// Panics for `Patents` and `CaRoad`, which are not bow-tie graphs.
    pub fn bowtie_config(self, num_nodes: usize, seed: u64) -> BowtieConfig {
        // Density (edges/node) from Table 1, capped for the analogs:
        // livej 14.2, flickr 14.4, baidu 8.3, wiki 8.6, friend 14.5,
        // twitter 35.3 (capped to 16), orkut 3.8.
        let (core_edge_factor, trivial_frac, inter_sat_prob, sat_alpha) = match self {
            Dataset::Livej => (14, 0.80, 0.35, 2.5),
            Dataset::Flickr => (14, 0.55, 0.45, 2.2),
            Dataset::Baidu => (8, 0.45, 0.45, 2.1),
            Dataset::Wiki => (8, 0.75, 0.30, 2.4),
            Dataset::Friend => (14, 0.70, 0.25, 2.5),
            Dataset::Twitter => (16, 0.60, 0.40, 2.3),
            Dataset::Orkut => (4, 0.85, 0.20, 2.6),
            Dataset::Patents | Dataset::CaRoad => {
                panic!("{} is not a bow-tie dataset", self.name())
            }
        };
        BowtieConfig {
            num_nodes,
            giant_frac: self.table1_giant_frac(),
            core_edge_factor,
            sat_alpha,
            sat_max_size: (num_nodes / 100).max(8) as u64,
            trivial_frac,
            two_cycle_chains: num_nodes / 1000,
            chain_len: 3,
            inter_sat_prob,
            attach_edges: 2,
            hub_gamma: 2.0,
            seed,
        }
    }

    /// Loads this dataset: the real SNAP edge list from
    /// `$SWSCC_DATA_DIR/<name>.txt` if present, otherwise the synthetic
    /// analog at the given scale.
    pub fn load(self, scale: f64, seed: u64) -> CsrGraph {
        if let Ok(dir) = std::env::var("SWSCC_DATA_DIR") {
            let path = std::path::Path::new(&dir).join(format!("{}.txt", self.name()));
            if path.exists() {
                if let Ok(g) = crate::io::load_edge_list(&path) {
                    return g;
                }
            }
        }
        self.generate(scale, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for d in Dataset::all() {
            assert_eq!(Dataset::from_name(d.name()), Some(d));
        }
        assert_eq!(Dataset::from_name("nope"), None);
    }

    #[test]
    fn all_generate_at_tiny_scale() {
        for d in Dataset::all() {
            let g = d.generate(0.02, 1);
            assert!(g.num_nodes() >= 64, "{}", d.name());
            assert!(g.num_edges() > 0, "{}", d.name());
        }
    }

    #[test]
    fn small_world_subset() {
        let sw = Dataset::small_world();
        assert_eq!(sw.len(), 7);
        assert!(!sw.contains(&Dataset::Patents));
        assert!(!sw.contains(&Dataset::CaRoad));
    }

    #[test]
    fn patents_analog_is_acyclic() {
        let g = Dataset::Patents.generate(0.05, 3);
        assert!(g.edges().all(|(u, v)| v < u));
    }

    #[test]
    fn generation_deterministic() {
        let a: Vec<_> = Dataset::Flickr.generate(0.02, 5).edges().collect();
        let b: Vec<_> = Dataset::Flickr.generate(0.02, 5).edges().collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "not a bow-tie dataset")]
    fn bowtie_config_rejects_patents() {
        Dataset::Patents.bowtie_config(1000, 1);
    }

    #[test]
    fn load_prefers_real_file_from_data_dir() {
        // Drop a tiny "real" orkut.txt into a temp SWSCC_DATA_DIR: load()
        // must pick it up instead of generating the analog.
        let dir = std::env::temp_dir().join("swscc_data_dir_test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        crate::io::save_edge_list(&g, dir.join("orkut.txt")).unwrap();
        // set_var is process-global; this is the only test using this var
        std::env::set_var("SWSCC_DATA_DIR", &dir);
        let loaded = Dataset::Orkut.load(1.0, 42);
        std::env::remove_var("SWSCC_DATA_DIR");
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(loaded.num_nodes(), 3, "real file must win over the analog");
        assert!(loaded.has_edge(2, 0));
        // other datasets (no file present) still generate analogs
        let analog = Dataset::Flickr.load(0.02, 42);
        assert!(analog.num_nodes() > 100);
    }
}
