//! Method 1 (Algorithm 6): two-phase parallelization.
//!
//! §3.2: the giant SCC makes the conventional FW-BW-Trim workload-
//! imbalanced — one thread grinds through the O(N)-sized SCC while the
//! rest idle. Method 1 splits execution into
//!
//! 1. a **data-parallel** phase (Par-Trim, then Par-FWBW peeling the giant
//!    SCC with parallel BFS, then Par-Trim again — the peel exposes new
//!    trimming opportunities), and
//! 2. the conventional **task-parallel** recursive phase over the work
//!    queue (K = 1).

use crate::config::SccConfig;
use crate::error::{RunGuard, SccError};
use crate::instrument::RunReport;
use crate::pipeline::{run_pipeline, Pipeline};
use crate::result::SccResult;
use swscc_graph::CsrGraph;

/// Paper default work-queue batch size for Method 1 (§4.3).
pub const METHOD1_K: usize = 1;

/// Runs Algorithm 6 (legacy entry point; see
/// [`method1_scc_checked`] for the cancellable form).
pub fn method1_scc(g: &CsrGraph, cfg: &SccConfig) -> (SccResult, RunReport) {
    method1_scc_checked(g, cfg, &RunGuard::new())
        .expect("method1 run with a fresh guard cannot abort")
}

/// Runs Algorithm 6 under `guard`: cancellable, deadline-aware, and
/// panic-isolating (policy [`crate::SccConfig::on_panic`]). The stage
/// list is `trim,fwbw,trim,tasks` — the post-peel trim ("the algorithm
/// applies parallel Trim once more after the Par-FWBW step", §3.2) is
/// attributed to the Par-Trim′ segment per the Fig. 7 caption.
pub fn method1_scc_checked(
    g: &CsrGraph,
    cfg: &SccConfig,
    guard: &RunGuard,
) -> Result<(SccResult, RunReport), SccError> {
    run_pipeline(
        g,
        &Pipeline::stock(crate::Algorithm::Method1).unwrap(),
        cfg,
        guard,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::Phase;
    use crate::tarjan::tarjan_scc;

    fn check(g: &CsrGraph, threads: usize) {
        let cfg = SccConfig::with_threads(threads);
        let (r, report) = method1_scc(g, &cfg);
        assert_eq!(
            r.canonical_labels(),
            tarjan_scc(g).canonical_labels(),
            "method1 disagrees with tarjan ({threads} threads)"
        );
        let resolved: usize = report.phase_resolved.iter().map(|(_, n)| n).sum();
        assert_eq!(resolved, g.num_nodes());
    }

    #[test]
    fn correct_on_bowtie_shape() {
        // giant 5-cycle, IN node, OUT node, 2-cycle satellite
        let g = CsrGraph::from_edges(
            9,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 0),
                (5, 0), // IN
                (4, 6), // OUT
                (6, 7),
                (7, 8),
                (8, 7),
            ],
        );
        for threads in [1, 2, 4] {
            check(&g, threads);
        }
    }

    #[test]
    fn giant_scc_resolved_in_parallel_phase() {
        // 50-cycle dominates a 100-node graph: Par-FWBW must claim it.
        let mut edges: Vec<(u32, u32)> = (0..50u32).map(|i| (i, (i + 1) % 50)).collect();
        for i in 50..100u32 {
            edges.push((0, i)); // OUT tendrils
        }
        let g = CsrGraph::from_edges(100, &edges);
        let (r, report) = method1_scc(&g, &SccConfig::with_threads(2));
        assert_eq!(r.largest_component_size(), 50);
        assert_eq!(report.resolved_in(Phase::ParFwbw), 50);
        // tendrils go to the first trim
        assert_eq!(report.resolved_in(Phase::ParTrim), 50);
        assert!(report.fwbw_trials >= 1);
    }

    #[test]
    fn correct_on_random_graphs() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(43);
        for trial in 0..10 {
            let n = rng.random_range(1..150usize);
            let m = rng.random_range(0..5 * n);
            let edges: Vec<_> = (0..m)
                .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
                .collect();
            let g = CsrGraph::from_edges(n, &edges);
            check(&g, 1 + trial % 4);
        }
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        let (r, _) = method1_scc(&g, &SccConfig::with_threads(2));
        assert_eq!(r.num_components(), 0);
    }

    #[test]
    fn post_peel_trim_fires() {
        // cycle {0,1,2} + chain hanging INTO the cycle: 3 -> 4 -> 0.
        // Node 3 trims in the first Par-Trim (in-degree 0), then 4.
        // After the peel there is nothing left — but build a shape where
        // the peel *creates* trim work: two nodes 5,6 with 5 -> 6, both
        // also on paths through the cycle: 0 -> 5, 6 -> 0... that makes a
        // larger SCC; instead hang them BETWEEN fw/bw sets:
        //   giant = {0,1,2}; 0 -> 5 -> 6 -> (nothing)
        // 5,6 trim in the FIRST trim already (out-degree chain)… so use:
        //   5 <-> 6 pair reachable from giant: survives trim & peel,
        //   resolved in phase 2.
        let g = CsrGraph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (0, 5),
                (5, 6),
                (6, 5),
                (3, 4),
                (4, 0),
            ],
        );
        let (r, report) = method1_scc(&g, &SccConfig::with_threads(2));
        // components: giant {0,1,2}, pair {5,6}, singletons {3} and {4}
        assert_eq!(r.num_components(), 4);
        let sizes = {
            let mut s = r.component_sizes();
            s.sort_unstable();
            s
        };
        assert_eq!(sizes, vec![1, 1, 2, 3]);
        let total: usize = report.phase_resolved.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 7);
    }
}
