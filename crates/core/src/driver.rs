//! Shared machinery of the checked (`*_scc_checked`) driver entry points:
//! interrupt checks at phase boundaries, panic capture around the
//! data-parallel phases, and the work-queue retry/degrade/restart policy.
//!
//! # Recovery soundness
//!
//! Two situations after a caught panic, with very different options:
//!
//! * **Boundary-consistent** — the panic fired at the work-queue task
//!   boundary, before the handler touched any shared state. Every
//!   *completed* task resolved a whole SCC, so the resolved/unresolved
//!   split respects SCC boundaries and the residue can be finished by any
//!   correct SCC algorithm (we use sequential Tarjan on the induced
//!   subgraph). The failed task itself is intact and can simply be
//!   re-queued.
//! * **Dirty** — the panic fired *inside* a task or a data-parallel
//!   kernel. A FW∩BW sweep may have resolved only part of an SCC, so the
//!   residue's SCCs no longer match the input's: finishing the residue
//!   would split that SCC. The only sound recovery is to discard all
//!   shared state and redo the whole input from scratch (sequential
//!   Tarjan on the original graph).
//!
//! The policy knob [`PanicPolicy`] selects between these recoveries
//! (`Fallback`, the default) and propagating a typed
//! [`SccError::WorkerPanic`] (`Fail`).

use crate::config::{PanicPolicy, SccConfig};
use crate::error::{RunGuard, SccError};
use crate::fwbw::recursive::{process_task, RecurContext, Task};
use crate::instrument::{Collector, RecoveryEvent, RunReport};
use crate::result::SccResult;
use crate::state::AlgoState;
use crate::tarjan::tarjan_scc;
use swscc_graph::GraphView;
use swscc_parallel::{AbortCause, QueueStats, TwoLevelQueue};

/// How a checked driver's internal step failed.
pub(crate) enum DriverError {
    /// A clean typed failure to propagate to the caller.
    Fatal(SccError),
    /// A dirty panic under [`PanicPolicy::Fallback`]: the caller must
    /// discard the whole [`AlgoState`] and restart sequentially from the
    /// input graph (see [`recover_full_restart`]).
    DirtyRestart(String),
}

/// Successful outcome of [`run_queue_with_recovery`].
pub(crate) struct QueueResolution {
    /// Cumulative queue statistics (across retries, if any).
    pub stats: QueueStats,
    /// Nodes resolved during the queue phase, including a sequential
    /// residue finish if retries were exhausted.
    pub resolved: usize,
}

/// Polls the guard's token once — used before entering an algorithm that
/// cannot be interrupted mid-run (the sequential oracles).
pub(crate) fn check_guard(guard: &RunGuard) -> Result<(), SccError> {
    let interrupt = guard.interrupt();
    match interrupt.poll() {
        None => Ok(()),
        Some(reason) => Err(SccError::from_interrupt(reason, interrupt)),
    }
}

/// Polls the run's token at a phase boundary; converts a pending abort
/// (cancellation, deadline, watchdog trip) into the typed error.
pub(crate) fn check_interrupt<G: GraphView>(state: &AlgoState<'_, G>) -> Result<(), SccError> {
    match state.interrupt().poll() {
        None => Ok(()),
        Some(reason) => Err(SccError::from_interrupt(reason, state.interrupt())),
    }
}

/// Runs one data-parallel phase block with panic capture; `Err` carries
/// the panic text. Any panic here is *dirty* (see the module docs): the
/// caller must either restart from scratch or fail, never keep going.
pub(crate) fn catch_phase<R>(body: impl FnOnce() -> R) -> Result<R, String> {
    // recovery: the captured state (AlgoState atomics, the Collector's
    // unpoisoning mutexes) stays structurally valid across an unwind; the
    // *algorithmic* consistency is what's lost, and the caller's policy
    // (full sequential restart or typed error) accounts for exactly that.
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(body))
        .map_err(|payload| swscc_sync::fault::panic_text(payload.as_ref()))
}

/// Full-restart recovery for dirty panics under
/// [`PanicPolicy::Fallback`]: discards every bit of shared state and
/// redoes the whole input with sequential Tarjan. Under
/// [`PanicPolicy::Fail`] returns the typed error instead.
///
/// The report keeps whatever phase accounting accumulated before the
/// restart (documented as pre-recovery progress; the
/// [`RecoveryEvent::RestartedSequential`] entry marks it as superseded).
pub(crate) fn recover_full_restart<G: GraphView>(
    g: &G,
    collector: Collector,
    cfg: &SccConfig,
    message: String,
) -> Result<(SccResult, RunReport), SccError> {
    if matches!(cfg.on_panic, PanicPolicy::Fail) {
        return Err(SccError::WorkerPanic { message });
    }
    collector.record_recovery(RecoveryEvent::RestartedSequential { message });
    // graphview: Tarjan needs random-access slices — borrow the raw CSR
    // when the view already is one, decode the compressed stream
    // otherwise (restart is a cold path — correctness over speed).
    let result = match g.as_csr() {
        Some(csr) => tarjan_scc(csr),
        None => tarjan_scc(&g.materialize_csr()),
    };
    let report = collector.into_report(QueueStats::default(), 0);
    Ok((result, report))
}

/// Boundary-consistent degrade: finishes every still-alive node with
/// sequential Tarjan on the induced residual subgraph (sound because only
/// boundary panics occurred, so resolved components are whole SCCs).
/// Returns the residue size.
pub(crate) fn finish_residue_sequential<G: GraphView>(
    state: &AlgoState<'_, G>,
    collector: &Collector,
    message: String,
) -> usize {
    let residue = state.count_alive();
    collector.record_recovery(RecoveryEvent::DegradedToSequential { message, residue });
    state.resolve_residue_sequential()
}

/// Drains `queue` with the full recovery policy:
///
/// * interrupt abort → [`DriverError::Fatal`] with the typed error;
/// * panic under [`PanicPolicy::Fail`] → `Fatal(WorkerPanic)`;
/// * first boundary panic → re-push the intact task, record
///   [`RecoveryEvent::TaskRetried`], rerun the queue (leftover tasks are
///   still queued — the rerun resumes, not restarts);
/// * second boundary panic → stop retrying, finish the residue
///   sequentially ([`finish_residue_sequential`]);
/// * dirty (mid-task) panic → [`DriverError::DirtyRestart`].
pub(crate) fn run_queue_with_recovery<G: GraphView>(
    queue: &TwoLevelQueue<Task>,
    ctx: &RecurContext<'_, '_, G>,
    cfg: &SccConfig,
) -> Result<QueueResolution, DriverError> {
    let state = ctx.state;
    let mut retried = false;
    loop {
        let run = queue.run_checked(cfg.threads, state.interrupt(), |task, worker| {
            process_task(ctx, task, worker)
        });
        let abort = match run {
            Ok(stats) => {
                return Ok(QueueResolution {
                    stats,
                    resolved: ctx.resolved_count(),
                })
            }
            Err(abort) => abort,
        };
        match abort.cause {
            AbortCause::Interrupted(reason) => {
                return Err(DriverError::Fatal(SccError::from_interrupt(
                    reason,
                    state.interrupt(),
                )))
            }
            AbortCause::Panic {
                message,
                at_boundary,
            } => {
                if matches!(cfg.on_panic, PanicPolicy::Fail) {
                    return Err(DriverError::Fatal(SccError::WorkerPanic { message }));
                }
                if !at_boundary {
                    // A partial resolve_into may have split an SCC across
                    // the resolved/unresolved divide; see the module docs.
                    return Err(DriverError::DirtyRestart(message));
                }
                // Boundary panic: the handler never saw the task — shared
                // state is consistent and the task is intact.
                if let Some(task) = abort.failed_task {
                    queue.push_global(task);
                }
                if !retried {
                    retried = true;
                    ctx.collector
                        .record_recovery(RecoveryEvent::TaskRetried { message });
                    continue;
                }
                let residue = finish_residue_sequential(state, ctx.collector, message);
                return Ok(QueueResolution {
                    stats: abort.stats,
                    resolved: ctx.resolved_count() + residue,
                });
            }
        }
    }
}
