//! Self-tests for the model-checker runtime itself (only meaningful under
//! `RUSTFLAGS=--cfg model`; the whole file compiles away otherwise).
//!
//! These pin the properties the production `model_tests` battery relies
//! on: stale Relaxed reads are generated, Release/Acquire publication is
//! honored, failing seeds replay deterministically, deadlocks are
//! detected, and schedule exploration actually diversifies.
//!
//! Every test below runs inside `swscc_sync::thread::scope`, which is
//! the validation anchor for [inv:scoped-join]: the scope joins every
//! spawned thread on all exit paths before the borrowed stack frame
//! unwinds, so the lifetime erasure in `model/thread.rs` never lets a
//! closure outlive its captures.
#![cfg(model)]

use swscc_sync::atomic::{AtomicU32, Ordering};
use swscc_sync::model::{explore, replay, Options, Strategy};
use swscc_sync::Mutex;

fn opts(iterations: u64) -> Options {
    Options {
        iterations,
        base_seed: 0xDEAD_BEEF,
        max_steps: 10_000,
        strategy: Strategy::Random,
    }
}

/// Classic message-passing with Relaxed on both sides: the checker must
/// produce the stale read (flag observed set, data observed unset).
#[test]
fn finds_relaxed_publication_race() {
    let report = explore(opts(2000), || {
        let data = AtomicU32::new(0);
        let flag = AtomicU32::new(0);
        swscc_sync::thread::scope(|s| {
            s.spawn(|| {
                data.store(1, Ordering::Relaxed);
                flag.store(1, Ordering::Relaxed);
            });
            s.spawn(|| {
                if flag.load(Ordering::Relaxed) == 1 {
                    assert_eq!(
                        data.load(Ordering::Relaxed),
                        1,
                        "stale data read after observing flag"
                    );
                }
            });
        });
    });
    let failure = report
        .failure
        .expect("relaxed publication race must be found");
    assert!(failure.message.contains("stale data read"), "{failure}");
    assert!(failure.shrunk_len <= failure.trace_len);
}

/// The same protocol with a Release store / Acquire load must be clean:
/// once the flag is observed, the data store happens-before the reader.
#[test]
fn release_acquire_publication_is_safe() {
    let report = explore(opts(500), || {
        let data = AtomicU32::new(0);
        let flag = AtomicU32::new(0);
        swscc_sync::thread::scope(|s| {
            s.spawn(|| {
                data.store(1, Ordering::Relaxed);
                flag.store(1, Ordering::Release);
            });
            s.spawn(|| {
                if flag.load(Ordering::Acquire) == 1 {
                    assert_eq!(data.load(Ordering::Relaxed), 1);
                }
            });
        });
    });
    assert!(
        report.failure.is_none(),
        "release/acquire publication flagged spuriously: {:?}",
        report.failure
    );
    assert!(report.distinct_schedules > 10);
}

/// Failing seeds replay: re-running the reported seed reproduces the
/// failure, and two identical explore sessions report the same seed.
#[test]
fn failing_seed_replays_deterministically() {
    let body = || {
        let data = AtomicU32::new(0);
        let flag = AtomicU32::new(0);
        swscc_sync::thread::scope(|s| {
            s.spawn(|| {
                data.store(7, Ordering::Relaxed);
                flag.store(1, Ordering::Relaxed);
            });
            s.spawn(|| {
                if flag.load(Ordering::Relaxed) == 1 {
                    assert_eq!(data.load(Ordering::Relaxed), 7);
                }
            });
        });
    };
    let a = explore(opts(2000), body).failure.expect("race found");
    let b = explore(opts(2000), body).failure.expect("race found again");
    assert_eq!(a.seed, b.seed, "exploration must be deterministic");
    let msg = replay(a.seed, opts(1), body).expect("seed must replay the failure");
    assert!(
        msg.contains("assertion"),
        "unexpected replayed failure: {msg}"
    );
}

/// RMWs read the latest value (coherence): concurrent fetch_adds never
/// lose increments even when fully Relaxed.
#[test]
fn relaxed_rmws_do_not_lose_increments() {
    let report = explore(opts(500), || {
        let n = AtomicU32::new(0);
        swscc_sync::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    // ordering: counter only, total checked after join
                    n.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(n.load(Ordering::Relaxed), 3);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.distinct_schedules > 10);
}

/// Opposite lock-order acquisition must be reported as a deadlock, not
/// hang the harness.
#[test]
fn detects_lock_order_deadlock() {
    let report = explore(opts(200), || {
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        swscc_sync::thread::scope(|s| {
            s.spawn(|| {
                let ga = a.lock();
                let gb = b.lock();
                let _ = (*ga, *gb);
            });
            s.spawn(|| {
                let gb = b.lock();
                let ga = a.lock();
                let _ = (*ga, *gb);
            });
        });
    });
    let failure = report.failure.expect("deadlock must be detected");
    assert!(failure.message.contains("deadlock"), "{failure}");
}

/// Mutual exclusion holds: a read-modify-write race through a Mutex is
/// never torn.
#[test]
fn mutex_serializes_critical_sections() {
    let report = explore(opts(300), || {
        let n = Mutex::new(0u32);
        swscc_sync::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let mut g = n.lock();
                    let v = *g;
                    *g = v + 1;
                });
            }
        });
        assert_eq!(*n.lock(), 2);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

/// An unbounded spin on a flag nobody sets trips the step bound instead
/// of hanging.
#[test]
fn step_bound_catches_livelock() {
    let report = explore(
        Options {
            iterations: 1,
            max_steps: 200,
            ..opts(1)
        },
        || {
            let flag = AtomicU32::new(0);
            while flag.load(Ordering::Relaxed) == 0 {
                swscc_sync::hint::spin_loop();
            }
        },
    );
    let failure = report.failure.expect("step bound must fire");
    assert!(failure.message.contains("step bound"), "{failure}");
}

/// PCT strategy also finds the publication race.
#[test]
fn pct_strategy_finds_race_too() {
    let report = explore(
        Options {
            strategy: Strategy::Pct { change_points: 3 },
            ..opts(2000)
        },
        || {
            let data = AtomicU32::new(0);
            let flag = AtomicU32::new(0);
            swscc_sync::thread::scope(|s| {
                s.spawn(|| {
                    data.store(1, Ordering::Relaxed);
                    flag.store(1, Ordering::Relaxed);
                });
                s.spawn(|| {
                    if flag.load(Ordering::Relaxed) == 1 {
                        assert_eq!(data.load(Ordering::Relaxed), 1);
                    }
                });
            });
        },
    );
    assert!(report.failure.is_some(), "PCT should find the race as well");
}
