//! Multistep SCC (Slota, Rajamanickam, Madduri — IPDPS'14), the direct
//! follow-on of the paper.
//!
//! Multistep took this paper's two-phase idea further: **Trim → one
//! FW-BW peel with a max-degree-product pivot → Coloring for the mid-size
//! tail → serial Tarjan for the tiny residue**. Each stage handles the
//! regime it is best at: the peel takes the giant SCC with data
//! parallelism, Coloring mops up the power-law tail (many SCCs per round,
//! no task queue needed), and the residue is small enough for a sequential
//! finish. Implemented here as an extension/future-work feature; every
//! building block is a kernel from this crate.

use crate::config::SccConfig;
use crate::error::{RunGuard, SccError};
use crate::instrument::RunReport;
use crate::pipeline::{run_pipeline, Pipeline};
use crate::result::SccResult;
use swscc_graph::CsrGraph;

/// Runs Multistep (legacy entry point; see [`multistep_scc_checked`] for
/// the cancellable form).
pub fn multistep_scc(g: &CsrGraph, cfg: &SccConfig) -> (SccResult, RunReport) {
    multistep_scc_checked(g, cfg, &RunGuard::new())
        .expect("multistep run with a fresh guard cannot abort")
}

/// Runs Multistep under `guard`: cancellable, deadline-aware, and
/// panic-isolating. The stage list is `trim,peel,trim,colortail,serial`.
/// Phase attribution in the report: the FW-BW peel under `ParFwbw`,
/// Coloring rounds under `ParWcc` (the label-propagation slot), and the
/// serial finish under `RecurFwbw`; the round count is added to
/// `fwbw_trials`.
pub fn multistep_scc_checked(
    g: &CsrGraph,
    cfg: &SccConfig,
    guard: &RunGuard,
) -> Result<(SccResult, RunReport), SccError> {
    run_pipeline(
        g,
        &Pipeline::stock(crate::Algorithm::Multistep).unwrap(),
        cfg,
        guard,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::Phase;
    use crate::tarjan::tarjan_scc;

    fn check(g: &CsrGraph, threads: usize) {
        let (r, _) = multistep_scc(g, &SccConfig::with_threads(threads));
        assert_eq!(
            r.canonical_labels(),
            tarjan_scc(g).canonical_labels(),
            "multistep disagrees with tarjan"
        );
    }

    #[test]
    fn simple_shapes() {
        check(&CsrGraph::from_edges(0, &[]), 1);
        check(&CsrGraph::from_edges(3, &[(0, 1), (1, 0), (2, 2)]), 2);
        check(
            &CsrGraph::from_edges(
                7,
                &[
                    (0, 1),
                    (1, 2),
                    (2, 0),
                    (2, 3),
                    (3, 4),
                    (4, 5),
                    (5, 3),
                    (5, 6),
                ],
            ),
            2,
        );
    }

    #[test]
    fn random_graphs_match_tarjan() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(83);
        for trial in 0..12 {
            let n = rng.random_range(1..200usize);
            let m = rng.random_range(0..4 * n);
            let edges: Vec<_> = (0..m)
                .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
                .collect();
            let g = CsrGraph::from_edges(n, &edges);
            check(&g, 1 + trial % 4);
        }
    }

    #[test]
    fn giant_scc_taken_by_peel() {
        // hub-heavy cycle so the degree-product pivot lands inside it
        let n = 2000u32;
        let mut edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        for i in 0..200u32 {
            edges.push((0, n + i)); // tendrils
        }
        let g = CsrGraph::from_edges((n + 200) as usize, &edges);
        let (r, report) = multistep_scc(&g, &SccConfig::with_threads(2));
        assert_eq!(r.largest_component_size(), 2000);
        assert_eq!(report.resolved_in(Phase::ParFwbw), 2000);
        assert_eq!(report.resolved_in(Phase::ParTrim), 200);
    }

    #[test]
    fn report_covers_all_nodes() {
        use crate::instrument::Phase;
        let g = CsrGraph::from_edges(
            10,
            &[
                (0, 1),
                (1, 0),
                (2, 3),
                (3, 4),
                (4, 2),
                (5, 6),
                (6, 5),
                (7, 8),
                (8, 9),
            ],
        );
        let (_, report) = multistep_scc(&g, &SccConfig::with_threads(2));
        let total: usize = report.phase_resolved.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 10);
        let _ = Phase::all();
    }
}
