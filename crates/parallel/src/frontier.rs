//! Frontier storage and the shared claim layer for level-synchronous
//! traversals (§4.2).
//!
//! Every BFS-shaped kernel in this codebase (plain BFS, the FW/BW
//! reachability peels, frontier-driven WCC) advances a frontier one level
//! at a time. The naive formulation allocates a fresh `Vec` per level
//! (sequential path) or pays a parallel `collect()` that builds and then
//! concatenates temporary vectors (parallel path) — on small-world graphs
//! with dozens of levels per traversal and thousands of traversals per SCC
//! run, that churn is measurable. [`Frontier`] double-buffers instead:
//! the current level, the gather target, and one expansion buffer per
//! worker are all long-lived and reuse their capacity, so steady-state
//! level advancement performs no heap allocation.
//!
//! [`ClaimSet`] is the companion visited/claim layer: a thin protocol
//! wrapper over [`AtomicBitSet`] whose fetch-or claim guarantees that of
//! all threads concurrently discovering a node, exactly one wins and
//! enqueues it — the invariant that keeps frontiers duplicate-free without
//! any locking.

use crate::bitset::AtomicBitSet;

/// A double-buffered traversal frontier with per-worker chunked
/// next-frontier collection.
///
/// The expansion callback receives a contiguous chunk of the current
/// frontier and a per-worker output buffer; chunk results are concatenated
/// in chunk order. Frontier *order* within a level therefore depends on
/// which worker claims a node first and is not deterministic across runs —
/// but level membership is, whenever the claim protocol is (one claim per
/// node, level-synchronous barriers between levels).
///
/// # Examples
///
/// ```
/// use swscc_parallel::{ClaimSet, Frontier};
///
/// let adj = vec![vec![1u32, 2], vec![3], vec![3], vec![]];
/// let visited = ClaimSet::new(4);
/// visited.claim(0);
/// let mut f = Frontier::new();
/// f.seed([0u32]);
/// while !f.is_empty() {
///     f.advance(2, |chunk, out| {
///         for &u in chunk {
///             for &n in &adj[u as usize] {
///                 if visited.claim(n as usize) {
///                     out.push(n);
///                 }
///             }
///         }
///     });
/// }
/// assert_eq!(visited.count(), 4);
/// ```
#[derive(Default)]
pub struct Frontier {
    /// The current level's members.
    current: Vec<u32>,
    /// After an advance: the previous level (swapped out); doubles as the
    /// gather target for the next advance.
    spare: Vec<u32>,
    /// Per-worker expansion buffers, kept across levels.
    bufs: Vec<Vec<u32>>,
}

impl Frontier {
    /// An empty frontier.
    pub fn new() -> Self {
        Frontier::default()
    }

    /// An empty frontier whose buffers start with `cap` reserved slots.
    pub fn with_capacity(cap: usize) -> Self {
        Frontier {
            current: Vec::with_capacity(cap),
            spare: Vec::with_capacity(cap),
            bufs: Vec::new(),
        }
    }

    /// Replaces the frontier contents with `items`.
    pub fn seed(&mut self, items: impl IntoIterator<Item = u32>) {
        self.current.clear();
        self.current.extend(items);
    }

    /// Appends one node to the current frontier.
    #[inline]
    pub fn push(&mut self, v: u32) {
        self.current.push(v);
    }

    /// Appends `items` to the current frontier.
    pub fn extend_from_slice(&mut self, items: &[u32]) {
        self.current.extend_from_slice(items);
    }

    /// Number of nodes in the current frontier.
    #[inline]
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// `true` iff the current frontier is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.current.is_empty()
    }

    /// The current frontier's members.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.current
    }

    /// The *previous* frontier — whatever was current before the last
    /// [`advance`](Frontier::advance). Lets callers post-process the level
    /// they just expanded (e.g. sparse-reset its membership bits) without
    /// keeping their own copy.
    #[inline]
    pub fn previous(&self) -> &[u32] {
        &self.spare
    }

    /// Empties the frontier (buffers keep their capacity).
    pub fn clear(&mut self) {
        self.current.clear();
        self.spare.clear();
    }

    /// Advances one level: expands the current frontier through `expand`
    /// and replaces it with the gathered results. With `workers <= 1` (or
    /// a frontier smaller than the worker count) expansion runs inline on
    /// the calling thread; otherwise the frontier is split into contiguous
    /// chunks expanded on scoped threads, one reusable buffer per worker.
    pub fn advance<F>(&mut self, workers: usize, expand: F)
    where
        F: Fn(&[u32], &mut Vec<u32>) + Sync,
    {
        std::mem::swap(&mut self.current, &mut self.spare);
        gather(
            &self.spare,
            &mut self.current,
            &mut self.bufs,
            workers,
            &expand,
        );
    }

    /// Like [`advance`](Frontier::advance), but expands an external item
    /// list instead of the current frontier (the bottom-up sweep case,
    /// where the candidate pool — not the frontier — is scanned). The
    /// current frontier is still rotated into [`previous`](Frontier::previous).
    pub fn advance_over<F>(&mut self, items: &[u32], workers: usize, expand: F)
    where
        F: Fn(&[u32], &mut Vec<u32>) + Sync,
    {
        std::mem::swap(&mut self.current, &mut self.spare);
        gather(items, &mut self.current, &mut self.bufs, workers, &expand);
    }
}

/// Expands `items` into `out` using up to `workers` scoped threads and the
/// per-worker `bufs`, concatenating buffer contents in chunk order.
fn gather<F>(
    items: &[u32],
    out: &mut Vec<u32>,
    bufs: &mut Vec<Vec<u32>>,
    workers: usize,
    expand: &F,
) where
    F: Fn(&[u32], &mut Vec<u32>) + Sync,
{
    out.clear();
    if items.is_empty() {
        return;
    }
    let w = workers.max(1).min(items.len());
    if w <= 1 {
        expand(items, out);
        return;
    }
    let per = items.len().div_ceil(w);
    let nchunks = items.len().div_ceil(per);
    if bufs.len() < nchunks {
        bufs.resize_with(nchunks, Vec::new);
    }
    swscc_sync::thread::scope(|s| {
        let mut pairs = items.chunks(per).zip(bufs.iter_mut());
        let (chunk0, buf0) = pairs.next().expect("nonempty items");
        let handles: Vec<_> = pairs
            .map(|(chunk, buf)| {
                s.spawn(move || {
                    buf.clear();
                    expand(chunk, buf);
                })
            })
            .collect();
        buf0.clear();
        expand(chunk0, buf0);
        // Chunk 0 ran inline, so spawned handles cover chunks 1...
        for (i, h) in handles.into_iter().enumerate() {
            if let Err(payload) = h.join() {
                crate::pool::propagate_worker_panic("frontier expansion", i + 1, payload);
            }
        }
    });
    for buf in bufs.iter().take(nchunks) {
        out.extend_from_slice(buf);
    }
}

/// The shared visited/claim layer: an [`AtomicBitSet`] with claim-protocol
/// semantics.
///
/// `claim` is a lock-free test-and-set — among all threads racing to claim
/// a node, exactly one receives `true` and becomes responsible for
/// enqueueing it. Traversal kernels use this (or an equivalent CAS on
/// their own per-node state) as the *only* synchronization between workers
/// within a level; the level barrier does the rest.
///
/// # Examples
///
/// ```
/// use swscc_parallel::ClaimSet;
///
/// let visited = ClaimSet::new(64);
/// assert!(visited.claim(7));   // first claimant wins …
/// assert!(!visited.claim(7));  // … every other claimant loses
/// assert!(visited.contains(7));
/// visited.release(7);
/// assert!(!visited.contains(7));
/// ```
pub struct ClaimSet {
    bits: AtomicBitSet,
}

impl ClaimSet {
    /// A claim set over `len` node ids, all unclaimed.
    pub fn new(len: usize) -> Self {
        ClaimSet {
            bits: AtomicBitSet::new(len),
        }
    }

    /// Capacity in node ids.
    #[inline]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` iff the set has zero capacity.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Atomically claims `i`; `true` iff this caller won (the bit was
    /// previously clear).
    #[inline]
    pub fn claim(&self, i: usize) -> bool {
        self.bits.set(i)
    }

    /// `true` iff `i` is currently claimed.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.bits.get(i)
    }

    /// Releases a claim (sparse reset — the reuse path between rounds).
    #[inline]
    pub fn release(&self, i: usize) {
        self.bits.clear(i);
    }

    /// Releases every claim.
    pub fn release_all(&self) {
        self.bits.clear_all();
    }

    /// Number of claimed ids.
    pub fn count(&self) -> usize {
        self.bits.count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swscc_sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn seed_and_inspect() {
        let mut f = Frontier::new();
        assert!(f.is_empty());
        f.seed([3u32, 1, 4]);
        assert_eq!(f.len(), 3);
        assert_eq!(f.as_slice(), &[3, 1, 4]);
        f.push(9);
        f.extend_from_slice(&[2, 6]);
        assert_eq!(f.as_slice(), &[3, 1, 4, 9, 2, 6]);
        f.clear();
        assert!(f.is_empty());
    }

    #[test]
    fn advance_sequential_replaces_frontier() {
        let mut f = Frontier::new();
        f.seed([0u32, 1]);
        f.advance(1, |chunk, out| {
            for &u in chunk {
                out.push(u + 10);
            }
        });
        assert_eq!(f.as_slice(), &[10, 11]);
        assert_eq!(f.previous(), &[0, 1]);
    }

    #[test]
    fn advance_parallel_preserves_chunk_order() {
        let mut f = Frontier::new();
        f.seed(0..1000u32);
        f.advance(4, |chunk, out| {
            for &u in chunk {
                if u % 2 == 0 {
                    out.push(u);
                }
            }
        });
        // chunk-ordered concatenation of an order-preserving expansion
        // keeps the global order
        let expected: Vec<u32> = (0..1000).filter(|u| u % 2 == 0).collect();
        assert_eq!(f.as_slice(), &expected[..]);
    }

    #[test]
    fn advance_over_external_pool() {
        let mut f = Frontier::new();
        f.seed([7u32]);
        let pool: Vec<u32> = (0..100).collect();
        f.advance_over(&pool, 3, |chunk, out| {
            for &v in chunk {
                if v >= 95 {
                    out.push(v);
                }
            }
        });
        assert_eq!(f.as_slice(), &[95, 96, 97, 98, 99]);
        assert_eq!(f.previous(), &[7]);
    }

    #[test]
    fn steady_state_reuses_buffers() {
        let mut f = Frontier::new();
        f.seed(0..512u32);
        // warm up buffers at width 4
        f.advance(4, |chunk, out| out.extend_from_slice(chunk));
        let caps: Vec<usize> = f.bufs.iter().map(Vec::capacity).collect();
        for _ in 0..10 {
            f.advance(4, |chunk, out| out.extend_from_slice(chunk));
            assert_eq!(f.len(), 512);
        }
        let caps_after: Vec<usize> = f.bufs.iter().map(Vec::capacity).collect();
        assert_eq!(caps, caps_after, "buffers must not be reallocated");
    }

    #[test]
    fn empty_frontier_advance_is_noop() {
        let mut f = Frontier::new();
        f.advance(4, |_chunk, _out| {
            panic!("must not expand an empty frontier")
        });
        assert!(f.is_empty());
    }

    #[test]
    fn claims_are_exclusive_across_threads() {
        // Miri runs the same protocol at a fraction of the size.
        let n = if cfg!(miri) { 512 } else { 10_000 };
        let set = ClaimSet::new(n);
        let wins = AtomicUsize::new(0);
        swscc_sync::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..n {
                        if set.claim(i) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), n);
        assert_eq!(set.count(), n);
    }

    #[test]
    fn release_reopens_claims() {
        let set = ClaimSet::new(8);
        assert!(set.claim(5));
        set.release(5);
        assert!(set.claim(5));
        set.release_all();
        assert_eq!(set.count(), 0);
        assert!(!set.is_empty()); // capacity, not contents
        assert_eq!(set.len(), 8);
    }
}
