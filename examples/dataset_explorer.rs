//! Explore the nine Table-1 dataset analogs: structure and method timing.
//!
//! For each analog this prints the Table-1-style statistics and compares
//! the three SCC algorithm families on it — a miniature of the paper's
//! entire evaluation, runnable in seconds.
//!
//! ```text
//! cargo run --release --example dataset_explorer [scale] [dataset]
//! ```

use std::time::Instant;
use swscc::graph::datasets::Dataset;
use swscc::graph::stats::estimate_diameter;
use swscc::{detect_scc, Algorithm, SccConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.1);
    let only: Option<Dataset> = args.next().and_then(|s| Dataset::from_name(&s));

    println!(
        "{:<9} {:>9} {:>10} {:>12} {:>5}  {:>10} {:>10} {:>10}",
        "name", "nodes", "edges", "largest-scc", "diam", "tarjan", "method1", "method2"
    );
    for d in Dataset::all() {
        if let Some(o) = only {
            if o != d {
                continue;
            }
        }
        let g = d.generate(scale, 42);
        let cfg = SccConfig::default();

        let t0 = Instant::now();
        let (scc, _) = detect_scc(&g, Algorithm::Tarjan, &cfg);
        let t_tarjan = t0.elapsed();
        let t0 = Instant::now();
        let (m1, _) = detect_scc(&g, Algorithm::Method1, &cfg);
        let t_m1 = t0.elapsed();
        let t0 = Instant::now();
        let (m2, _) = detect_scc(&g, Algorithm::Method2, &cfg);
        let t_m2 = t0.elapsed();

        assert_eq!(scc.canonical_labels(), m1.canonical_labels());
        assert_eq!(scc.canonical_labels(), m2.canonical_labels());

        let diam = estimate_diameter(&g, 8, 1);
        println!(
            "{:<9} {:>9} {:>10} {:>12} {:>5}  {:>10.2?} {:>10.2?} {:>10.2?}",
            d.name(),
            g.num_nodes(),
            g.num_edges(),
            scc.largest_component_size(),
            diam,
            t_tarjan,
            t_m1,
            t_m2,
        );
    }
    println!("\nall parallel results verified against Tarjan ✓");
}
