//! Kosaraju's sequential SCC algorithm (test oracle).
//!
//! Two passes: an iterative DFS over the graph recording reverse-finish
//! order, then DFS over the transpose in that order — each tree of the
//! second pass is one SCC. Asymptotically the same O(N + M) as Tarjan but
//! with two traversals; kept as an *independent* oracle so a bug in one
//! sequential implementation cannot silently validate the parallel methods.
//! (The transpose is free: [`swscc_graph::CsrGraph`] stores in-edges.)

// graphview(file): oracle is backend-bound by design — it takes &CsrGraph
// in its signature and leans on the stored in-edge slices for the
// transpose pass.

use crate::result::SccResult;
use swscc_graph::{CsrGraph, NodeId};

/// Runs Kosaraju's algorithm.
///
/// # Examples
///
/// ```
/// use swscc_core::kosaraju::kosaraju_scc;
/// use swscc_graph::CsrGraph;
///
/// let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (1, 2)]);
/// let r = kosaraju_scc(&g);
/// assert_eq!(r.num_components(), 2);
/// ```
pub fn kosaraju_scc(g: &CsrGraph) -> SccResult {
    let n = g.num_nodes();
    // Pass 1: finish order via iterative post-order DFS on out-edges.
    let mut visited = vec![false; n];
    let mut finish_order: Vec<NodeId> = Vec::with_capacity(n);
    let mut control: Vec<(NodeId, u32)> = Vec::new();
    for root in 0..n as NodeId {
        if visited[root as usize] {
            continue;
        }
        visited[root as usize] = true;
        control.push((root, 0));
        while let Some(&mut (v, ref mut ei)) = control.last_mut() {
            let nbrs = g.out_neighbors(v);
            if (*ei as usize) < nbrs.len() {
                let w = nbrs[*ei as usize];
                *ei += 1;
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    control.push((w, 0));
                }
            } else {
                control.pop();
                finish_order.push(v);
            }
        }
    }

    // Pass 2: DFS on in-edges (the transpose) in reverse finish order.
    let mut comp = vec![u32::MAX; n];
    let mut next_comp = 0u32;
    let mut stack: Vec<NodeId> = Vec::new();
    for &root in finish_order.iter().rev() {
        if comp[root as usize] != u32::MAX {
            continue;
        }
        comp[root as usize] = next_comp;
        stack.push(root);
        while let Some(v) = stack.pop() {
            for &w in g.in_neighbors(v) {
                if comp[w as usize] == u32::MAX {
                    comp[w as usize] = next_comp;
                    stack.push(w);
                }
            }
        }
        next_comp += 1;
    }
    SccResult::from_assignment(comp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tarjan::tarjan_scc;

    #[test]
    fn empty_and_isolated() {
        assert_eq!(
            kosaraju_scc(&CsrGraph::from_edges(0, &[])).num_components(),
            0
        );
        assert_eq!(
            kosaraju_scc(&CsrGraph::from_edges(4, &[])).num_components(),
            4
        );
    }

    #[test]
    fn matches_tarjan_on_small_cases() {
        let cases: Vec<(usize, Vec<(u32, u32)>)> = vec![
            (3, vec![(0, 1), (1, 2), (2, 0)]),
            (4, vec![(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]),
            (5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]),
            (2, vec![(0, 0), (1, 1)]),
            (
                6,
                vec![
                    (0, 1),
                    (1, 0),
                    (1, 2),
                    (2, 3),
                    (3, 2),
                    (3, 4),
                    (4, 5),
                    (5, 4),
                ],
            ),
        ];
        for (n, edges) in cases {
            let g = CsrGraph::from_edges(n, &edges);
            assert_eq!(
                kosaraju_scc(&g).canonical_labels(),
                tarjan_scc(&g).canonical_labels(),
                "mismatch on {edges:?}"
            );
        }
    }

    #[test]
    fn matches_tarjan_on_random_graphs() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(11);
        for trial in 0..20 {
            let n = rng.random_range(1..200usize);
            let m = rng.random_range(0..4 * n);
            let edges: Vec<_> = (0..m)
                .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
                .collect();
            let g = CsrGraph::from_edges(n, &edges);
            assert_eq!(
                kosaraju_scc(&g).canonical_labels(),
                tarjan_scc(&g).canonical_labels(),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn deep_graph_no_overflow() {
        let n = 300_000u32;
        let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = CsrGraph::from_edges(n as usize, &edges);
        assert_eq!(kosaraju_scc(&g).num_components(), 1);
    }
}
