//! SCC detection output: a component assignment over the nodes.
//!
//! The paper's pseudocode returns "a collection of node sets". Materializing
//! N small `Vec`s is what downstream code never wants; the standard
//! representation (used by every SCC library and by the paper's own C++
//! implementation via its color arrays) is a dense `component id per node`
//! array, from which sets, sizes, histograms, and the condensation DAG are
//! all derivable in O(N + M).

use rustc_hash::FxHashMap;
use swscc_graph::bfs::Direction;
use swscc_graph::stats::SizeHistogram;
use swscc_graph::{CsrGraph, GraphBuilder, GraphView, NodeId};

/// The result of SCC detection: every node mapped to its component id.
///
/// Component ids are dense (`0..num_components`) but otherwise arbitrary —
/// different algorithms number the same components differently. Use
/// [`SccResult::canonical_labels`] to compare results across algorithms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SccResult {
    component_of: Vec<u32>,
    num_components: usize,
}

impl SccResult {
    /// Wraps a raw assignment, renumbering ids to be dense in
    /// first-appearance order.
    pub fn from_assignment(raw: Vec<u32>) -> Self {
        let mut remap: FxHashMap<u32, u32> = FxHashMap::default();
        let mut component_of = raw;
        for c in component_of.iter_mut() {
            let next = remap.len() as u32;
            *c = *remap.entry(*c).or_insert(next);
        }
        SccResult {
            num_components: remap.len(),
            component_of,
        }
    }

    /// Component id of `node`.
    #[inline]
    pub fn component(&self, node: NodeId) -> u32 {
        self.component_of[node as usize]
    }

    /// The full per-node assignment.
    pub fn assignment(&self) -> &[u32] {
        &self.component_of
    }

    /// Number of strongly connected components.
    pub fn num_components(&self) -> usize {
        self.num_components
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.component_of.len()
    }

    /// `true` iff `a` and `b` are in the same SCC.
    pub fn same_component(&self, a: NodeId, b: NodeId) -> bool {
        self.component(a) == self.component(b)
    }

    /// Size of every component, indexed by component id.
    pub fn component_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_components];
        for &c in &self.component_of {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Size of the largest component (0 for an empty graph). Table 1's
    /// "Largest SCC Size" column.
    pub fn largest_component_size(&self) -> usize {
        self.component_sizes().into_iter().max().unwrap_or(0)
    }

    /// Number of size-1 ("trivial") components — the quantity that makes
    /// the paper's Trim step so effective (§2.2).
    pub fn num_trivial(&self) -> usize {
        self.component_sizes().iter().filter(|&&s| s == 1).count()
    }

    /// SCC-size histogram (Figures 2 and 9 of the paper).
    pub fn size_histogram(&self) -> SizeHistogram {
        SizeHistogram::from_assignment(&self.component_of)
    }

    /// Members of component `c`, ascending. O(N).
    pub fn members(&self, c: u32) -> Vec<NodeId> {
        self.component_of
            .iter()
            .enumerate()
            .filter(|&(_, &cc)| cc == c)
            .map(|(i, _)| i as NodeId)
            .collect()
    }

    /// A canonical labeling: component ids renumbered by each component's
    /// smallest member. Two `SccResult`s describe the same partition iff
    /// their canonical labels are equal.
    pub fn canonical_labels(&self) -> Vec<u32> {
        let mut min_member = vec![u32::MAX; self.num_components];
        for (i, &c) in self.component_of.iter().enumerate() {
            min_member[c as usize] = min_member[c as usize].min(i as u32);
        }
        self.component_of
            .iter()
            .map(|&c| min_member[c as usize])
            .collect()
    }

    /// Builds the condensation: the DAG whose nodes are the SCCs of `g` and
    /// whose edges are the inter-SCC edges of `g` (deduplicated). The result
    /// is acyclic by the definition of SCCs (tested).
    ///
    /// # Panics
    ///
    /// Panics if `g` does not have the same node count as this result.
    pub fn condensation(&self, g: &CsrGraph) -> CsrGraph {
        self.condensation_view(g)
    }

    /// [`SccResult::condensation`] over any [`GraphView`] backend: the
    /// inter-SCC edges stream through the zero-allocation neighbor
    /// decode, so the condensation of a compressed graph is built
    /// without ever materializing the raw CSR. This is the snapshot
    /// export the `swscc-serve` daemon publishes each epoch.
    ///
    /// # Panics
    ///
    /// Panics if `g` does not have the same node count as this result.
    pub fn condensation_view<G: GraphView>(&self, g: &G) -> CsrGraph {
        assert_eq!(g.num_nodes(), self.num_nodes(), "graph/result mismatch");
        let mut b = GraphBuilder::new(self.num_components);
        for u in g.nodes() {
            let cu = self.component(u);
            g.for_each_neighbor(Direction::Forward, u, |v| {
                let cv = self.component(v);
                if cu != cv {
                    b.add_edge(cu, cv);
                }
            });
        }
        b.build()
    }

    /// Checks internal consistency: ids dense, every node assigned.
    /// Used by tests and debug assertions; cheap (O(N)).
    pub fn check_dense(&self) -> bool {
        let mut seen = vec![false; self.num_components];
        for &c in &self.component_of {
            if c as usize >= self.num_components {
                return false;
            }
            seen[c as usize] = true;
        }
        seen.into_iter().all(|s| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renumbering_is_dense() {
        let r = SccResult::from_assignment(vec![7, 7, 3, 9, 3]);
        assert_eq!(r.num_components(), 3);
        assert_eq!(r.assignment(), &[0, 0, 1, 2, 1]);
        assert!(r.check_dense());
    }

    #[test]
    fn sizes_and_trivial() {
        let r = SccResult::from_assignment(vec![0, 0, 1, 2, 2, 2]);
        assert_eq!(r.component_sizes(), vec![2, 1, 3]);
        assert_eq!(r.largest_component_size(), 3);
        assert_eq!(r.num_trivial(), 1);
    }

    #[test]
    fn same_component() {
        let r = SccResult::from_assignment(vec![0, 1, 0]);
        assert!(r.same_component(0, 2));
        assert!(!r.same_component(0, 1));
    }

    #[test]
    fn canonical_labels_ignore_numbering() {
        let a = SccResult::from_assignment(vec![0, 0, 1, 1, 2]);
        let b = SccResult::from_assignment(vec![5, 5, 2, 2, 9]);
        assert_eq!(a.canonical_labels(), b.canonical_labels());
        let c = SccResult::from_assignment(vec![0, 1, 1, 0, 2]);
        assert_ne!(a.canonical_labels(), c.canonical_labels());
    }

    #[test]
    fn members_listing() {
        let r = SccResult::from_assignment(vec![0, 1, 0, 1]);
        assert_eq!(r.members(0), vec![0, 2]);
        assert_eq!(r.members(1), vec![1, 3]);
    }

    #[test]
    fn condensation_collapses_cycles() {
        // 0 <-> 1 -> 2
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (1, 2)]);
        let r = SccResult::from_assignment(vec![0, 0, 1]);
        let dag = r.condensation(&g);
        assert_eq!(dag.num_nodes(), 2);
        assert_eq!(dag.num_edges(), 1);
        assert!(dag.has_edge(0, 1));
    }

    #[test]
    fn condensation_dedups_parallel_edges() {
        // two SCCs with two cross edges
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 0), (0, 2), (1, 3), (2, 3), (3, 2)]);
        let r = SccResult::from_assignment(vec![0, 0, 1, 1]);
        let dag = r.condensation(&g);
        assert_eq!(dag.num_edges(), 1);
    }

    #[test]
    fn empty_result() {
        let r = SccResult::from_assignment(vec![]);
        assert_eq!(r.num_components(), 0);
        assert_eq!(r.largest_component_size(), 0);
        assert!(r.check_dense());
    }

    #[test]
    fn histogram_hookup() {
        let r = SccResult::from_assignment(vec![0, 0, 0, 1, 2]);
        let h = r.size_histogram();
        assert_eq!(h.count_of(1), 2);
        assert_eq!(h.count_of(3), 1);
    }
}
