//! Deterministic fault injection for the chaos battery.
//!
//! Production code is sprinkled with named *fault points* —
//! [`point("site-name")`](point) calls at the places a worker can
//! plausibly die or stall: the work-queue task boundary, traversal
//! supersteps, trim/WCC/coloring round boundaries. In a normal run the
//! whole layer is a single relaxed atomic load per call and nothing else.
//!
//! A test *arms* a [`FaultPlan`] — "at the `nth` hit of `site`, panic (or
//! delay)" — via [`arm`], which returns a guard that disarms on drop and
//! serializes concurrent arming across test threads (the plan registry is
//! process-global). Because a plan is three integers, any schedule is
//! derivable from a seed and replayable exactly: the chaos battery in
//! `tests/chaos.rs` maps seed → (driver, graph, threads, plan) with a
//! splitmix64 chain and reports the seed on failure.
//!
//! Under `--cfg model` the same mechanism extends to yield-point indices:
//! the model runtime calls [`point("model-yield")`](point) at every
//! scheduling point, so a plan targeting that site injects a panic or a
//! delay at the *k*-th yield point of an explored schedule.
//!
//! This module deliberately uses raw `std` primitives instead of the
//! facade (allowed: `crates/sync/` is facade-exempt): injection
//! bookkeeping must not become extra scheduling points or tracked memory
//! in model builds, or arming a plan would perturb the very schedules it
//! is meant to replay.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// What an armed plan does when its trigger point is reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic with a payload starting with [`INJECTED_PANIC_PREFIX`].
    Panic,
    /// Stall the calling thread for the given duration (perturbs timing
    /// without failing anything — exercises straggler paths).
    Delay(Duration),
}

/// A deterministic injection schedule: fire `kind` at the `nth` matching
/// hit (0-based) of `site` (`None` = any site).
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Restrict matching to one site name; `None` matches every site.
    pub site: Option<&'static str>,
    /// 0-based index of the matching hit that triggers the fault.
    pub nth: u64,
    /// What to do at the trigger.
    pub kind: FaultKind,
    /// `false`: fire exactly once, at hit `nth`. `true`: fire at every
    /// matching hit from `nth` on — models a persistently failing site
    /// (exhausts retry-based recovery, forcing the degrade path).
    pub repeat: bool,
}

/// Panic payloads produced by injected faults start with this prefix, so
/// recovery layers and tests can tell an injected fault from a real bug.
pub const INJECTED_PANIC_PREFIX: &str = "injected fault";

/// Fault site at the epoch-swap commit of [`crate::epoch::EpochCell`]:
/// fires *before* the slot is touched, so a kill here models a recompute
/// dying mid-swap — the previous epoch must keep serving.
pub const SERVE_SWAP: &str = "serve-swap";

/// Fault site inside the serve daemon's per-frame request handling
/// (after decode + admission, before dispatch): a panic here models a
/// worker dying mid-frame — the connection must be quarantined while the
/// listener and every other connection stay healthy; a delay here models
/// a straggling handler and is how the deadline/overload paths are
/// exercised deterministically.
pub const SERVE_FRAME: &str = "serve-frame";

/// Fault site inside the incremental engine's back-edge merge, placed
/// after the merge set is discovered but *before* any label or position
/// is rewritten: a kill here models a maintenance worker dying mid-merge
/// — the partition state must stay exactly as it was, so the previous
/// epoch keeps serving and a later rebuild heals the engine.
pub const INCR_MERGE: &str = "incr-merge";

/// Fault site at the delta-overlay compaction commit, placed after the
/// fresh base backend is fully built but *before* the overlay fields are
/// swapped: a kill here models a compaction dying mid-rebuild — the old
/// base + overlay must keep answering, losing only the rebuild work.
pub const DELTA_COMPACT: &str = "delta-compact";

static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);
static HITS: AtomicU64 = AtomicU64::new(0);
static FIRED: AtomicBool = AtomicBool::new(false);
/// Serializes armed sessions: tests in one process cannot interleave
/// plans (the registry is global). Held by the `FaultGuard`.
static SESSION: Mutex<()> = Mutex::new(());

fn unpoison<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    // A test that panics while holding the session lock poisons it; the
    // registry state is two scalars, always valid, so recovering is safe.
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Disarms the plan and releases the session on drop.
pub struct FaultGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
        *unpoison(PLAN.lock()) = None;
    }
}

/// Arms `plan` for the lifetime of the returned guard. Blocks while
/// another plan is armed (sessions are serialized process-wide); resets
/// the hit counter.
pub fn arm(plan: FaultPlan) -> FaultGuard {
    let session = unpoison(SESSION.lock());
    *unpoison(PLAN.lock()) = Some(plan);
    HITS.store(0, Ordering::SeqCst);
    FIRED.store(false, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    FaultGuard(session)
}

/// Matching hits observed by the currently / most recently armed plan.
pub fn hits() -> u64 {
    HITS.load(Ordering::SeqCst)
}

/// Whether the armed plan's trigger actually fired (the run may have
/// finished before reaching hit `nth`).
pub fn fired() -> bool {
    FIRED.load(Ordering::SeqCst)
}

/// A named fault point. Free when nothing is armed; when a plan matches,
/// counts the hit and fires the planned fault at index `nth`.
#[inline]
pub fn point(site: &'static str) {
    if ARMED.load(Ordering::Relaxed) {
        point_slow(site);
    }
}

#[cold]
fn point_slow(site: &'static str) {
    let plan = *unpoison(PLAN.lock());
    let Some(plan) = plan else { return };
    if plan.site.is_some_and(|s| s != site) {
        return;
    }
    let idx = HITS.fetch_add(1, Ordering::SeqCst);
    if idx == plan.nth || (plan.repeat && idx > plan.nth) {
        FIRED.store(true, Ordering::SeqCst);
        match plan.kind {
            FaultKind::Panic => panic!("{INJECTED_PANIC_PREFIX}: site `{site}` hit {idx}"),
            FaultKind::Delay(d) => std::thread::sleep(d),
        }
    }
}

/// Best-effort text of a panic payload (injected or otherwise); used by
/// recovery layers to record what killed a worker.
pub fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| {
            payload
                .downcast_ref::<&'static str>()
                .map(|s| s.to_string())
        })
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// True if a caught panic payload came from an injected fault.
pub fn is_injected_payload(payload: &(dyn std::any::Any + Send)) -> bool {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&'static str>().copied())
        .is_some_and(|s| s.starts_with(INJECTED_PANIC_PREFIX))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_when_disarmed() {
        point("anywhere"); // must be a no-op
    }

    #[test]
    fn panic_fires_at_exact_index() {
        let _g = arm(FaultPlan {
            site: Some("t1"),
            nth: 2,
            kind: FaultKind::Panic,
            repeat: false,
        });
        point("t1");
        point("other-site"); // non-matching: not counted
        point("t1");
        // recovery: test-local — asserting the injected panic surfaces at
        // exactly the planned hit index and is recognizable.
        let r = std::panic::catch_unwind(|| point("t1"));
        let payload = r.expect_err("third matching hit must panic");
        assert!(is_injected_payload(payload.as_ref()));
        assert!(fired());
        assert_eq!(hits(), 3);
    }

    #[test]
    fn delay_does_not_panic() {
        let _g = arm(FaultPlan {
            site: None,
            nth: 0,
            kind: FaultKind::Delay(Duration::from_micros(50)),
            repeat: false,
        });
        point("any");
        assert!(fired());
    }

    #[test]
    fn repeat_plan_fires_on_every_later_hit() {
        let _g = arm(FaultPlan {
            site: Some("rp"),
            nth: 1,
            kind: FaultKind::Panic,
            repeat: true,
        });
        point("rp"); // hit 0: below nth, no fire
        for expected_hit in 1..4u64 {
            // recovery: test-local — asserting a repeat plan keeps firing
            // on every hit at or beyond `nth`.
            let r = std::panic::catch_unwind(|| point("rp"));
            let payload = r.expect_err("repeat plan must fire");
            assert!(is_injected_payload(payload.as_ref()));
            assert_eq!(hits(), expected_hit + 1);
        }
    }

    #[test]
    fn guard_drop_disarms() {
        {
            let _g = arm(FaultPlan {
                site: None,
                nth: 0,
                kind: FaultKind::Panic,
                repeat: false,
            });
        }
        point("after-drop"); // disarmed: no panic
    }
}
