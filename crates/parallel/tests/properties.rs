//! Property-based tests for the parallel substrate.

use proptest::prelude::*;
use swscc_parallel::{AtomicBitSet, TwoLevelQueue};
use swscc_sync::atomic::{AtomicUsize, Ordering};

proptest! {
    #[test]
    fn bitset_matches_model(ops in proptest::collection::vec((0usize..200, any::<bool>()), 0..300)) {
        // model: a plain Vec<bool>; operations: set (true) / clear (false)
        let bits = AtomicBitSet::new(200);
        let mut model = [false; 200];
        for (i, set) in ops {
            if set {
                let changed = bits.set(i);
                prop_assert_eq!(changed, !model[i]);
                model[i] = true;
            } else {
                let changed = bits.clear(i);
                prop_assert_eq!(changed, model[i]);
                model[i] = false;
            }
        }
        for (i, &want) in model.iter().enumerate() {
            prop_assert_eq!(bits.get(i), want, "bit {}", i);
        }
        prop_assert_eq!(bits.count_ones(), model.iter().filter(|&&b| b).count());
        let ones: Vec<usize> = bits.iter_ones().collect();
        let want: Vec<usize> = (0..200).filter(|&i| model[i]).collect();
        prop_assert_eq!(ones, want);
    }

    #[test]
    fn queue_executes_every_task_once(
        k in 1usize..16,
        threads in 1usize..5,
        n_tasks in 0usize..300,
    ) {
        let q = TwoLevelQueue::new(k);
        for i in 0..n_tasks {
            q.push_global(i);
        }
        let hits: Vec<AtomicUsize> = (0..n_tasks).map(|_| AtomicUsize::new(0)).collect();
        let stats = q.run(threads, |i, _| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        prop_assert_eq!(stats.tasks_executed, n_tasks);
        for (i, h) in hits.iter().enumerate() {
            prop_assert_eq!(h.load(Ordering::Relaxed), 1, "task {}", i);
        }
    }

    #[test]
    fn queue_spawned_tasks_all_run(
        k in 1usize..10,
        threads in 1usize..5,
        fanouts in proptest::collection::vec(0usize..5, 1..30),
    ) {
        // each seed task i spawns `fanouts[i]` children; children spawn none
        let q = TwoLevelQueue::new(k);
        for (i, _) in fanouts.iter().enumerate() {
            q.push_global((i, true));
        }
        let children = AtomicUsize::new(0);
        let fanouts_ref = &fanouts;
        let stats = q.run(threads, |(i, is_seed), w| {
            if is_seed {
                for _ in 0..fanouts_ref[i] {
                    w.push((i, false));
                }
            } else {
                children.fetch_add(1, Ordering::Relaxed);
            }
        });
        let want: usize = fanouts.iter().sum();
        prop_assert_eq!(children.load(Ordering::Relaxed), want);
        prop_assert_eq!(stats.tasks_executed, want + fanouts.len());
    }
}
