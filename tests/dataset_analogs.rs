//! Structural invariants of the dataset analogs: each must exhibit the
//! Table 1 / Fig. 9 properties its original is used for in the paper.

use swscc::graph::bfs::{bfs_levels, Direction, UNREACHED};
use swscc::graph::datasets::Dataset;
use swscc::graph::stats::estimate_diameter;
use swscc::{detect_scc, Algorithm, SccConfig};

const SCALE: f64 = 0.1;

fn scc_of(d: Dataset) -> (swscc::CsrGraph, swscc::SccResult) {
    let g = d.generate(SCALE, 42);
    let (r, _) = detect_scc(&g, Algorithm::Tarjan, &SccConfig::default());
    (g, r)
}

#[test]
fn small_world_analogs_have_giant_scc_near_table1_fraction() {
    for d in Dataset::small_world() {
        let (g, r) = scc_of(d);
        let frac = r.largest_component_size() as f64 / g.num_nodes() as f64;
        let want = d.table1_giant_frac();
        assert!(
            (frac - want).abs() < 0.08,
            "{}: giant fraction {frac:.2}, Table 1 says {want:.2}",
            d.name()
        );
    }
}

#[test]
fn small_world_analogs_have_dominant_trivial_sccs() {
    // §2.2: "tiny-sized SCCs are much more frequent than large-sized ones".
    for d in Dataset::small_world() {
        let (_, r) = scc_of(d);
        let trivial = r.num_trivial();
        assert!(
            trivial * 10 >= r.num_components() * 8,
            "{}: size-1 SCCs are only {trivial} of {} components",
            d.name(),
            r.num_components()
        );
    }
}

#[test]
fn small_world_analogs_have_small_diameter() {
    for d in Dataset::small_world() {
        let g = d.generate(SCALE, 42);
        let diam = estimate_diameter(&g, 8, 1);
        assert!(
            diam <= 40,
            "{}: sampled diameter {diam} is not small-world",
            d.name()
        );
    }
}

#[test]
fn small_world_analogs_have_powerlaw_scc_tail() {
    // Fig. 9: SCC counts decay with size — sizes in (1, giant) exist and
    // size-2 SCCs outnumber size-8+ non-giant SCCs.
    for d in Dataset::small_world() {
        let (_, r) = scc_of(d);
        let h = r.size_histogram();
        let twos = h.count_of(2);
        let giant = r.largest_component_size();
        let bigger: usize = h
            .entries()
            .iter()
            .filter(|&&(s, _)| s >= 8 && s != giant)
            .map(|&(_, c)| c)
            .sum();
        assert!(
            twos > bigger,
            "{}: {} size-2 SCCs vs {} size>=8 — no power-law decay",
            d.name(),
            twos,
            bigger
        );
    }
}

#[test]
fn patents_analog_is_acyclic_all_trivial() {
    let (g, r) = scc_of(Dataset::Patents);
    assert_eq!(r.num_components(), g.num_nodes());
    assert_eq!(r.largest_component_size(), 1);
}

#[test]
fn ca_road_analog_violates_small_world() {
    let (g, r) = scc_of(Dataset::CaRoad);
    // Large diameter…
    let diam = estimate_diameter(&g, 8, 1);
    assert!(diam > 60, "road diameter {diam} unexpectedly small");
    // …and many mid-sized SCCs (unlike the small-world instances).
    let h = r.size_histogram();
    let giant = r.largest_component_size();
    let mids: usize = h
        .entries()
        .iter()
        .filter(|&&(s, _)| s >= 4 && s != giant)
        .map(|&(_, c)| c)
        .sum();
    assert!(
        mids > 30,
        "road analog has only {mids} mid-sized SCCs; Fig. 9(i) wants many"
    );
    // Giant SCC still exists (Table 1: 1.17M of 1.97M).
    let frac = giant as f64 / g.num_nodes() as f64;
    assert!((0.3..0.9).contains(&frac), "road giant fraction {frac:.2}");
}

#[test]
fn bowtie_analogs_are_weakly_connected_enough() {
    // The bow-tie construction attaches everything to the core: from a core
    // node, undirected reachability must cover nearly all nodes.
    for d in [Dataset::Livej, Dataset::Twitter] {
        let g = d.generate(SCALE, 42);
        let fw = bfs_levels(&g, 0, Direction::Forward);
        let bw = bfs_levels(&g, 0, Direction::Backward);
        let touched = fw
            .iter()
            .zip(&bw)
            .filter(|(f, b)| **f != UNREACHED || **b != UNREACHED)
            .count();
        assert!(
            touched * 10 >= g.num_nodes() * 7,
            "{}: only {touched}/{} nodes attach to the core",
            d.name(),
            g.num_nodes()
        );
    }
}

#[test]
fn analogs_scale_deterministically() {
    for d in [Dataset::Flickr, Dataset::CaRoad, Dataset::Patents] {
        let a = d.generate(0.05, 9);
        let b = d.generate(0.05, 9);
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(
            a.edges().collect::<Vec<_>>(),
            b.edges().collect::<Vec<_>>(),
            "{} not deterministic",
            d.name()
        );
        // a different seed changes the graph
        let c = d.generate(0.05, 10);
        assert_ne!(a.edges().collect::<Vec<_>>(), c.edges().collect::<Vec<_>>());
    }
}
