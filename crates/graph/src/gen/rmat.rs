//! R-MAT (recursive matrix) graph generator.
//!
//! R-MAT recursively subdivides the adjacency matrix into quadrants with
//! probabilities `(a, b, c, d)` and drops each edge into a leaf cell. With
//! the Graph500 parameters `(0.57, 0.19, 0.19, 0.05)` it produces graphs
//! with a scale-free degree distribution and small diameter — the two
//! properties (§2.2, §4.3 of the paper) that make the paper's workloads
//! "small-world". Generation is parallel over edges and deterministic for a
//! given seed (each edge derives its own RNG stream from the seed).

use crate::builder::GraphBuilder;
use crate::compressed::CompressedCsr;
use crate::csr::{CsrGraph, NodeId};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;

/// Configuration for [`rmat`].
#[derive(Clone, Copy, Debug)]
pub struct RmatConfig {
    /// log2 of the number of nodes (N = 2^scale).
    pub scale: u32,
    /// Average directed edges per node (M = N * edge_factor).
    pub edge_factor: usize,
    /// Quadrant probabilities; must sum to ~1.0.
    pub a: f64,
    pub b: f64,
    pub c: f64,
    /// Per-level multiplicative noise on the quadrant probabilities, in
    /// `[0, 1)`; breaks up the exact self-similarity of pure R-MAT.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RmatConfig {
    /// Graph500 reference parameters at the given scale/edge factor.
    pub fn graph500(scale: u32, edge_factor: usize, seed: u64) -> Self {
        RmatConfig {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.1,
            seed,
        }
    }

    fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates an R-MAT graph. Duplicate edges and self-loops are removed, so
/// the realized edge count is slightly below `N * edge_factor` (heavier loss
/// at small scales, exactly as with the reference Graph500 generator).
///
/// # Examples
///
/// ```
/// use swscc_graph::gen::{rmat, RmatConfig};
///
/// let g = rmat(&RmatConfig::graph500(10, 8, 42));
/// assert_eq!(g.num_nodes(), 1024);
/// assert!(g.num_edges() > 4000);
/// ```
pub fn rmat(cfg: &RmatConfig) -> CsrGraph {
    let n = 1usize << cfg.scale;
    let m = n * cfg.edge_factor;
    let edges: Vec<(NodeId, NodeId)> = (0..m as u64)
        .into_par_iter()
        .map(|i| {
            // Independent stream per edge => deterministic and parallel.
            let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i);
            sample_edge(cfg, &mut rng)
        })
        .collect();
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    b.extend(edges);
    b.build()
}

/// Generates an R-MAT graph directly into the compressed representation,
/// never materializing the uncompressed CSR or the full edge list.
///
/// Because every edge derives its own RNG stream from `(seed, i)`, the
/// edge stream is a pure function that
/// [`CompressedCsr::from_edge_stream`] can replay once per shard; peak
/// transient memory is O(M / `shards`) edge pairs instead of the O(M)
/// pairs + O(M) CSR arrays of [`rmat`]. The result is identical to
/// `CompressedCsr::from_csr(&rmat(cfg))` (tested): both paths drop
/// self-loops and duplicates.
pub fn rmat_compressed(cfg: &RmatConfig, shards: usize) -> CompressedCsr {
    let n = 1usize << cfg.scale;
    let m = (n * cfg.edge_factor) as u64;
    CompressedCsr::from_edge_stream(n, shards, |emit| {
        for i in 0..m {
            let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i);
            let (u, v) = sample_edge(cfg, &mut rng);
            emit(u, v);
        }
    })
}

/// Generates the raw (deduplicated, loop-free) R-MAT edge list without
/// building a CSR. Used by composite generators that embed an R-MAT fabric
/// into a larger graph.
pub fn rmat_edges(cfg: &RmatConfig) -> Vec<(NodeId, NodeId)> {
    let n = 1usize << cfg.scale;
    let m = n * cfg.edge_factor;
    let edges: Vec<(NodeId, NodeId)> = (0..m as u64)
        .into_par_iter()
        .map(|i| {
            let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i);
            sample_edge(cfg, &mut rng)
        })
        .collect();
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    b.extend(edges);
    b.into_edges()
}

fn sample_edge(cfg: &RmatConfig, rng: &mut SmallRng) -> (NodeId, NodeId) {
    let (mut a, mut b, mut c, mut d) = (cfg.a, cfg.b, cfg.c, cfg.d());
    let (mut u, mut v) = (0u64, 0u64);
    for _ in 0..cfg.scale {
        let r: f64 = rng.random();
        u <<= 1;
        v <<= 1;
        if r < a {
            // top-left
        } else if r < a + b {
            v |= 1;
        } else if r < a + b + c {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
        if cfg.noise > 0.0 {
            // Multiplicative noise, renormalized (Graph500 "noise" variant).
            let mut jitter = |p: f64| p * (1.0 - cfg.noise + 2.0 * cfg.noise * rng.random::<f64>());
            a = jitter(a);
            b = jitter(b);
            c = jitter(c);
            d = jitter(d);
            let s = a + b + c + d;
            a /= s;
            b /= s;
            c /= s;
            d /= s;
        }
    }
    (u as NodeId, v as NodeId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let cfg = RmatConfig::graph500(8, 8, 99);
        let g1 = rmat(&cfg);
        let g2 = rmat(&cfg);
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = rmat(&RmatConfig::graph500(8, 8, 1));
        let g2 = rmat(&RmatConfig::graph500(8, 8, 2));
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_ne!(e1, e2);
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let g = rmat(&RmatConfig::graph500(9, 8, 3));
        let mut edges: Vec<_> = g.edges().collect();
        assert!(edges.iter().all(|&(u, v)| u != v));
        let before = edges.len();
        edges.sort_unstable();
        edges.dedup();
        assert_eq!(before, edges.len());
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // Scale-free check: the max degree should far exceed the average.
        let g = rmat(&RmatConfig::graph500(12, 8, 4));
        let avg = g.num_edges() as f64 / g.num_nodes() as f64;
        let max = g.nodes().map(|v| g.out_degree(v)).max().unwrap() as f64;
        assert!(
            max > 8.0 * avg,
            "max degree {max} not ≫ average {avg}; not scale-free"
        );
    }

    #[test]
    fn node_count_is_power_of_two() {
        let g = rmat(&RmatConfig::graph500(5, 4, 5));
        assert_eq!(g.num_nodes(), 32);
    }

    #[test]
    fn compressed_streaming_matches_materialized() {
        use crate::view::GraphView;
        let cfg = RmatConfig::graph500(9, 8, 11);
        let raw = rmat(&cfg);
        let via_csr = CompressedCsr::from_csr(&raw);
        for shards in [1, 7, 64] {
            let streamed = rmat_compressed(&cfg, shards);
            assert_eq!(streamed.num_nodes(), via_csr.num_nodes());
            assert_eq!(streamed.num_edges(), via_csr.num_edges());
            let m = streamed.materialize_csr();
            for v in raw.nodes() {
                assert_eq!(m.out_neighbors(v), raw.out_neighbors(v), "node {v}");
                assert_eq!(m.in_neighbors(v), raw.in_neighbors(v), "node {v}");
            }
        }
    }
}
