//! Rule 5 — engine-only recovery surface: only the pipeline engine
//! (`crates/core/src/pipeline.rs`) and the driver module itself may call
//! the driver's interrupt/recovery machinery. An algorithm that polls or
//! recovers on its own re-creates the per-driver boilerplate the engine
//! exists to collapse. Escape hatch: an `// engine:` comment arguing why
//! the call must live outside the engine.

use crate::engine::{Finding, Rule, Workspace};
use crate::rules::{finding_at, Code};
use crate::source::SourceFile;

const ENGINE_ONLY: &[&str] = &[
    "check_guard",
    "check_interrupt",
    "catch_phase",
    "run_queue_with_recovery",
    "recover_full_restart",
];

pub struct EngineOnly;

impl Rule for EngineOnly {
    fn name(&self) -> &'static str {
        "engine"
    }

    fn description(&self) -> &'static str {
        "interrupt/recovery machinery callable only from the pipeline engine and driver"
    }

    fn check_file(&self, file: &SourceFile, ws: &Workspace, out: &mut Vec<Finding>) {
        if ws.config.is_engine_exempt(&file.rel_path) {
            return;
        }
        let code = Code::new(file);
        for i in 0..code.len() {
            for name in ENGINE_ONLY {
                if !code.is_call(i, name) {
                    continue;
                }
                if !file.has_justification(code.line(i), "// engine:") {
                    out.push(finding_at(
                        &code,
                        i,
                        self.name(),
                        format!(
                            "`{name}` outside the pipeline engine — route the phase through \
                             a PhaseKernel, or add an `// engine:` justification"
                        ),
                    ));
                }
            }
        }
    }
}
