//! Synthetic graph generators.
//!
//! The paper evaluates on nine real-world datasets (Table 1). Those raw
//! files are not redistributable here, so this module provides generators
//! for each *structural class* the paper's analysis depends on:
//!
//! * [`mod@rmat`] — R-MAT/Kronecker graphs: scale-free degree distribution and
//!   the small-world property (tiny diameter). Used as the edge fabric of
//!   the web/social analogs.
//! * [`mod@bowtie`] — the Broder bow-tie SCC structure (one giant O(N) SCC with
//!   power-law-sized satellite SCCs attached around it), which §2.2/§3.3 of
//!   the paper identify as the property driving Method 1 and Method 2.
//! * [`dag`] — citation DAGs (the Patents analog: *no* cycles at all).
//! * [`grid`] — 2D road lattices (the CA-road analog: planar, huge diameter,
//!   many mid-sized SCCs — the paper's negative case).
//! * [`mod@erdos_renyi`], [`mod@watts_strogatz`] — classic baselines used in tests
//!   and property checks.
//! * [`orient`] — random orientation of undirected edges (Table 1 footnote:
//!   Friendster/Orkut/CA-road are undirected and each edge receives a
//!   random direction).
//!
//! All generators are deterministic given a seed.

pub mod bowtie;
pub mod dag;
pub mod erdos_renyi;
pub mod grid;
pub mod orient;
pub mod rmat;
pub mod watts_strogatz;

pub use bowtie::{bowtie, BowtieConfig};
pub use dag::{citation_dag, CitationConfig};
pub use erdos_renyi::erdos_renyi;
pub use grid::{road_grid, RoadGridConfig};
pub use orient::orient_randomly;
pub use rmat::{rmat, rmat_compressed, RmatConfig};
pub use watts_strogatz::{watts_strogatz, watts_strogatz_compressed};

use rand::RngExt;

/// Samples a discrete power-law ("Pareto") value in `[xmin, xmax]` with
/// exponent `alpha > 1`: P(X = k) ∝ k^-alpha. Uses the continuous inverse
/// CDF and floors, which is the standard cheap approximation and reproduces
/// the heavy tail the SCC-size histograms (Fig. 2 / Fig. 9) require.
pub(crate) fn sample_power_law(rng: &mut impl rand::Rng, xmin: u64, xmax: u64, alpha: f64) -> u64 {
    debug_assert!(alpha > 1.0 && xmin >= 1 && xmax >= xmin);
    let u: f64 = rng.random::<f64>();
    // Inverse-CDF of the truncated continuous Pareto on [xmin, xmax+1).
    let a = 1.0 - alpha;
    let lo = (xmin as f64).powf(a);
    let hi = ((xmax + 1) as f64).powf(a);
    let x = (lo + u * (hi - lo)).powf(1.0 / a);
    (x.floor() as u64).clamp(xmin, xmax)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn power_law_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = sample_power_law(&mut rng, 1, 100, 2.5);
            assert!((1..=100).contains(&x));
        }
    }

    #[test]
    fn power_law_is_heavy_headed() {
        // With alpha=2.5 the mode is xmin and small values dominate.
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 20_000;
        let ones = (0..n)
            .filter(|_| sample_power_law(&mut rng, 1, 1000, 2.5) == 1)
            .count();
        assert!(
            ones > n / 2,
            "expected majority of samples at xmin, got {ones}/{n}"
        );
    }

    #[test]
    fn power_law_degenerate_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(sample_power_law(&mut rng, 5, 5, 2.0), 5);
    }
}
