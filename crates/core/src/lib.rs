//! # swscc-core — parallel SCC detection for small-world graphs
//!
//! A faithful Rust implementation of *"On Fast Parallel Detection of
//! Strongly Connected Components (SCC) in Small-World Graphs"* (Hong,
//! Rodia, Olukotun — SC'13), including the paper's baseline and both
//! proposed methods, plus three independent sequential oracles.
//!
//! ## Algorithms
//!
//! | API | Paper | Strategy |
//! |---|---|---|
//! | [`tarjan::tarjan_scc`] | speedup baseline | sequential, iterative Tarjan |
//! | [`kosaraju::kosaraju_scc`] | (test oracle) | sequential two-pass |
//! | [`pearce::pearce_scc`] | (test oracle) | sequential, one-array Pearce |
//! | [`baseline::baseline_scc`] | Alg. 3 | Par-Trim + recursive FW-BW work queue |
//! | [`method1::method1_scc`] | Alg. 6 | + data-parallel giant-SCC peel (Par-FWBW) |
//! | [`method2::method2_scc`] | Alg. 9 | + Par-Trim2 + Par-WCC re-partitioning |
//!
//! The one-stop entry point is [`detect_scc`] with an [`Algorithm`]
//! selector and an [`SccConfig`]; it returns the component assignment
//! ([`SccResult`]) and a [`instrument::RunReport`] with the per-phase
//! timings/counters behind the paper's Figures 7 and 8 and the §3.3 task
//! log.
//!
//! The five parallel algorithms are declarative stage lists executed by
//! the [`pipeline`] engine; [`run_pipeline`] also runs any legal custom
//! composition (the CLI's `--pipeline` flag) with the same per-phase
//! breakdown.
//!
//! ## Quick start
//!
//! ```
//! use swscc_core::{detect_scc, Algorithm, SccConfig};
//! use swscc_graph::CsrGraph;
//!
//! // two 3-cycles joined by one edge, plus an isolated node
//! let g = CsrGraph::from_edges(
//!     7,
//!     &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)],
//! );
//! let (result, _report) = detect_scc(&g, Algorithm::Method2, &SccConfig::default());
//! assert_eq!(result.num_components(), 3); // {0,1,2}, {3,4,5}, {6}
//! assert_eq!(result.largest_component_size(), 3);
//! ```

pub mod baseline;
pub mod coloring;
pub mod config;
mod driver;
pub mod error;
pub mod fwbw;
pub mod fwbw_only;
pub mod incremental;
pub mod instrument;
pub mod kosaraju;
pub mod method1;
pub mod method2;
pub mod multireach;
pub mod multistep;
pub mod pearce;
pub mod pipeline;
pub mod result;
pub mod snapshot;
pub mod state;
pub mod tarjan;
pub mod trim;
pub mod trim2;
pub mod wcc;

pub use config::{CompactionPolicy, PanicPolicy, PivotStrategy, SccConfig, WccImpl};
pub use error::{Canceller, RunGuard, SccError};
pub use incremental::{EngineCounters, IncrementalEngine, Mutation, MutationOutcome};
pub use instrument::{RecoveryEvent, RunReport};
pub use pipeline::{run_pipeline, Pipeline, PipelineError, Stage};
pub use result::SccResult;
pub use snapshot::SccSnapshot;

use swscc_graph::CsrGraph;

/// Which SCC implementation to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Sequential Tarjan (the paper's "optimal sequential algorithm").
    Tarjan,
    /// Sequential Kosaraju (oracle).
    Kosaraju,
    /// Sequential Pearce (oracle).
    Pearce,
    /// The original FW-BW algorithm (Fleischer et al. \[13\]) with no Trim
    /// step — the pre-paper state of the art, kept for the Trim ablation.
    FwBw,
    /// Orzan's Coloring algorithm (max-label propagation) — the other
    /// classic parallel SCC family, compared against by the paper's
    /// related work (\[8\], \[9\]) and follow-ons.
    Coloring,
    /// Paper Algorithm 3: parallel Trim + recursive FW-BW via work queue.
    Baseline,
    /// Paper Algorithm 6: two-phase parallelization.
    Method1,
    /// Paper Algorithm 9: Method 1 + Trim2 + parallel WCC.
    Method2,
    /// Multistep (Slota et al., IPDPS'14) — the paper's direct follow-on:
    /// Trim → degree-product FW-BW peel → Coloring tail → serial finish.
    /// Implemented as an extension feature.
    Multistep,
}

impl Algorithm {
    /// All algorithms, sequential oracles first.
    pub fn all() -> [Algorithm; 9] {
        [
            Algorithm::Tarjan,
            Algorithm::Kosaraju,
            Algorithm::Pearce,
            Algorithm::FwBw,
            Algorithm::Coloring,
            Algorithm::Baseline,
            Algorithm::Method1,
            Algorithm::Method2,
            Algorithm::Multistep,
        ]
    }

    /// The three parallel methods evaluated in Fig. 6/7.
    pub fn parallel() -> [Algorithm; 3] {
        [Algorithm::Baseline, Algorithm::Method1, Algorithm::Method2]
    }

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Tarjan => "tarjan",
            Algorithm::Kosaraju => "kosaraju",
            Algorithm::Pearce => "pearce",
            Algorithm::FwBw => "fwbw",
            Algorithm::Coloring => "coloring",
            Algorithm::Baseline => "baseline",
            Algorithm::Method1 => "method1",
            Algorithm::Method2 => "method2",
            Algorithm::Multistep => "multistep",
        }
    }

    /// Parses a name as printed by [`Algorithm::name`].
    pub fn from_name(s: &str) -> Option<Algorithm> {
        Algorithm::all().into_iter().find(|a| a.name() == s)
    }
}

/// Runs the selected SCC algorithm on `g` and returns the component
/// assignment plus the instrumentation report.
pub fn detect_scc(g: &CsrGraph, algo: Algorithm, cfg: &SccConfig) -> (SccResult, RunReport) {
    match algo {
        Algorithm::Tarjan => instrument::timed_sequential(|| tarjan::tarjan_scc(g)),
        Algorithm::Kosaraju => instrument::timed_sequential(|| kosaraju::kosaraju_scc(g)),
        Algorithm::Pearce => instrument::timed_sequential(|| pearce::pearce_scc(g)),
        Algorithm::FwBw => fwbw_only::fwbw_scc(g, cfg),
        Algorithm::Coloring => coloring::coloring_scc(g, cfg),
        Algorithm::Baseline => baseline::baseline_scc(g, cfg),
        Algorithm::Method1 => method1::method1_scc(g, cfg),
        Algorithm::Method2 => method2::method2_scc(g, cfg),
        Algorithm::Multistep => multistep::multistep_scc(g, cfg),
    }
}

/// Fault-tolerant entry point: runs the selected algorithm under `guard`
/// (cooperative cancellation + optional deadline) with panic recovery per
/// [`SccConfig::on_panic`] and watchdog-bounded fixpoint loops.
///
/// The five parallel algorithms dispatch through the [`pipeline`]
/// engine's stock stage-list table ([`Pipeline::stock`]); the engine
/// polls the guard at stage/round granularity and returns a typed
/// [`SccError`] on abort. The sequential oracles and the demo FW-BW run
/// outside the engine and cannot be interrupted mid-run; for those the
/// guard is honoured once at entry.
#[must_use = "dropping the result discards both the SCC partition and the run's error/recovery record"]
pub fn run_checked(
    g: &CsrGraph,
    algo: Algorithm,
    cfg: &SccConfig,
    guard: &RunGuard,
) -> Result<(SccResult, RunReport), SccError> {
    match Pipeline::stock(algo) {
        Some(pipeline) => run_pipeline(g, &pipeline, cfg, guard),
        None => {
            // engine: the sequential oracles and the demo FW-BW have no
            // stage structure to pipeline — the guard is polled exactly
            // once at entry, the documented best effort for algorithms
            // that cannot be interrupted mid-run.
            driver::check_guard(guard)?;
            Ok(detect_scc(g, algo, cfg))
        }
    }
}
