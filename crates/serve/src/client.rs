//! Blocking client for the `swscc-serve` wire protocol — used by the
//! load generator, the e2e tests, and anyone scripting the daemon.
//!
//! One [`Client`] wraps one connection. Calls are synchronous
//! request/response; the connection carries an I/O timeout in both
//! directions (armed at connect), so a hung or gone server surfaces as
//! a typed [`FrameError::Io`] instead of a stuck caller.

use crate::net::{Endpoint, Stream};
use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, FrameError, MutOp, Request, Response,
    StatsReply, MAX_RESPONSE_FRAME,
};
use std::io;
use std::time::Duration;

/// One connection to a running server.
pub struct Client {
    stream: Stream,
}

impl Client {
    /// Dials `endpoint`; both I/O timeouts are armed before returning.
    pub fn connect(endpoint: &Endpoint, io_timeout: Duration) -> io::Result<Client> {
        Ok(Client {
            stream: Stream::connect(endpoint, io_timeout)?,
        })
    }

    /// One synchronous round trip. Any [`FrameError`] means this
    /// connection is no longer trustworthy — drop the client and
    /// reconnect.
    pub fn call(&mut self, request: &Request) -> Result<Response, FrameError> {
        write_frame(&mut self.stream, &encode_request(request))?;
        let payload = read_frame(&mut self.stream, MAX_RESPONSE_FRAME)?;
        decode_response(&payload)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), FrameError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Service counters + serving epoch.
    pub fn stats(&mut self) -> Result<StatsReply, FrameError> {
        match self.call(&Request::Stats)? {
            Response::Stats(reply) => Ok(reply),
            other => Err(unexpected(&other)),
        }
    }

    /// `same-scc(u, v)` with a deadline budget (0 = server default).
    pub fn same_scc(&mut self, u: u32, v: u32, deadline_ms: u32) -> Result<Response, FrameError> {
        self.call(&Request::SameScc { u, v, deadline_ms })
    }

    /// `scc-id(u)` with a deadline budget (0 = server default).
    pub fn scc_id(&mut self, u: u32, deadline_ms: u32) -> Result<Response, FrameError> {
        self.call(&Request::SccId { u, deadline_ms })
    }

    /// `condensation-reach(u, v)` with a deadline budget (0 = server
    /// default).
    pub fn condensation_reach(
        &mut self,
        u: u32,
        v: u32,
        deadline_ms: u32,
    ) -> Result<Response, FrameError> {
        self.call(&Request::CondReach { u, v, deadline_ms })
    }

    /// Admin: rebuild the snapshot and swap the epoch.
    pub fn recompute(&mut self) -> Result<Response, FrameError> {
        self.call(&Request::Recompute)
    }

    /// `insert-edge(u, v)` with a deadline budget (0 = server default).
    pub fn insert_edge(
        &mut self,
        u: u32,
        v: u32,
        deadline_ms: u32,
    ) -> Result<Response, FrameError> {
        self.call(&Request::InsertEdge { u, v, deadline_ms })
    }

    /// `delete-edge(u, v)` with a deadline budget (0 = server default).
    pub fn delete_edge(
        &mut self,
        u: u32,
        v: u32,
        deadline_ms: u32,
    ) -> Result<Response, FrameError> {
        self.call(&Request::DeleteEdge { u, v, deadline_ms })
    }

    /// `batch-mutate` — up to [`crate::protocol::MAX_MUTATION_BATCH`]
    /// ops applied as one write publishing one epoch.
    pub fn batch_mutate(
        &mut self,
        ops: Vec<MutOp>,
        deadline_ms: u32,
    ) -> Result<Response, FrameError> {
        self.call(&Request::BatchMutate { deadline_ms, ops })
    }

    /// Admin: fold the pending delta overlay into a fresh base.
    pub fn compact(&mut self) -> Result<Response, FrameError> {
        self.call(&Request::Compact)
    }

    /// Admin: ask the server to stop accepting and exit its serve loop.
    pub fn shutdown(&mut self) -> Result<(), FrameError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

/// A response that is legal on the wire but wrong for the request is a
/// server bug from the client's perspective; map it to the transport
/// error domain rather than panicking in the caller.
fn unexpected(_resp: &Response) -> FrameError {
    FrameError::Io(io::ErrorKind::InvalidData)
}
