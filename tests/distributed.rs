//! Integration tests for the distributed (BSP) pipeline: §6 of the paper.

use swscc::distributed::{dist_scc, run_supersteps, Outbox};
use swscc::graph::datasets::Dataset;
use swscc::{detect_scc, Algorithm, SccConfig};

#[test]
fn matches_shared_memory_on_dataset_analogs() {
    for d in [
        Dataset::Livej,
        Dataset::Baidu,
        Dataset::Patents,
        Dataset::CaRoad,
    ] {
        let g = d.generate(0.02, 42);
        let (want, _) = detect_scc(&g, Algorithm::Tarjan, &SccConfig::default());
        for workers in [1usize, 4] {
            let (got, report) = dist_scc(&g, workers);
            assert_eq!(
                got.canonical_labels(),
                want.canonical_labels(),
                "{} with {workers} workers",
                d.name()
            );
            assert!(report.supersteps > 0);
            assert_eq!(
                report.trim_resolved + report.peel_resolved + report.residual_nodes,
                g.num_nodes(),
                "{}: phase accounting must cover every node",
                d.name()
            );
        }
    }
}

#[test]
fn small_world_residual_is_tiny() {
    // Fig. 8's distributed corollary: trim + peel resolve almost everything,
    // so the coordinator gather is a small fraction of N.
    let g = Dataset::Livej.generate(0.1, 42);
    let (_, report) = dist_scc(&g, 4);
    assert!(
        report.residual_nodes * 10 < g.num_nodes(),
        "residual {} of {} nodes",
        report.residual_nodes,
        g.num_nodes()
    );
    assert!(
        report.peel_resolved > g.num_nodes() / 2,
        "peel must take the giant"
    );
}

#[test]
fn superstep_count_is_small_world_friendly() {
    // The §6 argument: all kernels are neighbor-local, so the number of
    // global rounds tracks how often waves cross partition boundaries —
    // bounded for small-world graphs, worse for the planar road analog.
    // (Each worker expands waves locally to a fixpoint within a superstep,
    // so the gap is boundary-crossings, not raw diameter.)
    let g = Dataset::Flickr.generate(0.05, 42);
    let (_, small_world) = dist_scc(&g, 4);
    let road = Dataset::CaRoad.generate(0.05, 42);
    let (_, planar) = dist_scc(&road, 4);
    assert!(
        planar.supersteps > small_world.supersteps,
        "road {} supersteps vs small-world {}",
        planar.supersteps,
        small_world.supersteps
    );
    // and the small-world pipeline stays within a few dozen global rounds
    assert!(
        small_world.supersteps < 40,
        "small-world pipeline took {} supersteps",
        small_world.supersteps
    );
}

#[test]
fn worker_count_does_not_change_partition() {
    let g = Dataset::Wiki.generate(0.03, 7);
    let (r1, _) = dist_scc(&g, 1);
    for workers in [2usize, 3, 6, 16] {
        let (r, _) = dist_scc(&g, workers);
        assert_eq!(
            r.canonical_labels(),
            r1.canonical_labels(),
            "{workers} workers"
        );
    }
}

#[test]
fn engine_usable_directly() {
    // The BSP engine is a public building block: broadcast-and-ack.
    use swscc_sync::atomic::{AtomicUsize, Ordering};
    let acks = AtomicUsize::new(0);
    let stats = run_supersteps(
        3,
        vec![vec![(0usize, 0u8)], vec![], vec![]],
        10,
        |w, _, inbox, out: &mut Outbox<(usize, u8)>| {
            for &(from, kind) in inbox {
                match kind {
                    0 => {
                        // broadcast: send an ack back and forward to next
                        out.send(from, (w, 1));
                        if w + 1 < 3 {
                            out.send(w + 1, (from, 0));
                        }
                    }
                    _ => {
                        acks.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        },
    );
    assert_eq!(acks.load(Ordering::Relaxed), 3);
    assert!(stats.supersteps <= 5);
}
