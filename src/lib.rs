//! # swscc — fast parallel SCC detection for small-world graphs
//!
//! Façade crate re-exporting the full public API of the workspace, a Rust
//! reproduction of *"On Fast Parallel Detection of Strongly Connected
//! Components (SCC) in Small-World Graphs"* (Hong, Rodia, Olukotun, SC'13).
//!
//! * [`graph`] — CSR graphs, generators, dataset analogs, statistics
//!   (`swscc-graph`).
//! * [`parallel`] — work queue, atomic bitset, thread-pool helpers
//!   (`swscc-parallel`).
//! * [`core`] — the SCC algorithms themselves (`swscc-core`).
//! * [`distributed`] — BSP message-passing simulation of the pipeline,
//!   the paper's §6 future work (`swscc-distributed`).
//! * [`serve`] — the always-on SCC service: epoch snapshots, admission
//!   control, the wire protocol, and the load generator (`swscc-serve`).
//!
//! The most common entry points are re-exported at the top level:
//!
//! ```
//! use swscc::{detect_scc, Algorithm, CsrGraph, SccConfig};
//!
//! let g = CsrGraph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
//! let (result, report) = detect_scc(&g, Algorithm::Method2, &SccConfig::default());
//! assert_eq!(result.num_components(), 2);
//! assert!(report.total_time.as_nanos() > 0);
//! ```

pub use swscc_core as core;
pub use swscc_distributed as distributed;
pub use swscc_graph as graph;
pub use swscc_parallel as parallel;
pub use swscc_serve as serve;
pub use swscc_sync as sync;

pub use swscc_core::{
    detect_scc, run_checked, run_pipeline, Algorithm, Canceller, CompactionPolicy, PanicPolicy,
    Pipeline, PipelineError, PivotStrategy, RecoveryEvent, RunGuard, RunReport, SccConfig,
    SccError, SccResult, SccSnapshot, Stage, WccImpl,
};
pub use swscc_graph::{CsrGraph, GraphBuilder, NodeId};
