//! Transport plumbing shared by the server and the client: a TCP or
//! unix-socket endpoint, a unified stream with mandatory I/O timeouts,
//! and a nonblocking listener for the accept loop.
//!
//! Every accepted or connected socket gets *both* a read and a write
//! timeout before any byte moves. The read timeout doubles as idle
//! reaping (a silent client is dropped after one timeout), and the
//! write timeout is what keeps a slow-reading client from pinning its
//! handler thread forever — the accept loop itself never writes, so it
//! can never stall on a slow peer.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where the service listens (or where a client connects).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP socket address, e.g. `127.0.0.1:7654` (`:0` picks a free
    /// port; [`Listener::local_endpoint`] reports the real one).
    Tcp(String),
    /// A unix domain socket path. A stale socket file is removed at
    /// bind; the file is removed again when the listener is dropped.
    Unix(PathBuf),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            Endpoint::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

/// One accepted or dialed connection, TCP or unix, with both I/O
/// timeouts armed.
pub(crate) enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    /// Arms read *and* write timeouts. `None` is refused by
    /// construction — callers always pass a finite timeout, so no
    /// handler thread can block on a dead peer indefinitely. TCP also
    /// gets `TCP_NODELAY`: frames are a length prefix plus a tiny
    /// payload, and letting Nagle hold the second write hostage to the
    /// peer's delayed ACK turns a microsecond request into ~40-200ms.
    pub(crate) fn set_timeouts(&self, timeout: Duration) -> io::Result<()> {
        let t = Some(timeout);
        match self {
            Stream::Tcp(s) => {
                s.set_nodelay(true)?;
                s.set_read_timeout(t)?;
                s.set_write_timeout(t)
            }
            Stream::Unix(s) => {
                s.set_read_timeout(t)?;
                s.set_write_timeout(t)
            }
        }
    }

    /// Dials `endpoint` and arms both timeouts before returning.
    pub(crate) fn connect(endpoint: &Endpoint, timeout: Duration) -> io::Result<Stream> {
        let stream = match endpoint {
            Endpoint::Tcp(addr) => Stream::Tcp(TcpStream::connect(addr)?),
            Endpoint::Unix(path) => Stream::Unix(UnixStream::connect(path)?),
        };
        stream.set_timeouts(timeout)?;
        Ok(stream)
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A bound, nonblocking listener. Nonblocking so the accept loop can
/// interleave accepts with shutdown-flag polls instead of parking in
/// the kernel forever.
pub struct Listener {
    inner: ListenerInner,
    /// Set for unix listeners: the socket file to unlink on drop.
    cleanup: Option<PathBuf>,
}

enum ListenerInner {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    /// Binds `endpoint` and switches the socket to nonblocking accepts.
    /// For unix endpoints a stale socket file left by a crashed prior
    /// instance is removed first.
    pub fn bind(endpoint: &Endpoint) -> io::Result<Listener> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                l.set_nonblocking(true)?;
                Ok(Listener {
                    inner: ListenerInner::Tcp(l),
                    cleanup: None,
                })
            }
            Endpoint::Unix(path) => {
                if path.exists() {
                    // A stale socket from a dead server; a live one will
                    // make the bind below fail loudly anyway.
                    let _ = std::fs::remove_file(path);
                }
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Ok(Listener {
                    inner: ListenerInner::Unix(l),
                    cleanup: Some(path.clone()),
                })
            }
        }
    }

    /// The endpoint actually bound — for TCP this resolves `:0` to the
    /// kernel-assigned port, which is how tests find their server.
    pub fn local_endpoint(&self) -> io::Result<Endpoint> {
        match &self.inner {
            ListenerInner::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?.to_string())),
            ListenerInner::Unix(l) => {
                let addr = l.local_addr()?;
                let path = addr
                    .as_pathname()
                    .map(PathBuf::from)
                    .ok_or_else(|| io::Error::other("unnamed unix socket"))?;
                Ok(Endpoint::Unix(path))
            }
        }
    }

    /// One nonblocking accept. `WouldBlock` is surfaced to the caller,
    /// which sleeps briefly and re-polls its shutdown flag.
    pub(crate) fn accept(&self) -> io::Result<Stream> {
        match &self.inner {
            ListenerInner::Tcp(l) => {
                let (s, _) = l.accept()?;
                // Accepted sockets inherit nonblocking on some
                // platforms; handlers want blocking reads with a
                // timeout, so flip it back explicitly.
                s.set_nonblocking(false)?;
                Ok(Stream::Tcp(s))
            }
            ListenerInner::Unix(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                Ok(Stream::Unix(s))
            }
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Some(path) = &self.cleanup {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_display() {
        assert_eq!(
            Endpoint::Tcp("1.2.3.4:5".into()).to_string(),
            "tcp://1.2.3.4:5"
        );
        assert_eq!(
            Endpoint::Unix(PathBuf::from("/tmp/x.sock")).to_string(),
            "unix:///tmp/x.sock"
        );
    }

    #[test]
    fn tcp_bind_reports_real_port() {
        let l = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        match l.local_endpoint().unwrap() {
            Endpoint::Tcp(addr) => assert!(!addr.ends_with(":0"), "got {addr}"),
            other => panic!("wrong endpoint kind: {other:?}"),
        }
    }

    #[test]
    fn unix_bind_cleans_up_socket_file() {
        let path = std::env::temp_dir().join(format!("swscc-net-test-{}.sock", std::process::id()));
        {
            let _l = Listener::bind(&Endpoint::Unix(path.clone())).unwrap();
            assert!(path.exists());
            // Rebinding over a stale file (simulated: bind while the old
            // listener is gone) is exercised by dropping and rebinding
            // below.
        }
        assert!(!path.exists(), "socket file must be removed on drop");
        let _l = Listener::bind(&Endpoint::Unix(path.clone())).unwrap();
        assert!(path.exists());
        drop(_l);
        assert!(!path.exists());
    }
}
