//! Figure 7: execution time breakdown for all methods on all graphs.
//!
//! Each row is one (method, thread-count) cell of the paper's stacked-bar
//! plots: milliseconds spent in Par-Trim, Par-FWBW, Par-Trim′ (the Fig. 7
//! caption's "Trim only for Method 1 but Trim, Trim2 and Trim in sequence
//! for Method 2"), Par-WCC, and the recursive FW-BW phase.

use swscc_bench::{ms, print_header, scale, thread_sweep};
use swscc_core::instrument::Phase;
use swscc_core::{detect_scc, Algorithm, SccConfig};
use swscc_graph::datasets::Dataset;

fn main() {
    print_header("Figure 7: execution time breakdown (ms)");
    let threads = thread_sweep();
    let only: Option<Dataset> = std::env::args().nth(1).and_then(|s| Dataset::from_name(&s));

    for d in Dataset::all() {
        if let Some(o) = only {
            if o != d {
                continue;
            }
        }
        let g = d.load(scale(), 42);
        println!(
            "--- {} (N={}, M={})",
            d.name(),
            g.num_nodes(),
            g.num_edges()
        );
        println!(
            "{:<10} {:>8} {:>10} {:>10} {:>10} {:>10} {:>11} {:>10}",
            "method",
            "threads",
            "par-trim",
            "par-fwbw",
            "par-trim'",
            "par-wcc",
            "recur-fwbw",
            "total"
        );
        for a in Algorithm::parallel() {
            for &t in &threads {
                let cfg = SccConfig::with_threads(t);
                let (_, report) = detect_scc(&g, a, &cfg);
                println!(
                    "{:<10} {:>8} {:>10} {:>10} {:>10} {:>10} {:>11} {:>10}",
                    a.name(),
                    t,
                    ms(report.time_in(Phase::ParTrim)),
                    ms(report.time_in(Phase::ParFwbw)),
                    ms(report.time_in(Phase::ParTrim2)),
                    ms(report.time_in(Phase::ParWcc)),
                    ms(report.time_in(Phase::RecurFwbw)),
                    ms(report.total_time),
                );
            }
        }
        println!();
    }
}
