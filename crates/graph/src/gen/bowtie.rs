//! Bow-tie small-world graph generator with *planted* SCC structure.
//!
//! §2.2 and §3.3 of the paper describe the SCC anatomy of real small-world
//! graphs (after Broder et al. \[11\] and Kumar et al. \[17\]):
//!
//! * one **giant SCC** of size O(N) at the center,
//! * a **power-law tail** of small SCCs attached around it (Fig. 2/9),
//! * a horde of **size-1 SCCs** (most frequent of all),
//! * small SCCs grouped into weakly connected clusters hanging off the
//!   giant (Fig. 3) — the structure that starves the recursive FW-BW phase
//!   and that Method 2's WCC step exploits,
//! * chains of **size-2 SCCs** — the Trim2 (§3.4) target pattern.
//!
//! This generator plants each of those features explicitly and returns the
//! ground-truth SCC partition alongside the graph, which makes it both the
//! paper-faithful workload for the benchmark harness and an exact oracle
//! for correctness tests: attachment edges are always oriented consistently
//! (IN-side satellites only point *toward* the core / earlier satellites,
//! OUT-side only *away*), so no unplanned cycle can arise.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, NodeId};
use crate::gen::sample_power_law;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`bowtie`].
#[derive(Clone, Copy, Debug)]
pub struct BowtieConfig {
    /// Total number of nodes N.
    pub num_nodes: usize,
    /// Fraction of N inside the giant SCC (Table 1: 0.28–0.96 across the
    /// paper's small-world instances).
    pub giant_frac: f64,
    /// Extra random chord edges per core node (beyond the Hamiltonian cycle
    /// that guarantees strong connectivity). Controls density and diameter.
    pub core_edge_factor: usize,
    /// Power-law exponent for satellite SCC sizes (Fig. 2 slope).
    pub sat_alpha: f64,
    /// Cap on satellite SCC size.
    pub sat_max_size: u64,
    /// Fraction of the non-giant nodes that become size-1 SCCs (tendrils).
    pub trivial_frac: f64,
    /// Number of chains of mutually-linked node pairs (size-2 SCCs), the
    /// §3.4 Trim2 pattern.
    pub two_cycle_chains: usize,
    /// Pairs per chain.
    pub chain_len: usize,
    /// Probability that a satellite also links to a previously generated
    /// satellite on the same side, creating multi-SCC weakly connected
    /// clusters (Fig. 3) for the Par-WCC phase to split.
    pub inter_sat_prob: f64,
    /// Attachment edges from each satellite to the core.
    pub attach_edges: usize,
    /// Exponent skewing chord targets toward low node ids, which creates
    /// scale-free in-degree hubs inside the core (§4.3's load-imbalance
    /// driver). 1.0 = uniform.
    pub hub_gamma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BowtieConfig {
    fn default() -> Self {
        BowtieConfig {
            num_nodes: 100_000,
            giant_frac: 0.6,
            core_edge_factor: 8,
            sat_alpha: 2.5,
            sat_max_size: 1000,
            trivial_frac: 0.6,
            two_cycle_chains: 50,
            chain_len: 3,
            inter_sat_prob: 0.3,
            attach_edges: 2,
            hub_gamma: 2.0,
            seed: 42,
        }
    }
}

/// A generated bow-tie graph plus its planted ground truth.
#[derive(Clone, Debug)]
pub struct BowtieGraph {
    /// The graph itself.
    pub graph: CsrGraph,
    /// Size of the planted giant SCC (nodes `0..core_size`).
    pub core_size: usize,
    /// Planted sizes of every SCC, including the giant, every satellite,
    /// every size-2 pair, and every trivial node. Sums to `num_nodes`.
    pub scc_sizes: Vec<usize>,
    /// Ground-truth component id per node (components numbered arbitrarily).
    pub component_of: Vec<u32>,
}

/// Generates a bow-tie small-world graph. See [`BowtieConfig`].
///
/// # Examples
///
/// ```
/// use swscc_graph::gen::{bowtie, BowtieConfig};
///
/// let bt = bowtie(&BowtieConfig { num_nodes: 5000, ..Default::default() });
/// assert_eq!(bt.graph.num_nodes(), 5000);
/// assert!(bt.core_size >= 2500); // giant_frac 0.6 of 5000, minus rounding
/// assert_eq!(bt.scc_sizes.iter().sum::<usize>(), 5000);
/// ```
pub fn bowtie(cfg: &BowtieConfig) -> BowtieGraph {
    assert!(cfg.num_nodes >= 8, "bow-tie needs at least 8 nodes");
    assert!((0.0..=1.0).contains(&cfg.giant_frac));
    assert!((0.0..=1.0).contains(&cfg.trivial_frac));
    let n = cfg.num_nodes;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    let core_size = ((n as f64 * cfg.giant_frac) as usize).clamp(2, n);
    let chain_nodes = (2 * cfg.chain_len * cfg.two_cycle_chains).min(n - core_size);
    let rest = n - core_size - chain_nodes;
    let trivial_count = (rest as f64 * cfg.trivial_frac) as usize;
    let sat_region = rest - trivial_count;

    let mut b = GraphBuilder::with_capacity(n, core_size * (cfg.core_edge_factor + 1) + 4 * rest);
    let mut component_of = vec![0u32; n];
    let mut scc_sizes: Vec<usize> = Vec::new();
    let mut next_comp = 0u32;

    // --- Giant core: Hamiltonian cycle + skewed random chords -------------
    for i in 0..core_size {
        b.add_edge(i as NodeId, ((i + 1) % core_size) as NodeId);
    }
    let pick_core_hub = |rng: &mut SmallRng| -> NodeId {
        // Skew toward low ids: hub structure / scale-free in-degree.
        let u: f64 = rng.random();
        ((u.powf(cfg.hub_gamma) * core_size as f64) as usize).min(core_size - 1) as NodeId
    };
    for _ in 0..core_size * cfg.core_edge_factor {
        let u = rng.random_range(0..core_size) as NodeId;
        let v = pick_core_hub(&mut rng);
        if u != v {
            b.add_edge(u, v);
        }
    }
    scc_sizes.push(core_size);
    // component 0 = core (component_of already zeroed)
    next_comp += 1;

    // --- Satellite SCCs with power-law sizes ------------------------------
    // Satellites occupy ids [core_size, core_size + sat_region).
    // `in_side[i]` / `out_side[i]`: representative node of satellite i, for
    // inter-satellite weak links.
    let mut in_side_sats: Vec<(NodeId, usize)> = Vec::new(); // (first node, size)
    let mut out_side_sats: Vec<(NodeId, usize)> = Vec::new();
    let mut cursor = core_size;
    let sat_end = core_size + sat_region;
    while cursor < sat_end {
        let want = sample_power_law(&mut rng, 2, cfg.sat_max_size, cfg.sat_alpha) as usize;
        let size = want.min(sat_end - cursor);
        let first = cursor as NodeId;
        if size == 1 {
            // Remainder too small for a cycle: degrade to a trivial node.
            attach_trivial(&mut b, &mut rng, first, core_size, pick_core_hub);
            scc_sizes.push(1);
            component_of[cursor] = next_comp;
            next_comp += 1;
            cursor += 1;
            continue;
        }
        // Internal cycle => exactly one SCC of `size` nodes.
        for k in 0..size {
            let u = (cursor + k) as NodeId;
            let v = (cursor + (k + 1) % size) as NodeId;
            b.add_edge(u, v);
            component_of[cursor + k] = next_comp;
        }
        // A few internal chords for realism (stay inside the satellite).
        for _ in 0..size / 4 {
            let u = (cursor + rng.random_range(0..size)) as NodeId;
            let v = (cursor + rng.random_range(0..size)) as NodeId;
            if u != v {
                b.add_edge(u, v);
            }
        }
        let is_in_side = rng.random_bool(0.5);
        for _ in 0..cfg.attach_edges.max(1) {
            let sat_node = (cursor + rng.random_range(0..size)) as NodeId;
            let core_node = pick_core_hub(&mut rng);
            if is_in_side {
                b.add_edge(sat_node, core_node); // IN set: can reach core
            } else {
                b.add_edge(core_node, sat_node); // OUT set: reachable from core
            }
        }
        // Weak link to an earlier satellite on the same side. Direction is
        // fixed by side so no inter-satellite cycle can form:
        //   IN side:  later -> earlier (both eventually reach the core)
        //   OUT side: earlier -> later (both reachable from the core)
        let side_list = if is_in_side {
            &mut in_side_sats
        } else {
            &mut out_side_sats
        };
        if !side_list.is_empty() && rng.random_bool(cfg.inter_sat_prob) {
            let (peer_first, peer_size) = side_list[rng.random_range(0..side_list.len())];
            let here = (cursor + rng.random_range(0..size)) as NodeId;
            let there = peer_first + rng.random_range(0..peer_size) as NodeId;
            if is_in_side {
                b.add_edge(here, there);
            } else {
                b.add_edge(there, here);
            }
        }
        side_list.push((first, size));
        scc_sizes.push(size);
        next_comp += 1;
        cursor += size;
    }

    // --- Size-2 SCC chains (Trim2 pattern, §3.4) --------------------------
    // Each chain: core -> (A1 <-> B1) -> (A2 <-> B2) -> ... (OUT side).
    let chain_end = sat_end + chain_nodes;
    {
        let mut c = sat_end;
        'chains: for _ in 0..cfg.two_cycle_chains {
            let mut prev_b: Option<NodeId> = None;
            for _ in 0..cfg.chain_len {
                if c + 2 > chain_end {
                    break 'chains;
                }
                let a = c as NodeId;
                let bb = (c + 1) as NodeId;
                b.add_edge(a, bb);
                b.add_edge(bb, a);
                match prev_b {
                    None => b.add_edge(pick_core_hub(&mut rng), a),
                    Some(p) => b.add_edge(p, a),
                }
                component_of[c] = next_comp;
                component_of[c + 1] = next_comp;
                scc_sizes.push(2);
                next_comp += 1;
                prev_b = Some(bb);
                c += 2;
            }
        }
        // Any chain slots left unused (break above) become trivial nodes.
        while c < chain_end {
            attach_trivial(&mut b, &mut rng, c as NodeId, core_size, pick_core_hub);
            component_of[c] = next_comp;
            scc_sizes.push(1);
            next_comp += 1;
            c += 1;
        }
    }

    // --- Trivial tendrils: size-1 SCCs, some in chains (iterative Trim) ---
    let mut t = chain_end;
    while t < n {
        let chain = rng.random_range(1..=3usize).min(n - t);
        let inbound = rng.random_bool(0.5);
        // tendril chain: core -> t -> t+1 -> ... (or reversed for IN side)
        for k in 0..chain {
            let node = (t + k) as NodeId;
            let prev: NodeId = if k == 0 {
                pick_core_hub(&mut rng)
            } else {
                (t + k - 1) as NodeId
            };
            if inbound {
                b.add_edge(node, prev);
            } else {
                b.add_edge(prev, node);
            }
            component_of[t + k] = next_comp;
            scc_sizes.push(1);
            next_comp += 1;
        }
        t += chain;
    }

    debug_assert_eq!(scc_sizes.iter().sum::<usize>(), n);
    BowtieGraph {
        graph: b.build(),
        core_size,
        scc_sizes,
        component_of,
    }
}

fn attach_trivial(
    b: &mut GraphBuilder,
    rng: &mut SmallRng,
    node: NodeId,
    core_size: usize,
    pick_core_hub: impl Fn(&mut SmallRng) -> NodeId,
) {
    let _ = core_size;
    let core_node = pick_core_hub(rng);
    if rng.random_bool(0.5) {
        b.add_edge(node, core_node);
    } else {
        b.add_edge(core_node, node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> BowtieConfig {
        BowtieConfig {
            num_nodes: 2000,
            giant_frac: 0.5,
            core_edge_factor: 4,
            sat_alpha: 2.3,
            sat_max_size: 50,
            trivial_frac: 0.5,
            two_cycle_chains: 10,
            chain_len: 2,
            inter_sat_prob: 0.4,
            attach_edges: 2,
            hub_gamma: 2.0,
            seed: 7,
        }
    }

    #[test]
    fn sizes_partition_the_nodes() {
        let bt = bowtie(&small_cfg());
        assert_eq!(bt.scc_sizes.iter().sum::<usize>(), 2000);
        assert_eq!(bt.graph.num_nodes(), 2000);
        // component_of covers exactly the planted components
        let num_comps = bt.scc_sizes.len();
        let max_comp = *bt.component_of.iter().max().unwrap() as usize;
        assert_eq!(max_comp + 1, num_comps);
    }

    #[test]
    fn giant_is_component_zero_with_right_size() {
        let bt = bowtie(&small_cfg());
        let zero_count = bt.component_of.iter().filter(|&&c| c == 0).count();
        assert_eq!(zero_count, bt.core_size);
        assert_eq!(bt.scc_sizes[0], bt.core_size);
        assert_eq!(bt.core_size, 1000);
    }

    #[test]
    fn component_sizes_match_table() {
        let bt = bowtie(&small_cfg());
        let mut counts = vec![0usize; bt.scc_sizes.len()];
        for &c in &bt.component_of {
            counts[c as usize] += 1;
        }
        assert_eq!(counts, bt.scc_sizes);
    }

    #[test]
    fn core_is_strongly_connected() {
        use crate::bfs::{bfs_levels, Direction, UNREACHED};
        let bt = bowtie(&small_cfg());
        let fw = bfs_levels(&bt.graph, 0, Direction::Forward);
        let bw = bfs_levels(&bt.graph, 0, Direction::Backward);
        for v in 0..bt.core_size {
            assert_ne!(fw[v], UNREACHED, "core node {v} not forward-reachable");
            assert_ne!(bw[v], UNREACHED, "core node {v} not backward-reachable");
        }
    }

    #[test]
    fn no_cycle_escapes_the_plant() {
        // Every mutually-reachable pair must be in the same planted
        // component: check via forward/backward BFS from a sample of nodes.
        use crate::bfs::{bfs_levels, Direction, UNREACHED};
        let bt = bowtie(&small_cfg());
        for src in (0..2000u32).step_by(97) {
            let fw = bfs_levels(&bt.graph, src, Direction::Forward);
            let bw = bfs_levels(&bt.graph, src, Direction::Backward);
            for v in 0..2000usize {
                let mutual = fw[v] != UNREACHED && bw[v] != UNREACHED;
                let same = bt.component_of[v] == bt.component_of[src as usize];
                assert_eq!(
                    mutual, same,
                    "node {v} vs src {src}: mutual={mutual} planted-same={same}"
                );
            }
        }
    }

    #[test]
    fn has_many_trivial_sccs() {
        let bt = bowtie(&small_cfg());
        let ones = bt.scc_sizes.iter().filter(|&&s| s == 1).count();
        assert!(ones > 100, "expected a horde of size-1 SCCs, got {ones}");
    }

    #[test]
    fn has_size_two_chains() {
        let bt = bowtie(&small_cfg());
        let twos = bt.scc_sizes.iter().filter(|&&s| s == 2).count();
        assert!(twos >= 10, "expected planted size-2 SCCs, got {twos}");
    }

    #[test]
    fn deterministic() {
        let a = bowtie(&small_cfg());
        let b = bowtie(&small_cfg());
        let ea: Vec<_> = a.graph.edges().collect();
        let eb: Vec<_> = b.graph.edges().collect();
        assert_eq!(ea, eb);
        assert_eq!(a.scc_sizes, b.scc_sizes);
    }

    #[test]
    fn small_diameter() {
        use crate::bfs::eccentricity;
        use crate::bfs::Direction;
        let bt = bowtie(&BowtieConfig {
            num_nodes: 20_000,
            ..small_cfg()
        });
        // hub chords keep the core diameter tiny relative to its size
        let ecc = eccentricity(&bt.graph, 0, Direction::Forward);
        assert!(ecc < 60, "eccentricity {ecc} too large for a small world");
    }
}
