//! Watts–Strogatz small-world graphs.
//!
//! The canonical "re-wire a ring lattice" construction from the paper's
//! reference \[29\] (Watts & Strogatz 1998): §2.2 cites it as the reason the
//! small-world property is near-universal — re-wiring only a few edges
//! collapses the diameter. The undirected result is randomly oriented per
//! the Table 1 footnote convention.

use crate::builder::GraphBuilder;
use crate::compressed::CompressedCsr;
use crate::csr::{CsrGraph, NodeId};
use crate::gen::orient::orient_randomly;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Generates a Watts–Strogatz graph: ring lattice of `n` nodes each joined
/// to its `k` nearest neighbors (k/2 per side), then each edge re-wired with
/// probability `beta`; finally each undirected edge is randomly oriented.
///
/// # Panics
///
/// Panics if `k` is odd, `k >= n`, or `beta` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use swscc_graph::gen::watts_strogatz;
///
/// let g = watts_strogatz(100, 6, 0.1, 3);
/// assert_eq!(g.num_nodes(), 100);
/// ```
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(k.is_multiple_of(2), "k must be even");
    assert!(k < n, "k must be < n");
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1]");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut undirected: Vec<(NodeId, NodeId)> = Vec::with_capacity(n * k / 2);
    for i in 0..n {
        for j in 1..=k / 2 {
            let u = i as NodeId;
            let mut v = ((i + j) % n) as NodeId;
            if rng.random_bool(beta) {
                // Re-wire the far endpoint to a uniform random node (avoid
                // self-loop; duplicate edges are cleaned by the builder).
                loop {
                    let cand = rng.random_range(0..n) as NodeId;
                    if cand != u {
                        v = cand;
                        break;
                    }
                }
            }
            undirected.push((u, v));
        }
    }
    let directed = orient_randomly(&undirected, &mut rng);
    let mut b = GraphBuilder::with_capacity(n, directed.len());
    b.extend(directed);
    b.build()
}

/// One lattice edge of the streaming Watts–Strogatz construction: edge
/// index `idx` enumerates `(i, j)` pairs row-major (`i`-th node, `j`-th
/// clockwise neighbor), and each edge derives its own RNG stream from
/// `(seed, idx)` for the rewire roll and the orientation coin. A pure
/// function of its arguments, so shard replays are deterministic.
fn ws_stream_edge(n: usize, k: usize, beta: f64, seed: u64, idx: u64) -> (NodeId, NodeId) {
    let half = (k / 2) as u64;
    let i = (idx / half) as usize;
    let j = (idx % half) as usize + 1;
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0xA076_1D64_78BD_642F) ^ idx);
    let u = i as NodeId;
    let mut v = ((i + j) % n) as NodeId;
    if rng.random_bool(beta) {
        loop {
            let cand = rng.random_range(0..n) as NodeId;
            if cand != u {
                v = cand;
                break;
            }
        }
    }
    if rng.random_bool(0.5) {
        (u, v)
    } else {
        (v, u)
    }
}

/// Generates a Watts–Strogatz small-world graph directly into the
/// compressed representation, never materializing the undirected edge
/// list or the uncompressed CSR.
///
/// Unlike [`watts_strogatz`] (one sequential RNG threaded through
/// generation and orientation), the streaming construction derives an
/// independent RNG stream per lattice edge so the stream can be replayed
/// once per shard by [`CompressedCsr::from_edge_stream`]; the two
/// generators sample the same distribution but different point sets for
/// a given seed. Peak transient memory is O(M / `shards`) edge pairs.
///
/// # Panics
///
/// Panics if `k` is odd, `k >= n`, or `beta` is outside `[0, 1]`.
pub fn watts_strogatz_compressed(
    n: usize,
    k: usize,
    beta: f64,
    seed: u64,
    shards: usize,
) -> CompressedCsr {
    assert!(k.is_multiple_of(2), "k must be even");
    assert!(k < n, "k must be < n");
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1]");
    let m = (n * k / 2) as u64;
    CompressedCsr::from_edge_stream(n, shards, |emit| {
        for idx in 0..m {
            let (u, v) = ws_stream_edge(n, k, beta, seed, idx);
            emit(u, v);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::{undirected_bfs_levels, UNREACHED};

    #[test]
    fn node_and_edge_counts() {
        let g = watts_strogatz(200, 4, 0.05, 1);
        assert_eq!(g.num_nodes(), 200);
        // k/2 * n undirected edges, each oriented once (some lost to dedup)
        assert!(g.num_edges() <= 400 && g.num_edges() > 350);
    }

    #[test]
    fn beta_zero_is_ring_lattice() {
        let g = watts_strogatz(20, 2, 0.0, 2);
        // Every node connects to its successor (direction random).
        for i in 0..20u32 {
            let j = (i + 1) % 20;
            assert!(g.has_edge(i, j) || g.has_edge(j, i));
        }
    }

    #[test]
    fn weakly_connected_at_low_beta() {
        let g = watts_strogatz(500, 6, 0.1, 3);
        let lv = undirected_bfs_levels(&g, 0);
        assert!(lv.iter().all(|&l| l != UNREACHED));
    }

    #[test]
    fn rewiring_shrinks_diameter() {
        // Small-world effect: eccentricity under undirected BFS drops
        // sharply once beta > 0. Ring with k=4: radius = n/4 hops. Use k=4
        // so the rewired graph stays connected (k=2 with rewiring can
        // fragment the ring, which would make the eccentricity spuriously
        // small or large).
        let ring = watts_strogatz(400, 4, 0.0, 4);
        let rewired = watts_strogatz(400, 4, 0.3, 4);
        let ecc = |g: &CsrGraph| {
            undirected_bfs_levels(g, 0)
                .into_iter()
                .filter(|&l| l != UNREACHED)
                .max()
                .unwrap()
        };
        let (r, w) = (ecc(&ring), ecc(&rewired));
        assert!(w * 3 < r, "rewired ecc {w} not ≪ ring ecc {r}");
    }

    #[test]
    #[should_panic(expected = "k must be even")]
    fn odd_k_panics() {
        watts_strogatz(10, 3, 0.1, 1);
    }

    #[test]
    fn deterministic() {
        let a: Vec<_> = watts_strogatz(50, 4, 0.2, 5).edges().collect();
        let b: Vec<_> = watts_strogatz(50, 4, 0.2, 5).edges().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn compressed_streaming_shard_invariant() {
        use crate::view::GraphView;
        // The streamed graph must not depend on the shard count, and must
        // equal the same edge stream pushed through the raw builder.
        let (n, k, beta, seed) = (300usize, 6usize, 0.15f64, 9u64);
        let mut b = GraphBuilder::with_capacity(n, n * k / 2);
        for idx in 0..(n * k / 2) as u64 {
            let (u, v) = ws_stream_edge(n, k, beta, seed, idx);
            b.add_edge(u, v);
        }
        let raw = b.build();
        for shards in [1, 5, 32] {
            let z = watts_strogatz_compressed(n, k, beta, seed, shards);
            assert_eq!(z.num_edges(), raw.num_edges(), "shards={shards}");
            let m = z.materialize_csr();
            for v in raw.nodes() {
                assert_eq!(m.out_neighbors(v), raw.out_neighbors(v));
                assert_eq!(m.in_neighbors(v), raw.in_neighbors(v));
            }
        }
    }

    #[test]
    fn compressed_streaming_is_small_world() {
        let z = watts_strogatz_compressed(400, 6, 0.1, 7, 8);
        let g = {
            use crate::view::GraphView;
            z.materialize_csr()
        };
        let lv = undirected_bfs_levels(&g, 0);
        assert!(lv.iter().all(|&l| l != UNREACHED), "must stay connected");
    }
}
