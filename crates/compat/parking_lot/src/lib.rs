//! Offline drop-in subset of the `parking_lot` API.
//!
//! Thin wrappers over `std::sync` with parking_lot's ergonomics: `lock()`
//! returns the guard directly (no `Result`), and a poisoned std lock is
//! transparently recovered — parking_lot has no poisoning, so recovering is
//! exactly the upstream semantics.

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guard_ergonomics() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.lock().len(), 3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u32);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
