//! Par-WCC (Algorithm 7): parallel weakly-connected-component detection.
//!
//! §3.3: after the giant SCC is peeled, the residue is a sea of small
//! mutually-disconnected clusters, but the recursive FW-BW phase sees only
//! two colors (FW set / BW set) and serializes. Par-WCC splits each
//! partition into its weakly connected components — "a maximal group of
//! nodes that are mutually reachable by converting directed edges to
//! undirected edges" — assigns every WCC a fresh color, and enqueues each
//! as a separate work item, lifting the initial task count from O(1) to the
//! paper's observed ~10,000.
//!
//! Implementation: min-label propagation with pointer-jumping shortcuts
//! over the alive nodes, exactly the paper's `WCC(n)` head-node scheme.
//! One deliberate fix: Algorithm 7 as printed pulls labels only from
//! out-neighbors, which does not converge to *weak* connectivity (a label
//! can never cross an edge against its direction); since the paper defines
//! WCC over undirected edges and relies on that semantics, the propagation
//! here scans in-neighbors too.

use crate::state::{AlgoState, Color};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use swscc_graph::NodeId;

/// Outcome of a Par-WCC run.
#[derive(Debug)]
pub struct WccOutcome {
    /// One entry per weakly connected component found among the alive
    /// nodes: the fresh color assigned and the member list, ready to become
    /// work-queue tasks.
    pub groups: Vec<(Color, Vec<NodeId>)>,
    /// Label-propagation iterations until fixpoint — the quantity that
    /// blows up on large-diameter graphs ("the algorithm requires a large
    /// number of iterations for convergence" on CA-road, §5).
    pub iterations: usize,
}

/// Runs Par-WCC over all alive nodes, respecting the current coloring
/// (labels never cross between different colors). Re-colors every alive
/// node with its WCC's fresh color and returns the groups.
pub fn par_wcc(state: &AlgoState<'_>) -> WccOutcome {
    let n = state.num_nodes();
    let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let alive: Vec<NodeId> = (0..n as NodeId)
        .into_par_iter()
        .filter(|&v| state.alive(v))
        .collect();

    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let changed = AtomicBool::new(false);
        // Propagation: pull the minimum label over same-color neighbors in
        // both edge directions (undirected semantics).
        alive.par_iter().for_each(|&v| {
            let cv = state.color(v);
            let mut min = labels[v as usize].load(Ordering::Relaxed);
            let before = min;
            for &k in state
                .g
                .out_neighbors(v)
                .iter()
                .chain(state.g.in_neighbors(v))
            {
                if k != v && state.color(k) == cv {
                    min = min.min(labels[k as usize].load(Ordering::Relaxed));
                }
            }
            if min < before {
                labels[v as usize].fetch_min(min, Ordering::Relaxed);
                changed.store(true, Ordering::Relaxed);
            }
        });
        // Shortcutting (pointer jumping): WCC(n) <- WCC(WCC(n)).
        alive.par_iter().for_each(|&v| {
            let l = labels[v as usize].load(Ordering::Relaxed);
            let ll = labels[l as usize].load(Ordering::Relaxed);
            if ll < l {
                labels[v as usize].fetch_min(ll, Ordering::Relaxed);
                changed.store(true, Ordering::Relaxed);
            }
        });
        if !changed.load(Ordering::Relaxed) {
            break;
        }
    }

    // Group members by root label, assign a fresh color per group.
    let mut pairs: Vec<(u32, NodeId)> = alive
        .par_iter()
        .map(|&v| (labels[v as usize].load(Ordering::Relaxed), v))
        .collect();
    pairs.par_sort_unstable();
    let mut groups: Vec<(Color, Vec<NodeId>)> = Vec::new();
    let mut current_root = u32::MAX;
    for (root, v) in pairs {
        if root != current_root {
            current_root = root;
            groups.push((state.alloc_color(), Vec::new()));
        }
        groups.last_mut().expect("just pushed").1.push(v);
    }
    for (c, members) in &groups {
        for &v in members {
            state.set_color(v, *c);
        }
    }
    WccOutcome { groups, iterations }
}

/// Par-WCC via concurrent union-find (an Afforest-style alternative to the
/// paper's label propagation).
///
/// §5 observes that the label-propagation WCC "requires a large number of
/// iterations for convergence when applied on non-small-world graphs" —
/// the CA-road instance degrades Method 2 for exactly this reason. A
/// lock-free disjoint-set forest removes the diameter dependence: each
/// edge costs amortized near-constant work regardless of component shape.
/// Selectable via [`crate::config::WccImpl`]; the `ablation_wcc` harness
/// compares the two on both graph classes.
pub fn par_wcc_unionfind(state: &AlgoState<'_>) -> WccOutcome {
    let n = state.num_nodes();
    let parents: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let alive: Vec<NodeId> = (0..n as NodeId)
        .into_par_iter()
        .filter(|&v| state.alive(v))
        .collect();

    // Union every same-color alive edge. Out-edges suffice: (u, v) is seen
    // from u's side, and weak connectivity is symmetric.
    alive.par_iter().for_each(|&u| {
        let cu = state.color(u);
        for &v in state.g.out_neighbors(u) {
            if v != u && state.color(v) == cu {
                union(&parents, u, v);
            }
        }
    });

    // Group by root (flatten to full path compression first).
    let mut pairs: Vec<(u32, NodeId)> = alive.par_iter().map(|&v| (find(&parents, v), v)).collect();
    pairs.par_sort_unstable();
    let mut groups: Vec<(Color, Vec<NodeId>)> = Vec::new();
    let mut current_root = u32::MAX;
    for (root, v) in pairs {
        if root != current_root {
            current_root = root;
            groups.push((state.alloc_color(), Vec::new()));
        }
        groups.last_mut().expect("just pushed").1.push(v);
    }
    for (c, members) in &groups {
        for &v in members {
            state.set_color(v, *c);
        }
    }
    WccOutcome {
        groups,
        iterations: 1, // edge-parallel, no global iteration count
    }
}

/// Lock-free find with path halving.
fn find(parents: &[AtomicU32], mut x: NodeId) -> u32 {
    loop {
        let p = parents[x as usize].load(Ordering::Relaxed);
        if p == x {
            return x;
        }
        let gp = parents[p as usize].load(Ordering::Relaxed);
        if gp != p {
            // halve the path; failure just means someone else improved it
            let _ =
                parents[x as usize].compare_exchange(p, gp, Ordering::Relaxed, Ordering::Relaxed);
        }
        x = p;
    }
}

/// Lock-free union linking the larger root under the smaller (so group
/// roots coincide with min node ids, like the label-propagation variant).
fn union(parents: &[AtomicU32], a: NodeId, b: NodeId) {
    let mut a = a;
    let mut b = b;
    loop {
        let ra = find(parents, a);
        let rb = find(parents, b);
        if ra == rb {
            return;
        }
        let (hi, lo) = if ra < rb { (rb, ra) } else { (ra, rb) };
        if parents[hi as usize]
            .compare_exchange(hi, lo, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            return;
        }
        // lost a race: retry from the (possibly moved) roots
        a = hi;
        b = lo;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swscc_graph::CsrGraph;

    #[test]
    fn splits_disconnected_clusters() {
        // 0->1, 2->3, isolated 4
        let g = CsrGraph::from_edges(5, &[(0, 1), (2, 3)]);
        let s = AlgoState::new(&g);
        let out = par_wcc(&s);
        assert_eq!(out.groups.len(), 3);
        let sizes: Vec<usize> = out.groups.iter().map(|(_, m)| m.len()).collect();
        assert_eq!(sizes, vec![2, 2, 1]);
        // fresh distinct colors assigned
        assert_ne!(s.color(0), s.color(2));
        assert_eq!(s.color(0), s.color(1));
    }

    #[test]
    fn direction_is_ignored() {
        // 0 -> 1 <- 2: weakly one component even though 0 and 2 are
        // mutually unreachable.
        let g = CsrGraph::from_edges(3, &[(0, 1), (2, 1)]);
        let s = AlgoState::new(&g);
        let out = par_wcc(&s);
        assert_eq!(out.groups.len(), 1);
        assert_eq!(out.groups[0].1, vec![0, 1, 2]);
    }

    #[test]
    fn marked_nodes_are_invisible() {
        // chain 0 - 1 - 2; resolving 1 splits the weak component.
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let s = AlgoState::new(&g);
        s.resolve_singleton(1);
        let out = par_wcc(&s);
        assert_eq!(out.groups.len(), 2);
    }

    #[test]
    fn respects_existing_colors() {
        // 0 - 1 - 2 - 3 all weakly connected, but {0,1} and {2,3} are in
        // different partitions: the 1-2 edge must not merge them.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let s = AlgoState::new(&g);
        let c = s.alloc_color();
        s.set_color(2, c);
        s.set_color(3, c);
        let out = par_wcc(&s);
        assert_eq!(out.groups.len(), 2);
    }

    #[test]
    fn long_path_converges() {
        // Pointer jumping should converge in O(log n)-ish label rounds, and
        // the outcome must be a single group regardless.
        let n = 10_000u32;
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_edges(n as usize, &edges);
        let s = AlgoState::new(&g);
        let out = par_wcc(&s);
        assert_eq!(out.groups.len(), 1);
        assert_eq!(out.groups[0].1.len(), n as usize);
        assert!(
            out.iterations < 100,
            "pointer jumping failed to accelerate: {} iterations",
            out.iterations
        );
    }

    #[test]
    fn empty_state() {
        let g = CsrGraph::from_edges(0, &[]);
        let s = AlgoState::new(&g);
        let out = par_wcc(&s);
        assert!(out.groups.is_empty());
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn groups_cover_alive_exactly() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 0), (2, 3), (4, 5)]);
        let s = AlgoState::new(&g);
        s.resolve_singleton(5);
        let out = par_wcc(&s);
        let mut all: Vec<NodeId> = out.groups.iter().flat_map(|(_, m)| m.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    // --- union-find variant ------------------------------------------------

    fn groups_of(out: &WccOutcome) -> Vec<Vec<NodeId>> {
        let mut gs: Vec<Vec<NodeId>> = out.groups.iter().map(|(_, m)| m.clone()).collect();
        for g in &mut gs {
            g.sort_unstable();
        }
        gs.sort();
        gs
    }

    #[test]
    fn unionfind_matches_label_propagation() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(89);
        for _ in 0..15 {
            let n = rng.random_range(1..150usize);
            let m = rng.random_range(0..3 * n);
            let edges: Vec<_> = (0..m)
                .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
                .collect();
            let g = CsrGraph::from_edges(n, &edges);
            let s1 = AlgoState::new(&g);
            let a = par_wcc(&s1);
            let s2 = AlgoState::new(&g);
            let b = par_wcc_unionfind(&s2);
            assert_eq!(groups_of(&a), groups_of(&b));
        }
    }

    #[test]
    fn unionfind_respects_colors() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let s = AlgoState::new(&g);
        let c = s.alloc_color();
        s.set_color(2, c);
        s.set_color(3, c);
        let out = par_wcc_unionfind(&s);
        assert_eq!(out.groups.len(), 2);
    }

    #[test]
    fn unionfind_long_path_single_group() {
        let n = 20_000u32;
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_edges(n as usize, &edges);
        let s = AlgoState::new(&g);
        let out = par_wcc_unionfind(&s);
        assert_eq!(out.groups.len(), 1);
        assert_eq!(out.groups[0].1.len(), n as usize);
    }

    #[test]
    fn unionfind_marked_nodes_split() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let s = AlgoState::new(&g);
        s.resolve_singleton(1);
        let out = par_wcc_unionfind(&s);
        assert_eq!(out.groups.len(), 2);
    }
}
