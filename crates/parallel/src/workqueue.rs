//! Two-level work queue for task-level parallelism (§4.3 of the paper).
//!
//! > "our custom work queue implementation … is composed of two levels of
//! > queues: a global queue and per-thread private queues. Initially, each
//! > thread fetches up to K work items from the global queue into its local
//! > queue; whenever the local queue becomes empty, more work is fetched
//! > from the global queue. Each newly generated work item goes to a local
//! > queue first. When the size of a local queue grows to 2K, K items are
//! > moved to the global queue."
//!
//! The paper sets `K = 1` for the Baseline and Method 1 (task-starved) and
//! `K = 8` for Method 2. Termination: a worker exits when the global queue
//! is empty *and* no task is in flight anywhere (an in-flight task may
//! still spawn new ones).
//!
//! [`QueueStats`] records the instrumentation §3.3 relies on: the maximum
//! global-queue depth and the total number of tasks executed — the numbers
//! behind "the recorded maximum queue depth with single threaded execution
//! is only six" and "about 10,000 work items in the queue".

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use swscc_sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use swscc_sync::interrupt::{AbortReason, Interrupt};
use swscc_sync::Mutex;

/// Counters captured while a [`TwoLevelQueue`] drains.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// High-watermark of the global queue length.
    pub max_global_depth: usize,
    /// High-watermark of queued-plus-running tasks (total outstanding work).
    pub max_outstanding: usize,
    /// Total tasks executed.
    pub tasks_executed: usize,
}

/// Why a checked run ([`TwoLevelQueue::run_checked`]) stopped before the
/// queue drained.
#[derive(Clone, Debug)]
pub enum AbortCause {
    /// A worker's task handler panicked (the panic was caught; peers were
    /// drained cleanly). `at_boundary` is true when the panic fired at the
    /// pre-handler fault point — i.e. *before* the handler could touch any
    /// shared state, so the run's data structures are still consistent.
    Panic { message: String, at_boundary: bool },
    /// The shared [`Interrupt`] asked the run to stop (cancellation,
    /// deadline, or a watchdog trip elsewhere).
    Interrupted(AbortReason),
}

/// Error form of a checked run: the cause, the intact failed task when
/// recoverable, and the stats gathered up to the abort.
#[derive(Debug)]
pub struct RunAbort<T> {
    pub cause: AbortCause,
    /// For a boundary panic only: the task whose fault point fired, never
    /// handed to the handler — re-push it with
    /// [`TwoLevelQueue::push_global`] to retry. Leftover tasks from the
    /// aborted run stay queued (workers requeue their locals on drain), so
    /// a retry resumes exactly where the run stopped.
    pub failed_task: Option<T>,
    pub stats: QueueStats,
}

/// Shared control block of one checked run: the first abort wins the
/// slot, then the halt flag fans the drain out to every worker.
struct RunCtl<'a, T> {
    halt: AtomicBool,
    abort: Mutex<Option<(AbortCause, Option<T>)>>,
    interrupt: &'a Interrupt,
}

impl<'a, T> RunCtl<'a, T> {
    fn new(interrupt: &'a Interrupt) -> Self {
        RunCtl {
            halt: AtomicBool::new(false),
            abort: Mutex::new(None),
            interrupt,
        }
    }

    fn halted(&self) -> bool {
        // ordering: Relaxed — the halt flag is a pure go/no-go signal; the
        // abort payload travels under the `abort` Mutex and is read only
        // after the scope join. A stale read delays a worker's drain by
        // one loop iteration, which the protocol tolerates.
        self.halt.load(Ordering::Relaxed)
    }

    fn record(&self, cause: AbortCause, failed_task: Option<T>) {
        let mut slot = self.abort.lock();
        if slot.is_none() {
            *slot = Some((cause, failed_task));
        }
        drop(slot);
        // ordering: Relaxed — see `halted`.
        self.halt.store(true, Ordering::Relaxed);
    }
}

/// The shared two-level work queue. `T` is the task type.
///
/// Seed tasks go in with [`TwoLevelQueue::push_global`]; then
/// [`TwoLevelQueue::run`] drains the queue with `num_threads` workers, each
/// of which may push follow-on tasks through its [`Worker`] handle.
///
/// # Examples
///
/// ```
/// use swscc_parallel::TwoLevelQueue;
/// use swscc_sync::atomic::{AtomicUsize, Ordering};
///
/// // Count down a tree: each task n spawns tasks n-1 and n-2.
/// let q = TwoLevelQueue::new(4);
/// q.push_global(10u32);
/// let executed = AtomicUsize::new(0);
/// let stats = q.run(2, |n, worker| {
///     executed.fetch_add(1, Ordering::Relaxed);
///     if n >= 2 {
///         worker.push(n - 1);
///         worker.push(n - 2);
///     }
/// });
/// assert_eq!(stats.tasks_executed, executed.load(Ordering::Relaxed));
/// ```
pub struct TwoLevelQueue<T> {
    global: Mutex<VecDeque<T>>,
    /// Tasks queued (global or local) plus tasks currently being processed.
    outstanding: AtomicUsize,
    k: usize,
    max_global_depth: AtomicUsize,
    max_outstanding: AtomicUsize,
    tasks_executed: AtomicUsize,
}

impl<T: Send> TwoLevelQueue<T> {
    /// Creates a queue with local-batch parameter `K >= 1`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "K must be at least 1");
        TwoLevelQueue {
            global: Mutex::new(VecDeque::new()),
            outstanding: AtomicUsize::new(0),
            k,
            max_global_depth: AtomicUsize::new(0),
            max_outstanding: AtomicUsize::new(0),
            tasks_executed: AtomicUsize::new(0),
        }
    }

    /// Creates a queue with batch parameter `K >= 1`, pre-seeded with
    /// `tasks` on the global queue — the one-call spin-up used by pipeline
    /// drivers that turn a seed scan straight into a run.
    pub fn from_tasks(k: usize, tasks: impl IntoIterator<Item = T>) -> Self {
        let queue = Self::new(k);
        for t in tasks {
            queue.push_global(t);
        }
        queue
    }

    /// The configured batch parameter K.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Pushes a seed task onto the global queue (usable before or during a
    /// run; workers also reach this through [`Worker::push`] spills).
    pub fn push_global(&self, task: T) {
        // ordering: Relaxed is sufficient for the increment. Termination
        // correctness rests on RMW atomicity (the counter can never skip
        // a pending task: every task is counted before it is enqueued,
        // and its decrement is sequenced after the handler returns), not
        // on publication — the task payload itself is published by the
        // global-queue Mutex, and handler side effects are published by
        // the Release decrement / Acquire termination-load pair in
        // `work_loop`. Verified by the model battery's termination test.
        self.note_outstanding(self.outstanding.fetch_add(1, Ordering::Relaxed) + 1);
        let mut g = self.global.lock();
        g.push_back(task);
        self.note_global_depth(g.len());
    }

    /// Drains the queue with `num_threads` workers running `handler`.
    /// Returns the run's [`QueueStats`]. Tasks pushed by the handler are
    /// processed in the same run. The queue can be reused afterwards.
    pub fn run<F>(&self, num_threads: usize, handler: F) -> QueueStats
    where
        F: Fn(T, &mut Worker<'_, T>) + Sync,
    {
        assert!(num_threads >= 1);
        swscc_sync::thread::scope(|s| {
            for _ in 0..num_threads {
                s.spawn(|| {
                    let mut w = Worker {
                        queue: self,
                        local: VecDeque::new(),
                    };
                    w.work_loop(&handler);
                });
            }
        });
        // ordering: Relaxed loads are safe — the scope join above
        // happens-after every worker's counter updates.
        QueueStats {
            max_global_depth: self.max_global_depth.load(Ordering::Relaxed),
            max_outstanding: self.max_outstanding.load(Ordering::Relaxed),
            tasks_executed: self.tasks_executed.load(Ordering::Relaxed),
        }
    }

    /// Fault-tolerant variant of [`TwoLevelQueue::run`]: drains the queue
    /// with `num_threads` workers while (a) polling `interrupt` at every
    /// task boundary and idle-backoff iteration, and (b) isolating handler
    /// panics — a panicking worker is caught, the abort fans out through a
    /// halt flag, and every peer requeues its local tasks and exits within
    /// its backoff bound instead of deadlocking on `outstanding`.
    ///
    /// On abort the queue is left in a consistent, resumable state: all
    /// unprocessed tasks are back on the global queue and `outstanding`
    /// equals the queued count, so the caller may retry with another
    /// `run_checked` call (after re-pushing
    /// [`RunAbort::failed_task`] if present).
    #[must_use = "on abort the queue holds requeued tasks the caller must drain or retry"]
    pub fn run_checked<F>(
        &self,
        num_threads: usize,
        interrupt: &Interrupt,
        handler: F,
    ) -> Result<QueueStats, RunAbort<T>>
    where
        F: Fn(T, &mut Worker<'_, T>) + Sync,
    {
        assert!(num_threads >= 1);
        let ctl = RunCtl::new(interrupt);
        swscc_sync::thread::scope(|s| {
            for _ in 0..num_threads {
                s.spawn(|| {
                    let mut w = Worker {
                        queue: self,
                        local: VecDeque::new(),
                    };
                    w.work_loop_checked(&handler, &ctl);
                });
            }
        });
        // ordering: Relaxed loads are safe — the scope join above
        // happens-after every worker's counter updates.
        let stats = QueueStats {
            max_global_depth: self.max_global_depth.load(Ordering::Relaxed),
            max_outstanding: self.max_outstanding.load(Ordering::Relaxed),
            tasks_executed: self.tasks_executed.load(Ordering::Relaxed),
        };
        let aborted = ctl.abort.lock().take();
        match aborted {
            None => Ok(stats),
            Some((cause, failed_task)) => Err(RunAbort {
                cause,
                failed_task,
                stats,
            }),
        }
    }

    /// Returns a worker's remaining local tasks to the global queue
    /// without touching `outstanding` (they are already counted). Used on
    /// abort drains so a later run can resume them.
    fn requeue(&self, from: &mut VecDeque<T>) {
        if from.is_empty() {
            return;
        }
        let mut g = self.global.lock();
        g.extend(from.drain(..));
        self.note_global_depth(g.len());
    }

    /// Resets the recorded statistics (outstanding work must be zero).
    pub fn reset_stats(&self) {
        // ordering: Relaxed — callers only reset between runs, with the
        // previous run's scope join providing the synchronization.
        debug_assert_eq!(self.outstanding.load(Ordering::Relaxed), 0);
        self.max_global_depth.store(0, Ordering::Relaxed);
        self.max_outstanding.store(0, Ordering::Relaxed);
        self.tasks_executed.store(0, Ordering::Relaxed);
    }

    fn note_global_depth(&self, depth: usize) {
        // ordering: Relaxed — monotone stats high-watermark, read only
        // after the run's scope join.
        self.max_global_depth.fetch_max(depth, Ordering::Relaxed);
    }

    fn note_outstanding(&self, n: usize) {
        // ordering: Relaxed — monotone stats high-watermark, read only
        // after the run's scope join.
        self.max_outstanding.fetch_max(n, Ordering::Relaxed);
    }

    /// Pops up to `k` tasks from the global queue.
    fn fetch_batch(&self, into: &mut VecDeque<T>) -> usize {
        let mut g = self.global.lock();
        let take = self.k.min(g.len());
        for _ in 0..take {
            // drain from the front: FIFO across batches
            into.push_back(g.pop_front().expect("len checked"));
        }
        take
    }

    /// Moves `k` tasks from a full local queue to the global queue.
    fn spill(&self, from: &mut VecDeque<T>) {
        let mut g = self.global.lock();
        for _ in 0..self.k {
            if let Some(t) = from.pop_front() {
                g.push_back(t);
            }
        }
        self.note_global_depth(g.len());
    }
}

/// A worker's view of the queue: its private local deque plus a handle to
/// the shared global queue. Passed to the task handler so it can enqueue
/// follow-on tasks (paper: "each newly generated work item goes to a local
/// queue first").
pub struct Worker<'q, T> {
    queue: &'q TwoLevelQueue<T>,
    local: VecDeque<T>,
}

impl<'q, T: Send> Worker<'q, T> {
    /// Enqueues a follow-on task. Goes to this worker's local queue; if the
    /// local queue reaches 2K, K items spill to the global queue.
    pub fn push(&mut self, task: T) {
        // ordering: Relaxed — same argument as `push_global`: counting
        // is carried by RMW atomicity, publication by the queue Mutex and
        // the Release/Acquire termination pair.
        self.queue
            .note_outstanding(self.queue.outstanding.fetch_add(1, Ordering::Relaxed) + 1);
        self.local.push_back(task);
        if self.local.len() >= 2 * self.queue.k {
            self.queue.spill(&mut self.local);
        }
    }

    /// Number of tasks currently in this worker's local queue.
    pub fn local_len(&self) -> usize {
        self.local.len()
    }

    /// Panic-isolating, interrupt-polling work loop (see
    /// [`TwoLevelQueue::run_checked`]).
    fn work_loop_checked<F>(&mut self, handler: &F, ctl: &RunCtl<'_, T>)
    where
        F: Fn(T, &mut Worker<'_, T>) + Sync,
    {
        let mut spin = 0u32;
        loop {
            // Drain on a peer's abort: requeue local tasks (they are
            // already counted in `outstanding`) and exit. This is the
            // bail-out every worker reaches within one idle-backoff bound.
            if ctl.halted() {
                self.queue.requeue(&mut self.local);
                return;
            }
            if let Some(reason) = ctl.interrupt.poll() {
                ctl.record(AbortCause::Interrupted(reason), None);
                self.queue.requeue(&mut self.local);
                return;
            }
            let task = match self.local.pop_front() {
                Some(t) => Some(t),
                None => {
                    if self.queue.fetch_batch(&mut self.local) > 0 {
                        self.local.pop_front()
                    } else {
                        None
                    }
                }
            };
            match task {
                Some(t) => {
                    spin = 0;
                    // Task-boundary fault point, deliberately *before* the
                    // handler takes the task: a panic here leaves the task
                    // intact and all shared state untouched, so the abort
                    // is recoverable by a retry.
                    // recovery: boundary panics are reported with the
                    // intact task (`failed_task`); the caller re-pushes it
                    // and reruns, or degrades to a sequential fallback.
                    if let Err(payload) =
                        std::panic::catch_unwind(|| swscc_sync::fault::point("workqueue-task"))
                    {
                        ctl.record(
                            AbortCause::Panic {
                                message: swscc_sync::fault::panic_text(payload.as_ref()),
                                at_boundary: true,
                            },
                            Some(t),
                        );
                        // The task leaves the queue with its abort record;
                        // Release-publish its removal like a completion so
                        // a (non-aborted) peer can't observe a stale count.
                        self.queue.outstanding.fetch_sub(1, Ordering::Release);
                        self.queue.requeue(&mut self.local);
                        return;
                    }
                    // recovery: a handler panic is caught and recorded
                    // (`at_boundary: false` — shared state may be mid-
                    // mutation), the halt flag drains all peers, and the
                    // caller falls back to a sequential re-run; the panic
                    // never crosses the scope join, so no worker deadlocks
                    // on `outstanding`.
                    let run = std::panic::catch_unwind(AssertUnwindSafe(|| handler(t, self)));
                    // ordering: Relaxed — stats counter, read after join.
                    self.queue.tasks_executed.fetch_add(1, Ordering::Relaxed);
                    // Release pairs with the Acquire termination load: a
                    // worker that observes outstanding == 0 must also
                    // observe every finished handler's side effects.
                    self.queue.outstanding.fetch_sub(1, Ordering::Release);
                    if let Err(payload) = run {
                        ctl.record(
                            AbortCause::Panic {
                                message: swscc_sync::fault::panic_text(payload.as_ref()),
                                at_boundary: false,
                            },
                            None,
                        );
                        self.queue.requeue(&mut self.local);
                        return;
                    }
                }
                None => {
                    // Same bounded exponential backoff as `work_loop`; the
                    // halt/interrupt polls at the loop head bound how long
                    // an idle worker can outlive an abort.
                    if self.queue.outstanding.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    spin += 1;
                    if spin <= 16 {
                        swscc_sync::hint::spin_loop();
                    } else if spin <= 32 {
                        swscc_sync::thread::yield_now();
                    } else {
                        let exp = (spin - 32).min(7); // 1µs .. 128µs
                        swscc_sync::thread::sleep(std::time::Duration::from_micros(1 << exp));
                    }
                }
            }
        }
    }

    fn work_loop<F>(&mut self, handler: &F)
    where
        F: Fn(T, &mut Worker<'_, T>) + Sync,
    {
        let mut spin = 0u32;
        loop {
            let task = match self.local.pop_front() {
                Some(t) => Some(t),
                None => {
                    if self.queue.fetch_batch(&mut self.local) > 0 {
                        self.local.pop_front()
                    } else {
                        None
                    }
                }
            };
            match task {
                Some(t) => {
                    spin = 0;
                    handler(t, self);
                    // ordering: Relaxed — stats counter, read after join.
                    self.queue.tasks_executed.fetch_add(1, Ordering::Relaxed);
                    // Release pairs with the Acquire termination load below:
                    // a worker that observes outstanding == 0 must also
                    // observe every finished handler's side effects.
                    self.queue.outstanding.fetch_sub(1, Ordering::Release);
                }
                None => {
                    // Global queue empty. If nothing is outstanding anywhere
                    // the run is over; otherwise another worker may still
                    // spawn tasks — back off and re-check. Bounded
                    // exponential backoff: a few busy spins, then yields,
                    // then short parks capped at ~128µs, so idle workers
                    // stop burning a core while one straggler drains a deep
                    // recursion.
                    if self.queue.outstanding.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    spin += 1;
                    if spin <= 16 {
                        swscc_sync::hint::spin_loop();
                    } else if spin <= 32 {
                        swscc_sync::thread::yield_now();
                    } else {
                        let exp = (spin - 32).min(7); // 1µs .. 128µs
                        swscc_sync::thread::sleep(std::time::Duration::from_micros(1 << exp));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_task_single_thread() {
        let q = TwoLevelQueue::new(1);
        q.push_global(42u32);
        let seen = AtomicUsize::new(0);
        let stats = q.run(1, |t, _| {
            assert_eq!(t, 42);
            seen.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 1);
        assert_eq!(stats.tasks_executed, 1);
        assert_eq!(stats.max_global_depth, 1);
    }

    #[test]
    fn fibonacci_tree_spawning() {
        // Task n spawns n-1 and n-2; total tasks = 2*fib(n+1) - 1.
        for threads in [1, 2, 4] {
            let q = TwoLevelQueue::new(2);
            q.push_global(12u64);
            let sum = AtomicUsize::new(0);
            let stats = q.run(threads, |n, w| {
                if n < 2 {
                    sum.fetch_add(n as usize, Ordering::Relaxed);
                } else {
                    w.push(n - 1);
                    w.push(n - 2);
                }
            });
            // leaves of the fib call tree sum to fib(12) = 144
            assert_eq!(sum.load(Ordering::Relaxed), 144, "threads={threads}");
            assert!(stats.tasks_executed > 100);
        }
    }

    #[test]
    fn all_tasks_processed_exactly_once() {
        let q = TwoLevelQueue::new(8);
        // Miri runs the same protocol, just fewer tasks (interpreter speed).
        let n = if cfg!(miri) { 256 } else { 10_000usize };
        let flags: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        for i in 0..n {
            q.push_global(i);
        }
        q.run(4, |i, _| {
            flags[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn spill_keeps_tasks_visible_to_other_workers() {
        // One producer task fans out 1000 children with K=4; with 4 workers
        // every child must still execute.
        let q = TwoLevelQueue::new(4);
        q.push_global(usize::MAX);
        let count = AtomicUsize::new(0);
        let stats = q.run(4, |t, w| {
            if t == usize::MAX {
                for i in 0..1000 {
                    w.push(i);
                }
            } else {
                count.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert_eq!(stats.tasks_executed, 1001);
        assert!(stats.max_outstanding <= 1001);
        assert!(stats.max_global_depth >= 4, "spills must hit global queue");
    }

    #[test]
    fn queue_reusable_after_run() {
        let q = TwoLevelQueue::new(1);
        q.push_global(1u32);
        q.run(2, |_, _| {});
        q.reset_stats();
        q.push_global(2u32);
        let stats = q.run(2, |_, _| {});
        assert_eq!(stats.tasks_executed, 1);
    }

    #[test]
    fn empty_run_terminates() {
        let q: TwoLevelQueue<u32> = TwoLevelQueue::new(1);
        let stats = q.run(3, |_, _| {});
        assert_eq!(stats.tasks_executed, 0);
    }

    #[test]
    #[should_panic(expected = "K must be at least 1")]
    fn zero_k_panics() {
        let _: TwoLevelQueue<u32> = TwoLevelQueue::new(0);
    }

    #[test]
    fn max_outstanding_tracks_high_water() {
        let q = TwoLevelQueue::new(64);
        for i in 0..100u32 {
            q.push_global(i);
        }
        let stats = q.run(1, |_, _| {});
        assert_eq!(stats.max_outstanding, 100);
        assert_eq!(stats.max_global_depth, 100);
    }

    #[test]
    fn checked_run_without_faults_matches_run() {
        let interrupt = Interrupt::new();
        let q = TwoLevelQueue::new(2);
        q.push_global(12u64);
        let sum = AtomicUsize::new(0);
        let stats = q
            .run_checked(4, &interrupt, |n, w| {
                if n < 2 {
                    sum.fetch_add(n as usize, Ordering::Relaxed);
                } else {
                    w.push(n - 1);
                    w.push(n - 2);
                }
            })
            .expect("clean run");
        assert_eq!(sum.load(Ordering::Relaxed), 144);
        assert!(stats.tasks_executed > 100);
    }

    #[test]
    fn boundary_panic_reports_intact_task_and_resumes() {
        use swscc_sync::fault::{arm, FaultKind, FaultPlan};
        let interrupt = Interrupt::new();
        let q = TwoLevelQueue::new(2);
        let n = 64usize;
        let flags: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        for i in 0..n {
            q.push_global(i);
        }
        let handler = |i: usize, _: &mut Worker<'_, usize>| {
            flags[i].fetch_add(1, Ordering::Relaxed);
        };
        let abort = {
            let _g = arm(FaultPlan {
                site: Some("workqueue-task"),
                nth: 10,
                kind: FaultKind::Panic,
                repeat: false,
            });
            q.run_checked(4, &interrupt, handler)
                .expect_err("injected boundary panic must abort")
        };
        let failed = abort.failed_task.expect("boundary panic keeps the task");
        assert!(matches!(
            abort.cause,
            AbortCause::Panic {
                at_boundary: true,
                ..
            }
        ));
        assert_eq!(flags[failed].load(Ordering::Relaxed), 0, "never ran");
        // The queue is resumable: re-push the failed task and finish.
        q.push_global(failed);
        q.run_checked(4, &interrupt, handler).expect("clean retry");
        assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn handler_panic_drains_peers_without_deadlock() {
        for threads in [1, 2, 4] {
            let interrupt = Interrupt::new();
            let q = TwoLevelQueue::new(1);
            for i in 0..128u32 {
                q.push_global(i);
            }
            let abort = q
                .run_checked(threads, &interrupt, |i, _| {
                    if i == 40 {
                        panic!("synthetic handler bug");
                    }
                })
                .expect_err("handler panic must abort");
            match abort.cause {
                AbortCause::Panic {
                    at_boundary,
                    message,
                } => {
                    assert!(!at_boundary);
                    assert!(message.contains("synthetic handler bug"));
                }
                other => panic!("unexpected cause: {other:?}"),
            }
            assert!(abort.failed_task.is_none(), "threads={threads}");
        }
    }

    #[test]
    fn cancellation_unblocks_workers_within_backoff_bound() {
        for threads in [1, 2, 4] {
            let interrupt = Interrupt::new();
            let q = TwoLevelQueue::new(1);
            q.push_global(0u32);
            let started = std::time::Instant::now();
            swscc_sync::thread::scope(|s| {
                let run = {
                    let interrupt = &interrupt;
                    let q = &q;
                    s.spawn(move || {
                        q.run_checked(threads, interrupt, |_, _| {
                            // One straggler task: cooperatively wait for the
                            // cancellation the main thread is about to issue,
                            // pinning peers in their idle loops meanwhile.
                            while !interrupt.is_aborted() {
                                swscc_sync::thread::yield_now();
                            }
                        })
                    })
                };
                swscc_sync::thread::sleep(std::time::Duration::from_millis(10));
                interrupt.cancel();
                let result = run.join().unwrap();
                let abort = result.expect_err("cancelled run must abort");
                assert!(matches!(
                    abort.cause,
                    AbortCause::Interrupted(AbortReason::Cancelled)
                ));
            });
            // Generous bound: idle backoff caps at 128µs parks, so even on
            // a loaded CI box the drain is far under a second.
            assert!(
                started.elapsed() < std::time::Duration::from_secs(10),
                "threads={threads} took {:?}",
                started.elapsed()
            );
        }
    }

    #[test]
    fn deadline_aborts_idle_run() {
        let interrupt = Interrupt::with_deadline(std::time::Duration::from_millis(20));
        let q = TwoLevelQueue::new(1);
        q.push_global(0u32);
        let abort = q
            .run_checked(2, &interrupt, |_, _| {
                swscc_sync::thread::sleep(std::time::Duration::from_millis(200));
            })
            .expect_err("deadline must abort");
        assert!(matches!(
            abort.cause,
            AbortCause::Interrupted(AbortReason::DeadlineExceeded)
        ));
    }

    #[test]
    fn stress_many_threads_random_spawning() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let q = TwoLevelQueue::new(8);
        for i in 0..64u64 {
            q.push_global((i, 3u32));
        }
        let executed = AtomicUsize::new(0);
        q.run(8, |(seed, depth), w| {
            executed.fetch_add(1, Ordering::Relaxed);
            if depth > 0 {
                let mut rng = SmallRng::seed_from_u64(seed);
                for j in 0..rng.random_range(0..4u64) {
                    w.push((seed.wrapping_mul(31).wrapping_add(j), depth - 1));
                }
            }
        });
        assert!(executed.load(Ordering::Relaxed) >= 64);
    }
}
