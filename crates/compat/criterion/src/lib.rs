//! Offline drop-in subset of the `criterion` API.
//!
//! A plain timing harness exposing the group/bench surface the workspace's
//! benches use: `benchmark_group`, `sample_size`, `throughput`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `Bencher::iter_batched` (+ `BatchSize`), `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement: each benchmark is warmed up, then timed for `sample_size`
//! samples of auto-scaled iteration counts; the median, minimum, and
//! throughput (when set) are printed as one line. No statistical analysis,
//! plots, or saved baselines — compare numbers across runs by hand. A
//! benchmark-name filter can be passed on the command line exactly like
//! upstream (`cargo bench -- <substring>`).

use std::time::{Duration, Instant};

/// Re-export location some code uses for `black_box`.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Top-level harness state.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench`; anything else non-flag is a filter.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    fn matches(&self, full_id: &str) -> bool {
        match &self.filter {
            Some(f) => full_id.contains(f.as_str()),
            None => true,
        }
    }
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id.into().id);
        if self.criterion.matches(&full_id) {
            run_benchmark(&full_id, self.sample_size, self.throughput, |b| f(b));
        }
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = format!("{}/{}", self.name, id.into().id);
        if self.criterion.matches(&full_id) {
            run_benchmark(&full_id, self.sample_size, self.throughput, |b| f(b, input));
        }
        self
    }

    pub fn finish(self) {}
}

/// Batch sizing hint for [`Bencher::iter_batched`]. The shim times every
/// iteration individually regardless, so the variants only exist for
/// upstream source compatibility.
#[derive(Clone, Copy, Debug, Default)]
pub enum BatchSize {
    #[default]
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the payload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs the payload `self.iters` times, recording total elapsed time.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = t0.elapsed();
    }

    /// Like upstream `iter_batched`: `setup` builds a fresh input per
    /// iteration *outside* the timed section, `routine` consumes it inside.
    /// Use when the payload mutates its input (e.g. resolving nodes in an
    /// `AlgoState`) and re-running on the mutated value would mis-measure.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            elapsed += t0.elapsed();
        }
        self.elapsed = elapsed;
    }
}

fn run_benchmark(
    full_id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut run: impl FnMut(&mut Bencher),
) {
    // Calibrate: run single iterations until ~20ms total to size samples.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    run(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    // Aim for samples of ~30ms, capped so one benchmark stays tractable.
    let target = Duration::from_millis(30);
    let iters_per_sample = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        run(&mut b);
        samples.push(b.elapsed / iters_per_sample as u32);
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];

    let thrpt = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / median.as_secs_f64();
            format!("  thrpt: {:>12}/s", human_count(per_sec))
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / median.as_secs_f64();
            format!("  thrpt: {:>11}B/s", human_count(per_sec))
        }
        None => String::new(),
    };
    println!(
        "{full_id:<48} time: [{} .. {}]{thrpt}",
        human_time(min),
        human_time(median),
    );
}

fn human_time(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn human_count(x: f64) -> String {
    if x < 1e3 {
        format!("{x:.1}")
    } else if x < 1e6 {
        format!("{:.2}K", x / 1e3)
    } else if x < 1e9 {
        format!("{:.2}M", x / 1e6)
    } else {
        format!("{:.2}G", x / 1e9)
    }
}

/// Groups benchmark functions under one name callable from
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("drain", 8).id, "drain/8");
        assert_eq!(BenchmarkId::from_parameter(4).id, "4");
    }

    #[test]
    fn harness_runs_payload() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("t");
        let mut hits = 0u64;
        group.sample_size(2).bench_function("count", |b| {
            b.iter(|| {
                hits += 1;
                hits
            })
        });
        group.finish();
        assert!(hits > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("t");
        let mut setups = 0u64;
        let mut runs = 0u64;
        group.sample_size(2).bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u64, 2, 3]
                },
                |v| {
                    runs += 1;
                    v.into_iter().sum::<u64>()
                },
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert!(setups > 0);
        assert_eq!(setups, runs, "one fresh input per routine run");
    }

    #[test]
    fn filter_skips() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("x", |b| {
            ran = true;
            b.iter(|| 1)
        });
        group.finish();
        assert!(!ran);
    }
}
