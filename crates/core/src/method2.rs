//! Method 2 (Algorithm 9): the full pipeline.
//!
//! Method 1 plus the two §3.3–3.5 extensions:
//!
//! * **Par-Trim′** — Par-Trim, then one Par-Trim2 pass (size-2 SCCs; §3.4),
//!   then Par-Trim again. Trim2 runs once because it is costlier than Trim;
//!   its payoff is mostly in shrinking the WCC step's input.
//! * **Par-WCC** — re-partitions the post-peel residue into its weakly
//!   connected components, one work item each, lifting phase-2 task-level
//!   parallelism from O(1) to the paper's observed ~10,000 items (§3.3).
//!
//! Work-queue batch size K = 8 (§4.3) — Method 2 has enough tasks for
//! batching to pay off.

use crate::config::SccConfig;
use crate::error::{RunGuard, SccError};
use crate::instrument::RunReport;
use crate::pipeline::{run_pipeline, Pipeline};
use crate::result::SccResult;
use swscc_graph::CsrGraph;

/// Paper default work-queue batch size for Method 2 (§4.3).
pub const METHOD2_K: usize = 8;

/// Runs Algorithm 9 (legacy entry point; see
/// [`method2_scc_checked`] for the cancellable form).
pub fn method2_scc(g: &CsrGraph, cfg: &SccConfig) -> (SccResult, RunReport) {
    method2_scc_checked(g, cfg, &RunGuard::new())
        .expect("method2 run with a fresh guard cannot abort")
}

/// Runs Algorithm 9 under `guard`: cancellable, deadline-aware, and
/// panic-isolating (policy [`crate::SccConfig::on_panic`]). The stage
/// list is `trim,fwbw,trim,trim2,trim,wcc,tasks` — the Par-Trim′ block
/// (Trim; Trim2 once; Trim — §3.5) followed by Par-WCC re-partitioning
/// whose groups seed the work queue directly.
pub fn method2_scc_checked(
    g: &CsrGraph,
    cfg: &SccConfig,
    guard: &RunGuard,
) -> Result<(SccResult, RunReport), SccError> {
    run_pipeline(
        g,
        &Pipeline::stock(crate::Algorithm::Method2).unwrap(),
        cfg,
        guard,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::Phase;
    use crate::tarjan::tarjan_scc;

    fn check(g: &CsrGraph, threads: usize) {
        let cfg = SccConfig::with_threads(threads);
        let (r, report) = method2_scc(g, &cfg);
        assert_eq!(
            r.canonical_labels(),
            tarjan_scc(g).canonical_labels(),
            "method2 disagrees with tarjan ({threads} threads)"
        );
        let resolved: usize = report.phase_resolved.iter().map(|(_, n)| n).sum();
        assert_eq!(resolved, g.num_nodes());
    }

    #[test]
    fn correct_on_small_world_shape() {
        // giant 4-cycle + satellite 3-cycle + size-2 pair + tendrils
        let g = CsrGraph::from_edges(
            12,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (3, 4), // OUT satellite 3-cycle
                (4, 5),
                (5, 6),
                (6, 4),
                (0, 7), // OUT pair
                (7, 8),
                (8, 7),
                (9, 0),  // IN tendril
                (0, 10), // OUT tendril chain
                (10, 11),
            ],
        );
        for threads in [1, 2, 4] {
            check(&g, threads);
        }
    }

    #[test]
    fn wcc_splits_satellites_into_tasks() {
        // giant 3-cycle; 8 satellite 3-cycles hanging off node 0 (OUT
        // side). 3-cycles survive Trim and Trim2, so they must reach the
        // WCC step, which splits them into 8 independent work items.
        // Pivot = MaxDegreeProduct lands deterministically on hub node 0.
        let mut edges: Vec<(u32, u32)> = vec![(0, 1), (1, 2), (2, 0)];
        let mut next = 3u32;
        for _ in 0..8 {
            edges.push((0, next)); // attach
            edges.push((next, next + 1));
            edges.push((next + 1, next + 2));
            edges.push((next + 2, next));
            next += 3;
        }
        let n = next as usize;
        let g = CsrGraph::from_edges(n, &edges);
        let cfg = SccConfig {
            pivot: crate::PivotStrategy::MaxDegreeProduct,
            ..SccConfig::with_threads(2)
        };
        let (r, report) = method2_scc(&g, &cfg);
        assert_eq!(r.num_components(), 9);
        assert_eq!(report.resolved_in(Phase::ParFwbw), 3, "peel got the giant");
        // Each satellite 3-cycle is a separate WCC => a separate task.
        assert_eq!(report.initial_tasks, 8);
        assert_eq!(report.resolved_in(Phase::RecurFwbw), 24);
    }

    #[test]
    fn trim2_contributes() {
        // Pair chain hanging off a giant cycle, plus a pendant (node 7)
        // that makes node 0 the unambiguous degree-product pivot:
        //   {0,1,2} cycle; 0 -> (3<->4) -> (5<->6); 0 -> 7.
        let g = CsrGraph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (0, 3),
                (3, 4),
                (4, 3),
                (4, 5),
                (5, 6),
                (6, 5),
                (0, 7),
            ],
        );
        let cfg = SccConfig {
            pivot: crate::PivotStrategy::MaxDegreeProduct,
            ..SccConfig::with_threads(1)
        };
        let (r, report) = method2_scc(&g, &cfg);
        assert_eq!(r.num_components(), 4); // {0,1,2}, {3,4}, {5,6}, {7}
        assert_eq!(
            report.resolved_in(Phase::ParTrim),
            1,
            "pendant 7 trims first"
        );
        assert_eq!(report.resolved_in(Phase::ParFwbw), 3, "giant peeled");
        // Both pairs fall to the Trim′ block (pattern a for {3,4} once the
        // giant is gone; pattern b for the chain-end {5,6}).
        assert_eq!(report.resolved_in(Phase::ParTrim2), 4);
        assert_eq!(report.resolved_in(Phase::RecurFwbw), 0);
    }

    #[test]
    fn correct_on_random_graphs() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(47);
        for trial in 0..10 {
            let n = rng.random_range(1..150usize);
            let m = rng.random_range(0..5 * n);
            let edges: Vec<_> = (0..m)
                .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
                .collect();
            let g = CsrGraph::from_edges(n, &edges);
            check(&g, 1 + trial % 4);
        }
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        let (r, _) = method2_scc(&g, &SccConfig::with_threads(2));
        assert_eq!(r.num_components(), 0);
    }

    #[test]
    fn color_only_ablation_still_correct() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2), (4, 5)]);
        let mut cfg = SccConfig::with_threads(2);
        cfg.hybrid_sets = false;
        let (r, _) = method2_scc(&g, &cfg);
        assert_eq!(r.canonical_labels(), tarjan_scc(&g).canonical_labels());
    }
}
