//! Forward-Backward reachability kernels (Lemma 1 of the paper).
//!
//! `FW(pivot) ∩ BW(pivot)` is exactly the SCC containing the pivot, and the
//! three residues (FW-only, BW-only, untouched) partition the rest without
//! splitting any SCC — so they can be processed independently.
//!
//! Two implementations, per §4.2:
//!
//! * [`parallel`] — level-synchronous parallel BFS, used in phase 1 to peel
//!   the giant SCC with *data-level* parallelism (all threads cooperate on
//!   one traversal; small-world graphs have few BFS levels with huge
//!   frontiers).
//! * [`recursive`] — sequential iterative DFS per task, used in phase 2
//!   where partitions are small and parallel-BFS fixed costs dominate; the
//!   *task-level* parallelism comes from the work queue instead.

pub mod parallel;
pub mod recursive;

pub use parallel::{par_fwbw, ParFwbwOutcome};
pub use recursive::{seed_tasks, RecurContext, Task};
