//@ path: crates/core/src/bad_relaxed.rs
//! Known-bad: `Ordering::Relaxed` without an `// ordering:` argument.

use swscc_sync::atomic::{AtomicUsize, Ordering};

pub fn unjustified(x: &AtomicUsize) -> usize {
    x.load(Ordering::Relaxed) //~ relaxed
}

pub fn string_evasion(x: &AtomicUsize) -> usize {
    let _claim = "// ordering: A1 inside a string does not count";
    x.load(Ordering::Relaxed) //~ relaxed
}

/// // ordering: A1 — prose in a doc comment does not count either.
pub fn doc_comment_evasion(x: &AtomicUsize) -> usize {
    x.load(Ordering::Relaxed) //~ relaxed
}

pub fn blank_line_breaks_the_paragraph(x: &AtomicUsize) -> usize {
    // ordering: A1 — too far away: the blank line below ends the paragraph.

    x.load(Ordering::Relaxed) //~ relaxed
}

pub fn split_path_evasion(x: &AtomicUsize) -> usize {
    x.load(Ordering:: //~ relaxed
        Relaxed)
}

pub fn justified(x: &AtomicUsize) -> usize {
    // ordering: A1 — statistic; RMW atomicity suffices (fixture negative).
    x.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxed_in_tests_is_fine() {
        let x = AtomicUsize::new(0);
        assert_eq!(x.load(Ordering::Relaxed), 0);
    }
}
