//! Criterion microbenchmarks: end-to-end SCC algorithms on fixed analogs.
//!
//! Complements the table/figure binaries with statistically rigorous
//! per-algorithm timings on small fixed inputs (criterion re-runs each
//! workload many times, so these use scale ~0.02 analogs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use swscc_core::{detect_scc, run_pipeline, Algorithm, Pipeline, RunGuard, SccConfig};
use swscc_graph::datasets::Dataset;

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("scc");
    group.sample_size(10);
    for d in [
        Dataset::Livej,
        Dataset::Baidu,
        Dataset::CaRoad,
        Dataset::Patents,
    ] {
        let g = d.generate(0.02, 42);
        group.throughput(criterion::Throughput::Elements(g.num_edges() as u64));
        for a in Algorithm::all() {
            let cfg = SccConfig::with_threads(2);
            group.bench_with_input(BenchmarkId::new(a.name(), d.name()), &g, |b, g| {
                b.iter(|| {
                    let (r, _) = detect_scc(black_box(g), a, &cfg);
                    black_box(r.num_components())
                })
            });
        }
    }
    group.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("method2-threads");
    group.sample_size(10);
    let g = Dataset::Livej.generate(0.05, 42);
    for threads in [1usize, 2, 4] {
        let cfg = SccConfig::with_threads(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &g, |b, g| {
            b.iter(|| {
                let (r, _) = detect_scc(black_box(g), Algorithm::Method2, &cfg);
                black_box(r.num_components())
            })
        });
    }
    group.finish();
}

fn bench_pipeline_ablation(c: &mut Criterion) {
    // Custom compositions through the pipeline engine: stock Method 2
    // against stage-dropping ablations, isolating what each stage buys.
    let mut group = c.benchmark_group("pipeline-ablation");
    group.sample_size(10);
    let specs = [
        ("method2-stock", "trim,fwbw,trim,trim2,trim,wcc,tasks"),
        ("drop-trim2", "trim,fwbw,trim,wcc,tasks"),
        ("drop-wcc", "trim,fwbw,trim,trim2,trim,tasks"),
        ("queue-only", "tasks"),
    ];
    for d in [Dataset::Livej, Dataset::Baidu] {
        let g = d.generate(0.02, 42);
        for (label, spec) in specs {
            let pipeline = Pipeline::parse(spec).expect("ablation composition is legal");
            let cfg = SccConfig::with_threads(2);
            group.bench_with_input(BenchmarkId::new(label, d.name()), &g, |b, g| {
                b.iter(|| {
                    let (r, _) =
                        run_pipeline(black_box(g), &pipeline, &cfg, &RunGuard::new()).unwrap();
                    black_box(r.num_components())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_algorithms,
    bench_thread_scaling,
    bench_pipeline_ablation
);
criterion_main!(benches);
