//! Differential battery for the unified traversal kernel (§4.2).
//!
//! The `EdgeMap` port must be *observationally identical* to sequential
//! BFS: on random digraphs, `bfs_levels` ≡ `par_bfs_levels` ≡ the
//! direction-optimizing variant, for every source, both traversal
//! directions, and thread counts 1/2/4. Separately, determinism: level
//! assignment and claimed-set contents must be identical across repeated
//! runs and across thread counts (frontier *order* within a level is the
//! only thing allowed to vary).

use proptest::prelude::*;
use swscc::core::fwbw::parallel::par_fwbw;
use swscc::core::state::{AlgoState, INITIAL_COLOR};
use swscc::graph::bfs::{
    bfs_levels, par_bfs_levels, par_bfs_levels_dobfs, par_undirected_bfs_levels,
    undirected_bfs_levels, Direction, UNREACHED,
};
use swscc::graph::traverse::DEFAULT_PAR_FRONTIER_THRESHOLD;
use swscc::parallel::pool::with_pool;
use swscc::{CsrGraph, SccConfig};

/// Strategy: a random directed graph with 1..=max_n nodes (self-loops and
/// parallel edges allowed — the kernel must shrug them off).
fn arb_graph(max_n: usize) -> impl Strategy<Value = CsrGraph> {
    (1..max_n).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..4 * n)
            .prop_map(move |edges| CsrGraph::from_edges(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The full cross-product: every source × both directions × 1/2/4
    /// threads × both kernel modes, against sequential BFS.
    #[test]
    fn par_and_dobfs_match_seq_everywhere(g in arb_graph(28)) {
        for src in 0..g.num_nodes() as u32 {
            for dir in [Direction::Forward, Direction::Backward] {
                let want = bfs_levels(&g, src, dir);
                for threads in [1usize, 2, 4] {
                    let (par, dobfs) = with_pool(threads, || {
                        (par_bfs_levels(&g, src, dir), par_bfs_levels_dobfs(&g, src, dir))
                    });
                    prop_assert_eq!(&par, &want, "par levels src={} {:?} t={}", src, dir, threads);
                    prop_assert_eq!(&dobfs, &want, "dobfs levels src={} {:?} t={}", src, dir, threads);
                }
            }
        }
    }

    /// The undirected kernel view against sequential undirected BFS.
    #[test]
    fn undirected_kernel_matches_seq(g in arb_graph(28)) {
        for src in 0..g.num_nodes() as u32 {
            let want = undirected_bfs_levels(&g, src);
            for threads in [1usize, 2, 4] {
                let got = with_pool(threads, || par_undirected_bfs_levels(&g, src));
                prop_assert_eq!(&got, &want, "undirected src={} t={}", src, threads);
            }
        }
    }
}

/// A small-world-ish fixture big enough that parallel levels and the
/// bottom-up switch actually engage.
fn ring_with_chords(n: u32) -> CsrGraph {
    let mut edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    for i in 0..n {
        edges.push((i, (i * 7 + 13) % n));
        edges.push((i, (i * 31 + 5) % n));
    }
    CsrGraph::from_edges(n as usize, &edges)
}

#[test]
fn levels_deterministic_across_runs_and_threads() {
    let g = ring_with_chords(4000);
    let want = with_pool(1, || par_bfs_levels(&g, 0, Direction::Forward));
    assert_eq!(want, bfs_levels(&g, 0, Direction::Forward));
    for threads in [2usize, 4] {
        for _ in 0..3 {
            let got = with_pool(threads, || par_bfs_levels(&g, 0, Direction::Forward));
            assert_eq!(got, want, "levels changed at {threads} threads");
            let got = with_pool(threads, || par_bfs_levels_dobfs(&g, 0, Direction::Forward));
            assert_eq!(got, want, "dobfs levels changed at {threads} threads");
        }
    }
}

/// Claimed-set determinism through the FW-BW peel: the Color array after
/// one `par_fwbw` trial encodes exactly which set (FW-only / BW-only /
/// SCC / untouched) every node was claimed into. The pivot is seeded,
/// claim fixpoints are schedule-independent, and color ids are allocated
/// in deterministic order — so the whole array must be identical across
/// repeated runs and thread counts, with and without direction
/// optimization. `max_trials: 1` keeps pivot selection on the seeded-rng
/// path (later trials on shrunken partitions may fall back to
/// `find_any`, which — like rayon — doesn't specify *which* match wins).
#[test]
fn fwbw_claimed_sets_deterministic() {
    // strongly connected core + a forward-only tail + a backward-only
    // tail, so the single peel produces four distinct claimed sets.
    let core = 2000u32;
    let mut edges: Vec<(u32, u32)> = (0..core).map(|i| (i, (i + 1) % core)).collect();
    for i in 0..core {
        edges.push((i, (i * 7 + 13) % core));
    }
    for i in 0..400u32 {
        edges.push((i * 3 % core, core + i)); // core -> FW tail
        edges.push((core + 400 + i, i * 5 % core)); // BW tail -> core
    }
    let g = CsrGraph::from_edges(core as usize + 800, &edges);
    let colors = |threads: usize, dobfs: bool| -> Vec<u32> {
        let cfg = SccConfig {
            direction_optimizing: dobfs,
            max_trials: 1,
            ..SccConfig::with_threads(threads)
        };
        with_pool(threads, || {
            let s = AlgoState::new(&g);
            par_fwbw(&s, &cfg, INITIAL_COLOR);
            (0..g.num_nodes() as u32).map(|v| s.color(v)).collect()
        })
    };
    for dobfs in [false, true] {
        let want = colors(1, dobfs);
        for threads in [2usize, 4] {
            for _ in 0..2 {
                assert_eq!(
                    colors(threads, dobfs),
                    want,
                    "claimed sets changed at {threads} threads (dobfs={dobfs})"
                );
            }
        }
    }
}

// ---- edge cases ---------------------------------------------------------

#[test]
fn empty_graph_all_variants() {
    let g = CsrGraph::from_edges(0, &[]);
    assert!(par_bfs_levels(&g, 0, Direction::Forward).is_empty());
    assert!(par_bfs_levels_dobfs(&g, 0, Direction::Forward).is_empty());
    assert!(par_undirected_bfs_levels(&g, 0).is_empty());
}

#[test]
fn single_node_all_variants() {
    let g = CsrGraph::from_edges(1, &[]);
    assert_eq!(par_bfs_levels(&g, 0, Direction::Forward), vec![0]);
    assert_eq!(par_bfs_levels_dobfs(&g, 0, Direction::Backward), vec![0]);
    assert_eq!(par_undirected_bfs_levels(&g, 0), vec![0]);
}

#[test]
fn self_loops_terminate_and_match() {
    let g = CsrGraph::from_edges(3, &[(0, 0), (0, 1), (1, 1), (1, 2), (2, 2)]);
    let want = bfs_levels(&g, 0, Direction::Forward);
    assert_eq!(want, vec![0, 1, 2]);
    assert_eq!(par_bfs_levels(&g, 0, Direction::Forward), want);
    assert_eq!(par_bfs_levels_dobfs(&g, 0, Direction::Forward), want);
}

#[test]
fn source_with_zero_out_degree() {
    let g = CsrGraph::from_edges(5, &[(1, 0), (2, 0), (3, 4)]);
    let lv = par_bfs_levels(&g, 0, Direction::Forward);
    assert_eq!(lv[0], 0);
    assert!(lv[1..].iter().all(|&l| l == UNREACHED));
    // backward from the same sink reaches its predecessors
    let lv = par_bfs_levels_dobfs(&g, 0, Direction::Backward);
    assert_eq!(lv, vec![0, 1, 1, UNREACHED, UNREACHED]);
}

#[test]
fn frontier_exactly_at_par_threshold() {
    // star: level 1 is exactly the threshold wide (parallel path), then
    // one node narrower (sequential path) — identical answers either way.
    for width in [
        DEFAULT_PAR_FRONTIER_THRESHOLD,
        DEFAULT_PAR_FRONTIER_THRESHOLD - 1,
    ] {
        let edges: Vec<(u32, u32)> = (0..width as u32).map(|i| (0, i + 1)).collect();
        let g = CsrGraph::from_edges(width + 1, &edges);
        let want = bfs_levels(&g, 0, Direction::Forward);
        for threads in [1usize, 4] {
            let got = with_pool(threads, || par_bfs_levels(&g, 0, Direction::Forward));
            assert_eq!(got, want, "width={width} threads={threads}");
        }
    }
}

#[test]
fn bottom_up_switch_boundary() {
    // remaining must strictly exceed the threshold for bottom-up to
    // engage: sweep graph sizes that put `remaining` on each side of the
    // boundary at the switch decision, and demand sequential equality.
    for n in [
        DEFAULT_PAR_FRONTIER_THRESHOLD,
        DEFAULT_PAR_FRONTIER_THRESHOLD + 1,
        DEFAULT_PAR_FRONTIER_THRESHOLD * 2,
        DEFAULT_PAR_FRONTIER_THRESHOLD * 4,
    ] {
        let g = ring_with_chords(n as u32);
        let want = bfs_levels(&g, 0, Direction::Forward);
        let got = with_pool(2, || par_bfs_levels_dobfs(&g, 0, Direction::Forward));
        assert_eq!(got, want, "n={n}");
    }
}
