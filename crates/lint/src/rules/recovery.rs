//! Rule 4 — recovery justification: every `catch_unwind` call site must
//! carry a `// recovery:` comment stating what state the caught panic
//! leaves behind and how the caller recovers. Applies everywhere, tests
//! included — a test that absorbs a panic is asserting something about
//! recovery and must say what.

use crate::engine::{Finding, Rule, Workspace};
use crate::rules::{finding_at, Code};
use crate::source::SourceFile;

pub struct Recovery;

impl Rule for Recovery {
    fn name(&self) -> &'static str {
        "recovery"
    }

    fn description(&self) -> &'static str {
        "every catch_unwind call site carries a `// recovery:` comment"
    }

    fn check_file(&self, file: &SourceFile, _ws: &Workspace, out: &mut Vec<Finding>) {
        let code = Code::new(file);
        for i in 0..code.len() {
            if !code.is_call(i, "catch_unwind") {
                continue;
            }
            if !file.has_justification(code.line(i), "// recovery:") {
                out.push(finding_at(
                    &code,
                    i,
                    self.name(),
                    "`catch_unwind` without a `// recovery:` comment explaining what state \
                     the caught panic leaves and how the caller recovers"
                        .to_string(),
                ));
            }
        }
    }
}
