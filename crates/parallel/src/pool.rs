//! Rayon thread-pool helpers for the thread-count sweep axis.
//!
//! Figures 6 and 7 of the paper sweep the number of threads (1 → 32). The
//! data-parallel phases (Par-Trim, Par-FWBW, Par-Trim2, Par-WCC) run on
//! rayon; this module pins them to an exact thread count so a measurement
//! at "4 threads" really uses 4 threads regardless of the machine.

/// Runs `f` inside a dedicated rayon pool with exactly `num_threads`
/// threads. Panics if pool construction fails (only possible with
/// pathological resource exhaustion).
///
/// # Examples
///
/// ```
/// use rayon::prelude::*;
///
/// let sum: u64 = swscc_parallel::pool::with_pool(2, || {
///     (0..1000u64).into_par_iter().sum()
/// });
/// assert_eq!(sum, 499500);
/// ```
pub fn with_pool<R: Send>(num_threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(num_threads)
        .build()
        .expect("failed to build rayon pool")
        .install(f)
}

/// The machine's available hardware parallelism (1 if undetectable).
pub fn hardware_threads() -> usize {
    swscc_sync::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Re-raises a worker panic on the calling thread with the worker index
/// attached. String payloads are enriched with the `what`/`index` context;
/// non-string payloads (including the model checker's internal abort
/// sentinel) resume unchanged so their type-based handling still works.
pub fn propagate_worker_panic(
    what: &str,
    index: usize,
    payload: Box<dyn std::any::Any + Send>,
) -> ! {
    let msg = if let Some(s) = payload.downcast_ref::<&'static str>() {
        Some((*s).to_string())
    } else {
        payload.downcast_ref::<String>().cloned()
    };
    match msg {
        Some(m) => panic!("{what} worker {index} panicked: {m}"),
        None => std::panic::resume_unwind(payload),
    }
}

/// The default thread-count sweep for the Fig. 6/7 harnesses: powers of two
/// up to the hardware limit, always including 1.
pub fn default_thread_sweep() -> Vec<usize> {
    let hw = hardware_threads();
    let mut v = vec![1usize];
    let mut t = 2;
    while t <= hw {
        v.push(t);
        t *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn pool_uses_requested_threads() {
        let n = with_pool(3, rayon::current_num_threads);
        assert_eq!(n, 3);
    }

    #[test]
    fn pool_computes() {
        let v: Vec<u32> = with_pool(2, || (0..100u32).into_par_iter().map(|x| x * 2).collect());
        assert_eq!(v.len(), 100);
        assert_eq!(v[99], 198);
    }

    #[test]
    fn sweep_starts_at_one() {
        let s = default_thread_sweep();
        assert_eq!(s[0], 1);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn hardware_threads_positive() {
        assert!(hardware_threads() >= 1);
    }
}
