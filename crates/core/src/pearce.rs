//! Pearce's memory-efficient sequential SCC algorithm (second test oracle).
//!
//! David Pearce's imperative, iterative variant of Tarjan ("An Improved
//! Algorithm for Finding the Strongly Connected Components of a Directed
//! Graph", 2005) folds `index`, `lowlink`, and the component id into a
//! single `rindex` array: in-progress nodes carry DFS indices counting up
//! from 1, completed nodes carry component ids counting down from N-1, and
//! the bookkeeping (`index` decremented as nodes complete) maintains the
//! invariant that in-progress indices never exceed unassigned component
//! ids, so the `min` update never confuses the two. A third independent
//! implementation to cross-check Tarjan, Kosaraju, and the parallel
//! methods.

// graphview(file): oracle is backend-bound by design — it takes &CsrGraph
// in its signature; resumable DFS needs positional access into
// random-access neighbor slices.

use crate::result::SccResult;
use swscc_graph::{CsrGraph, NodeId};

const UNVISITED: u64 = 0;

/// Runs Pearce's algorithm. O(N + M) time, iterative (explicit stacks).
///
/// # Examples
///
/// ```
/// use swscc_core::pearce::pearce_scc;
/// use swscc_graph::CsrGraph;
///
/// let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]);
/// let r = pearce_scc(&g);
/// assert_eq!(r.num_components(), 2);
/// assert!(r.same_component(0, 2));
/// ```
pub fn pearce_scc(g: &CsrGraph) -> SccResult {
    let n = g.num_nodes();
    if n == 0 {
        return SccResult::from_assignment(vec![]);
    }
    let mut rindex = vec![UNVISITED; n];
    let mut root_flag = vec![false; n];
    let mut component_stack: Vec<NodeId> = Vec::new();
    // (node, next edge index) control stack.
    let mut visit_stack: Vec<(NodeId, u32)> = Vec::new();
    let mut index: u64 = 1;
    let mut c: u64 = n as u64; // component ids: n, n-1, ...; 0 stays "unvisited"

    for start in 0..n as NodeId {
        if rindex[start as usize] != UNVISITED {
            continue;
        }
        // beginVisiting(start)
        visit_stack.push((start, 0));
        root_flag[start as usize] = true;
        rindex[start as usize] = index;
        index += 1;

        while let Some(&mut (v, ref mut ei)) = visit_stack.last_mut() {
            let nbrs = g.out_neighbors(v);
            let mut descended = false;
            while (*ei as usize) < nbrs.len() {
                let w = nbrs[*ei as usize];
                *ei += 1;
                if rindex[w as usize] == UNVISITED {
                    // tree edge: descend
                    visit_stack.push((w, 0));
                    root_flag[w as usize] = true;
                    rindex[w as usize] = index;
                    index += 1;
                    descended = true;
                    break;
                } else if rindex[w as usize] < rindex[v as usize] {
                    // finishEdge: pull down rindex. Correct for both
                    // in-progress w (Tarjan lowlink) and completed w
                    // (cannot fire: completed ids exceed in-progress ones).
                    rindex[v as usize] = rindex[w as usize];
                    root_flag[v as usize] = false;
                }
            }
            if descended {
                continue;
            }
            // finishVisiting(v)
            visit_stack.pop();
            if let Some(&(parent, _)) = visit_stack.last() {
                if rindex[v as usize] < rindex[parent as usize] {
                    rindex[parent as usize] = rindex[v as usize];
                    root_flag[parent as usize] = false;
                }
            }
            if root_flag[v as usize] {
                index -= 1;
                while let Some(&w) = component_stack.last() {
                    if rindex[w as usize] >= rindex[v as usize] {
                        component_stack.pop();
                        rindex[w as usize] = c;
                        index -= 1;
                    } else {
                        break;
                    }
                }
                rindex[v as usize] = c;
                c -= 1;
            } else {
                component_stack.push(v);
            }
        }
    }
    debug_assert!(component_stack.is_empty());
    // rindex now holds component labels in (c, n]; compress to dense u32.
    let raw: Vec<u32> = rindex.iter().map(|&r| (r - c - 1) as u32).collect();
    SccResult::from_assignment(raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kosaraju::kosaraju_scc;
    use crate::tarjan::tarjan_scc;

    #[test]
    fn empty_graph() {
        assert_eq!(
            pearce_scc(&CsrGraph::from_edges(0, &[])).num_components(),
            0
        );
    }

    #[test]
    fn single_node() {
        assert_eq!(
            pearce_scc(&CsrGraph::from_edges(1, &[])).num_components(),
            1
        );
    }

    #[test]
    fn cycle_and_tail() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let r = pearce_scc(&g);
        assert_eq!(r.num_components(), 3);
        assert!(r.same_component(0, 1));
        assert!(!r.same_component(3, 4));
    }

    #[test]
    fn self_loops() {
        let g = CsrGraph::from_edges(3, &[(0, 0), (1, 1), (1, 2)]);
        assert_eq!(pearce_scc(&g).num_components(), 3);
    }

    #[test]
    fn matches_other_oracles_on_random_graphs() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(23);
        for trial in 0..30 {
            let n = rng.random_range(1..150usize);
            let m = rng.random_range(0..5 * n);
            let edges: Vec<_> = (0..m)
                .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
                .collect();
            let g = CsrGraph::from_edges(n, &edges);
            let p = pearce_scc(&g).canonical_labels();
            assert_eq!(
                p,
                tarjan_scc(&g).canonical_labels(),
                "vs tarjan, trial {trial}"
            );
            assert_eq!(
                p,
                kosaraju_scc(&g).canonical_labels(),
                "vs kosaraju, trial {trial}"
            );
        }
    }

    #[test]
    fn deep_graph_no_overflow() {
        let n = 300_000u32;
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_edges(n as usize, &edges);
        assert_eq!(pearce_scc(&g).num_components(), n as usize);
    }

    #[test]
    fn dense_clique() {
        let n = 40u32;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    edges.push((i, j));
                }
            }
        }
        let g = CsrGraph::from_edges(n as usize, &edges);
        let r = pearce_scc(&g);
        assert_eq!(r.num_components(), 1);
    }
}
