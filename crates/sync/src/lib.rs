//! # swscc-sync — the concurrency audit facade
//!
//! Every atomic, lock, and thread primitive in the workspace is reached
//! through this crate instead of `std::sync`/`std::thread`/`parking_lot`
//! directly (enforced by `cargo run -p xtask -- audit`). The facade has two
//! personalities:
//!
//! * **Normal builds** (no `--cfg model`): every item below is a *pure
//!   re-export* of the corresponding `std`/`parking_lot` item. Zero cost,
//!   identical codegen, identical semantics — the facade vanishes.
//!
//! * **Model builds** (`RUSTFLAGS=--cfg model`): the same names resolve to
//!   instrumented implementations in `model` that hand every atomic
//!   access, lock acquisition, and thread operation to an in-tree
//!   deterministic scheduler. `model::explore` then drives the *real*
//!   production code (the two-level work queue, the frontier flip, the
//!   claim sets) through thousands of distinct thread interleavings — with
//!   a weak-memory model that lets `Relaxed` loads return stale values, so
//!   missing `Release`/`Acquire` pairings become reproducible test
//!   failures instead of one-in-a-million production hangs. Failing
//!   schedules report a replayable seed and shrink to a minimal
//!   reproduction prefix.
//!
//! The design is loom/shuttle-flavored but dependency-free (the build
//! environment is offline): virtual threads are real OS threads serialized
//! by a token protocol, schedules are explored by a seeded pseudo-random
//! walk or PCT-style priority scheduling, and the memory model tracks
//! per-location modification order plus vector clocks for
//! release/acquire edges. See `model` for the exact semantics and the
//! (documented) simplifications.
//!
//! Outside a `model::explore` run, the instrumented types fall back to
//! the real primitives, so a `--cfg model` binary still behaves normally
//! until a checker session starts.

#[cfg(model)]
pub mod model;

pub mod epoch;
pub mod fault;
pub mod interrupt;

/// Atomic integer/bool types plus [`atomic::Ordering`].
///
/// Normal builds: `std::sync::atomic` re-exports. Model builds:
/// scheduler-instrumented equivalents (same API subset) with `Ordering`
/// still the `std` enum — orderings are *interpreted* by the memory model
/// rather than handed to the hardware.
pub mod atomic {
    #[cfg(not(model))]
    pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};

    #[cfg(model)]
    pub use crate::model::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};

    pub use std::sync::atomic::Ordering;
}

/// Thread primitives: `scope`, `yield_now`, `sleep`, `available_parallelism`.
///
/// Model builds replace `scope`/`yield_now`/`sleep` with virtual-thread
/// equivalents (a model `sleep` is a scheduling point, not wall-clock
/// time). `available_parallelism` is always the real one — it is a query,
/// not a synchronization operation.
pub mod thread {
    #[cfg(not(model))]
    pub use std::thread::{scope, sleep, spawn, yield_now, Scope, ScopedJoinHandle};

    #[cfg(model)]
    pub use crate::model::thread::{scope, sleep, yield_now, Scope, ScopedJoinHandle};

    pub use std::thread::{available_parallelism, Result};
}

/// Spin-loop hint. A scheduling point under the model (a spinning thread
/// must let the scheduler run somebody else), the CPU hint otherwise.
pub mod hint {
    #[cfg(not(model))]
    pub use std::hint::spin_loop;

    #[cfg(model)]
    pub use crate::model::thread::spin_loop;
}

#[cfg(not(model))]
pub use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(model)]
pub use crate::model::lock::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(test)]
mod tests {
    // Facade smoke tests: these run in BOTH personalities (the model types
    // fall back to the real primitives outside an explore() session), so a
    // plain `cargo test -p swscc-sync` and a `--cfg model` run exercise the
    // same assertions.
    use super::atomic::{AtomicU32, AtomicUsize, Ordering};
    use super::{Mutex, RwLock};

    #[test]
    fn atomics_behave_like_std() {
        let a = AtomicU32::new(5);
        assert_eq!(a.load(Ordering::Relaxed), 5);
        a.store(7, Ordering::Relaxed);
        assert_eq!(a.fetch_add(1, Ordering::Relaxed), 7);
        assert_eq!(a.fetch_sub(2, Ordering::Release), 8);
        assert_eq!(a.fetch_max(100, Ordering::Relaxed), 6);
        assert_eq!(a.fetch_min(3, Ordering::Relaxed), 100);
        assert_eq!(
            a.compare_exchange(3, 9, Ordering::Relaxed, Ordering::Relaxed),
            Ok(3)
        );
        assert_eq!(
            a.compare_exchange(3, 11, Ordering::Relaxed, Ordering::Relaxed),
            Err(9)
        );
        assert_eq!(a.into_inner(), 9);
    }

    #[test]
    fn usize_bitops() {
        let a = AtomicUsize::new(0b0001);
        assert_eq!(a.fetch_or(0b0110, Ordering::Relaxed), 0b0001);
        assert_eq!(a.fetch_and(0b0011, Ordering::Relaxed), 0b0111);
        assert_eq!(a.load(Ordering::Acquire), 0b0011);
    }

    #[test]
    fn locks_roundtrip() {
        let m = Mutex::new(vec![1u32]);
        m.lock().push(2);
        assert_eq!(m.lock().len(), 2);
        let l = RwLock::new(3u32);
        assert_eq!(*l.read(), 3);
        *l.write() = 4;
        assert_eq!(*l.read(), 4);
    }

    #[test]
    fn scoped_threads_join() {
        let total = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for i in 0..4usize {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 6);
    }
}
