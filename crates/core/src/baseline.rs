//! Baseline (Algorithm 3): the paper's tuned implementation of conventional
//! FW-BW-Trim.
//!
//! Two phases: Par-Trim over the whole graph, then the recursive FW-BW
//! kernel driven by the work queue (K = 1, §4.3). This is the algorithm
//! whose poor scaling on small-world graphs (§5, Fig. 6: "the Baseline
//! method does not scale") motivates Methods 1 and 2 — a single thread ends
//! up processing the giant SCC while the others idle.

use crate::config::SccConfig;
use crate::driver;
use crate::error::{RunGuard, SccError};
use crate::fwbw::recursive::{seed_tasks, RecurContext, Task};
use crate::instrument::{Collector, Phase, RunReport};
use crate::result::SccResult;
use crate::state::AlgoState;
use crate::trim::par_trim;
use std::sync::Arc;
use swscc_graph::CsrGraph;
use swscc_parallel::{pool::with_pool, TwoLevelQueue};

/// Paper default work-queue batch size for the Baseline (§4.3).
pub const BASELINE_K: usize = 1;

/// Runs Algorithm 3 (legacy entry point: no cancellation, panics
/// absorbed or propagated per the default [`crate::PanicPolicy`]).
pub fn baseline_scc(g: &CsrGraph, cfg: &SccConfig) -> (SccResult, RunReport) {
    baseline_scc_checked(g, cfg, &RunGuard::new())
        .expect("baseline run with a fresh guard cannot abort")
}

/// Runs Algorithm 3 under `guard`: cancellable, deadline-aware, and
/// panic-isolating (policy [`crate::SccConfig::on_panic`]).
pub fn baseline_scc_checked(
    g: &CsrGraph,
    cfg: &SccConfig,
    guard: &RunGuard,
) -> Result<(SccResult, RunReport), SccError> {
    with_pool(cfg.threads, || {
        let state =
            AlgoState::with_interrupt(g, Arc::clone(guard.interrupt()), cfg.watchdog_factor);
        let collector = Collector::new(cfg.task_log_limit);

        // Phase A: parallel trim, then a live-set compaction so the
        // seed-task scan costs O(|residue|). A panic anywhere in here is
        // dirty (partial resolutions) — only a full restart is sound.
        let phase_a = driver::catch_phase(|| {
            collector.phase(Phase::ParTrim, || (par_trim(&state), ()));
            state.compact_live(cfg.live_set_compaction);
        });
        if let Err(message) = phase_a {
            return driver::recover_full_restart(g, collector, cfg, message);
        }
        driver::check_interrupt(&state)?;

        // Phase B: recursive FW-BW over the work queue (panic isolation,
        // retry and degrade live in the queue recovery loop).
        let tasks = seed_tasks(&state, cfg);
        let initial_tasks = tasks.len();
        let queue: TwoLevelQueue<Task> = TwoLevelQueue::new(cfg.resolve_k(BASELINE_K));
        for t in tasks {
            queue.push_global(t);
        }
        let outcome = {
            let ctx = RecurContext::new(&state, &collector, cfg);
            collector.phase(Phase::RecurFwbw, || {
                match driver::run_queue_with_recovery(&queue, &ctx, cfg) {
                    Ok(res) => (res.resolved, Ok(res.stats)),
                    Err(e) => (0, Err(e)),
                }
            })
        };
        let stats = match outcome {
            Ok(stats) => stats,
            Err(driver::DriverError::Fatal(e)) => return Err(e),
            Err(driver::DriverError::DirtyRestart(message)) => {
                return driver::recover_full_restart(g, collector, cfg, message)
            }
        };
        driver::check_interrupt(&state)?;

        let report = collector.into_report(stats, initial_tasks);
        Ok((state.into_result(), report))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tarjan::tarjan_scc;

    fn check(g: &CsrGraph, threads: usize) {
        let cfg = SccConfig::with_threads(threads);
        let (r, report) = baseline_scc(g, &cfg);
        assert_eq!(
            r.canonical_labels(),
            tarjan_scc(g).canonical_labels(),
            "baseline disagrees with tarjan ({threads} threads)"
        );
        let resolved: usize = report.phase_resolved.iter().map(|(_, n)| n).sum();
        assert_eq!(
            resolved,
            g.num_nodes(),
            "phase accounting must cover all nodes"
        );
    }

    #[test]
    fn correct_on_small_graphs() {
        let g = CsrGraph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (5, 6),
            ],
        );
        for threads in [1, 2, 4] {
            check(&g, threads);
        }
    }

    #[test]
    fn correct_on_random_graphs() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(41);
        for trial in 0..10 {
            let n = rng.random_range(1..150usize);
            let m = rng.random_range(0..5 * n);
            let edges: Vec<_> = (0..m)
                .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
                .collect();
            let g = CsrGraph::from_edges(n, &edges);
            check(&g, 1 + trial % 4);
        }
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        let (r, _) = baseline_scc(&g, &SccConfig::with_threads(2));
        assert_eq!(r.num_components(), 0);
    }

    #[test]
    fn dag_fully_trimmed() {
        // On a DAG the trim phase must resolve everything; the recursive
        // phase gets no work (the Patents observation, §5).
        let g = CsrGraph::from_edges(5, &[(4, 3), (3, 2), (2, 1), (1, 0), (4, 1)]);
        let (r, report) = baseline_scc(&g, &SccConfig::with_threads(2));
        assert_eq!(r.num_components(), 5);
        assert_eq!(report.resolved_in(Phase::ParTrim), 5);
        assert_eq!(report.resolved_in(Phase::RecurFwbw), 0);
        assert_eq!(report.initial_tasks, 0);
    }

    #[test]
    fn queue_stats_populated() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        let (_, report) = baseline_scc(&g, &SccConfig::with_threads(1));
        assert!(report.queue.tasks_executed >= 1);
        assert_eq!(
            report.initial_tasks, 1,
            "one color 0 partition seeds phase 2"
        );
    }
}
