//! Service counters: the numbers behind the `stats` verb and the
//! loadgen report's server-side cross-check.
//!
//! All counters are monotone event counts bumped from handler threads
//! and read by whichever handler answers a `stats` request; the one
//! non-counter is the `stale` flag, which flips both ways (set on a
//! failed recompute, cleared by the next success). Reads are
//! point-in-time and deliberately unsynchronized with each other — a
//! stats reply is a diagnostic sample, not a transaction.

use crate::protocol::StatsReply;
use swscc_sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Shared mutable counters of one running server.
#[derive(Default)]
pub struct ServerStats {
    queries: AtomicU64,
    shed: AtomicU64,
    deadline_misses: AtomicU64,
    recomputes_ok: AtomicU64,
    recomputes_failed: AtomicU64,
    quarantined: AtomicU64,
    stale: AtomicBool,
    mutations_ok: AtomicU64,
    mutations_failed: AtomicU64,
    pending_deltas: AtomicU64,
    compactions: AtomicU64,
}

/// All counter writes funnel through here so the memory-ordering
/// contract lives at one site.
fn bump(counter: &AtomicU64) {
    // ordering: Relaxed — an independent monotone event counter; no
    // data is published through it, and readers only want a cheap
    // diagnostic sample (see module docs).
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Counter-read counterpart of [`bump`].
fn read(counter: &AtomicU64) -> u64 {
    // ordering: Relaxed — a point-in-time diagnostic sample; stats
    // replies are deliberately not a consistent cut across counters.
    counter.load(Ordering::Relaxed)
}

/// The stale flag flips both ways; same contract as the counters.
fn set_stale(flag: &AtomicBool, value: bool) {
    // ordering: Relaxed — advisory diagnostics only; the snapshot
    // hand-off itself goes through the EpochCell's lock, never this
    // flag.
    flag.store(value, Ordering::Relaxed);
}

impl ServerStats {
    /// Fresh zeroed counters.
    pub fn new() -> ServerStats {
        ServerStats::default()
    }

    /// One query admitted past the gate.
    pub fn query(&self) {
        bump(&self.queries);
    }

    /// One query shed at the admission gate.
    pub fn shed(&self) {
        bump(&self.shed);
    }

    /// One admitted query that ran out of deadline budget.
    pub fn deadline_miss(&self) {
        bump(&self.deadline_misses);
    }

    /// One recompute published a new epoch; clears the stale flag.
    pub fn recompute_ok(&self) {
        bump(&self.recomputes_ok);
        set_stale(&self.stale, false);
    }

    /// One recompute failed; the serving snapshot is now stale.
    pub fn recompute_failed(&self) {
        bump(&self.recomputes_failed);
        set_stale(&self.stale, true);
    }

    /// One connection dropped for a malformed frame or handler panic.
    pub fn quarantine(&self) {
        bump(&self.quarantined);
    }

    /// One mutation request (single or batch) published an epoch.
    pub fn mutation_ok(&self) {
        bump(&self.mutations_ok);
    }

    /// One mutation request failed; the engine heals on the next write.
    pub fn mutation_failed(&self) {
        bump(&self.mutations_failed);
    }

    /// One delta-overlay compaction completed.
    pub fn compaction(&self) {
        bump(&self.compactions);
    }

    /// Mirrors the engine's pending-delta count after a write completes,
    /// so stats replies stay lock-free against the engine mutex.
    pub fn set_pending_deltas(&self, pending: u64) {
        // ordering: Relaxed — diagnostic mirror of engine state; the
        // authoritative count lives inside the engine mutex.
        self.pending_deltas.store(pending, Ordering::Relaxed);
    }

    /// Point-in-time sample merged with the snapshot-derived fields the
    /// server fills in (`epoch`, graph dimensions, component count).
    pub fn sample(&self) -> StatsReply {
        StatsReply {
            queries: read(&self.queries),
            shed: read(&self.shed),
            deadline_misses: read(&self.deadline_misses),
            recomputes_ok: read(&self.recomputes_ok),
            recomputes_failed: read(&self.recomputes_failed),
            quarantined: read(&self.quarantined),
            mutations_ok: read(&self.mutations_ok),
            mutations_failed: read(&self.mutations_failed),
            pending_deltas: read(&self.pending_deltas),
            compactions: read(&self.compactions),
            // ordering: Relaxed — see `set_stale`.
            stale: self.stale.load(Ordering::Relaxed),
            ..StatsReply::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = ServerStats::new();
        s.query();
        s.query();
        s.shed();
        s.deadline_miss();
        s.quarantine();
        let r = s.sample();
        assert_eq!(
            (r.queries, r.shed, r.deadline_misses, r.quarantined),
            (2, 1, 1, 1)
        );
        assert!(!r.stale);
    }

    #[test]
    fn stale_tracks_last_recompute_outcome() {
        let s = ServerStats::new();
        s.recompute_failed();
        assert!(s.sample().stale, "failed recompute leaves stale snapshot");
        s.recompute_ok();
        let r = s.sample();
        assert!(!r.stale, "successful recompute clears staleness");
        assert_eq!((r.recomputes_ok, r.recomputes_failed), (1, 1));
    }
}
