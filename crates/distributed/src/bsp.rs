//! The bulk-synchronous-parallel superstep engine.
//!
//! The classic Pregel/BSP execution model: computation proceeds in global
//! supersteps; within a superstep every worker processes the messages
//! delivered to it at the previous boundary and emits messages for the
//! next one; a barrier separates supersteps; the run ends at global
//! quiescence (a superstep in which no worker sent anything).
//!
//! Workers here are OS threads (one per partition, re-spawned per
//! superstep via `std::thread::scope` — the scheduling cost is irrelevant
//! next to message volume at simulation scale), and the mailboxes are
//! double-buffered `Vec`s, so message delivery is deterministic in
//! content though not in order.

/// A worker's outgoing mail for the next superstep, bucketed by
/// destination worker.
pub struct Outbox<M> {
    boxes: Vec<Vec<M>>,
}

impl<M> Outbox<M> {
    fn new(num_workers: usize) -> Self {
        Outbox {
            boxes: (0..num_workers).map(|_| Vec::new()).collect(),
        }
    }

    /// Queues `msg` for `dest_worker`, delivered at the next boundary.
    #[inline]
    pub fn send(&mut self, dest_worker: usize, msg: M) {
        self.boxes[dest_worker].push(msg);
    }

    /// Total messages queued so far this superstep.
    pub fn sent(&self) -> usize {
        self.boxes.iter().map(Vec::len).sum()
    }
}

/// Statistics of a BSP run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BspStats {
    /// Supersteps executed (including the final quiescent one).
    pub supersteps: usize,
    /// Total messages delivered over the whole run.
    pub messages: usize,
}

/// Runs supersteps until quiescence (or `max_supersteps`, a safety cap).
///
/// * `seed` — initial mailboxes, one `Vec<M>` per worker (workers with an
///   empty seed still run in superstep 0).
/// * `step(worker, superstep, inbox, outbox)` — the per-worker kernel; it
///   may freely mutate state it owns (the algorithms in this crate keep
///   per-node state writable only by the owning worker).
///
/// Returns the run statistics.
///
/// # Examples
///
/// ```
/// use swscc_distributed::{run_supersteps, Outbox};
/// use swscc_sync::atomic::{AtomicUsize, Ordering};
///
/// // Token passing: worker w forwards a counter to w+1 until it reaches 3.
/// let hits = AtomicUsize::new(0);
/// let stats = run_supersteps(4, vec![vec![0u32], vec![], vec![], vec![]], 100,
///     |w, _step, inbox, out: &mut Outbox<u32>| {
///         for &t in inbox {
///             hits.fetch_add(1, Ordering::Relaxed);
///             if t < 3 {
///                 out.send((w + 1) % 4, t + 1);
///             }
///         }
///     });
/// assert_eq!(hits.load(Ordering::Relaxed), 4);
/// assert_eq!(stats.supersteps, 4); // one per hop; quiescence is free
/// ```
pub fn run_supersteps<M, F>(
    num_workers: usize,
    seed: Vec<Vec<M>>,
    max_supersteps: usize,
    step: F,
) -> BspStats
where
    M: Send + Sync,
    F: Fn(usize, usize, &[M], &mut Outbox<M>) + Sync,
{
    assert!(num_workers >= 1);
    assert_eq!(seed.len(), num_workers, "one seed mailbox per worker");
    let mut inboxes = seed;
    let mut stats = BspStats::default();

    while stats.supersteps < max_supersteps {
        let superstep = stats.supersteps;
        stats.supersteps += 1;
        stats.messages += inboxes.iter().map(Vec::len).sum::<usize>();

        let results: Vec<Outbox<M>> = swscc_sync::thread::scope(|s| {
            let step = &step;
            let handles: Vec<_> = inboxes
                .iter()
                .enumerate()
                .map(|(w, inbox)| {
                    s.spawn(move || {
                        let mut out = Outbox::new(num_workers);
                        step(w, superstep, inbox, &mut out);
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(w, h)| {
                    h.join().unwrap_or_else(|payload| {
                        swscc_parallel::pool::propagate_worker_panic("BSP superstep", w, payload)
                    })
                })
                .collect()
        });

        // Boundary: merge outboxes into next inboxes.
        let mut next: Vec<Vec<M>> = (0..num_workers).map(|_| Vec::new()).collect();
        let mut any = false;
        for out in results {
            for (w, msgs) in out.boxes.into_iter().enumerate() {
                any |= !msgs.is_empty();
                next[w].extend(msgs);
            }
        }
        if !any {
            break; // global quiescence
        }
        inboxes = next;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use swscc_sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn quiescence_with_no_seed() {
        let ran = AtomicUsize::new(0);
        let stats = run_supersteps(3, vec![vec![], vec![], vec![]], 10, |_, _, _: &[u8], _| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(stats.supersteps, 1, "one superstep, then quiescent");
        assert_eq!(ran.load(Ordering::Relaxed), 3, "all workers ran once");
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn messages_delivered_to_right_worker() {
        // Each worker sends its id to worker 0 in step 0; worker 0 sums.
        let sum = AtomicUsize::new(0);
        run_supersteps(
            4,
            vec![vec![()], vec![()], vec![()], vec![()]],
            10,
            |w, step, inbox, out: &mut Outbox<()>| {
                if step == 0 {
                    for _ in 0..w {
                        out.send(0, ());
                    }
                } else if w == 0 {
                    sum.fetch_add(inbox.len(), Ordering::Relaxed);
                }
            },
        );
        assert_eq!(sum.load(Ordering::Relaxed), 1 + 2 + 3);
    }

    #[test]
    fn max_supersteps_caps_runaway() {
        // ping-pong forever; the cap must stop it.
        let stats = run_supersteps(2, vec![vec![0u8], vec![]], 7, |w, _, inbox, out| {
            for &m in inbox {
                out.send(1 - w, m);
            }
        });
        assert_eq!(stats.supersteps, 7);
    }

    #[test]
    fn message_counting() {
        let stats = run_supersteps(2, vec![vec![1u8, 2], vec![3]], 10, |_, step, _, out| {
            if step == 0 {
                out.send(0, 9);
            }
        });
        // step 0 delivered 3 seeds; step 1 delivered 2 (one from each
        // worker) and sent nothing, so the run ends there.
        assert_eq!(stats.messages, 5);
        assert_eq!(stats.supersteps, 2);
    }

    #[test]
    fn single_worker() {
        let count = AtomicUsize::new(0);
        run_supersteps(1, vec![vec![10u32]], 100, |_, _, inbox, out| {
            for &m in inbox {
                count.fetch_add(1, Ordering::Relaxed);
                if m > 0 {
                    out.send(0, m - 1);
                }
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 11);
    }
}
