//! Figure 9: distribution of SCC sizes for every graph instance.
//!
//! Prints, per dataset, the log-binned SCC-size histogram (the paper's
//! log-log scatter plots rendered as rows) and the three structural
//! markers §5 reads off the figure: the count of size-1 SCCs, the single
//! giant SCC, and the in-between tail.

use swscc_bench::{print_header, scale};
use swscc_core::{detect_scc, Algorithm, SccConfig};
use swscc_graph::datasets::Dataset;

fn main() {
    print_header("Figure 9: SCC size distributions");
    let only: Option<Dataset> = std::env::args().nth(1).and_then(|s| Dataset::from_name(&s));
    for d in Dataset::all() {
        if let Some(o) = only {
            if o != d {
                continue;
            }
        }
        let g = d.load(scale(), 42);
        let (scc, _) = detect_scc(&g, Algorithm::Tarjan, &SccConfig::default());
        let h = scc.size_histogram();
        println!(
            "--- {} (N={}, {} SCCs, largest={}, size-1 SCCs={})",
            d.name(),
            g.num_nodes(),
            scc.num_components(),
            scc.largest_component_size(),
            scc.num_trivial(),
        );
        println!("    {:<12} {:>10}  (log-binned)", "scc-size ≥", "count");
        for (lo, count) in h.log_binned() {
            let bar = "#".repeat(((count as f64).log10().max(0.0) * 8.0) as usize + 1);
            println!("    {:<12} {:>10}  {}", lo, count, bar);
        }
        // §5's structural markers:
        let mids = h
            .entries()
            .iter()
            .filter(|&&(s, _)| s > 1 && s < scc.largest_component_size())
            .map(|&(_, c)| c)
            .sum::<usize>();
        println!(
            "    markers: giant={}  trivial={}  in-between SCCs={}",
            scc.largest_component_size(),
            scc.num_trivial(),
            mids
        );
        println!();
    }
}
