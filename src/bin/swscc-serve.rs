//! `swscc-serve` — the always-on SCC daemon.
//!
//! ```text
//! swscc-serve <input> (--socket PATH | --listen ADDR)
//!             [--algo NAME | --pipeline STAGES] [--threads N]
//!             [--compressed] [--scale S] [--seed N]
//!             [--max-inflight N] [--deadline-ms MS] [--max-deadline-ms MS]
//!             [--io-timeout-ms MS] [--retry-after-ms MS]
//!             [--compact-threshold N] [--residue-limit N]
//!             [--on-panic fallback|fail]
//!             [--inject-fault SITE[:NTH][:repeat]]
//! ```
//!
//! `<input>` is a SNAP edge list, a `.bin` graph, or `dataset:<name>`
//! (same as the `swscc` CLI). The daemon builds the epoch-0 snapshot
//! synchronously (a graph it cannot partition once fails startup with
//! a nonzero exit), prints the bound endpoint on stdout, and serves
//! until a client sends the `shutdown` verb.
//!
//! Exit codes: `0` clean shutdown, `1` runtime failure (unreadable
//! input, bind failure), `2` configuration error, `70` internal failure
//! (initial snapshot build died), `75` temporarily unavailable, `124`
//! deadline exceeded — the same taxonomy as `swscc`.

use std::process::ExitCode;
use std::time::Duration;
use swscc::graph::datasets::Dataset;
use swscc::graph::{io, CompressedCsr, CsrGraph};
use swscc::serve::{Endpoint, Listener, ServeConfig, ServedGraph, Server};
use swscc::sync::fault::{self, FaultKind, FaultPlan};
use swscc::{Algorithm, PanicPolicy, Pipeline, SccConfig, SccError};

const EXIT_CONFIG: u8 = 2;
const EXIT_INTERNAL: u8 = 70;
const EXIT_TIMEOUT: u8 = 124;
const EXIT_TEMPFAIL: u8 = 75;

struct CliError {
    code: u8,
    message: String,
}

impl CliError {
    fn config(message: impl Into<String>) -> CliError {
        CliError {
            code: EXIT_CONFIG,
            message: message.into(),
        }
    }

    fn runtime(message: impl Into<String>) -> CliError {
        CliError {
            code: 1,
            message: message.into(),
        }
    }
}

impl From<SccError> for CliError {
    fn from(e: SccError) -> CliError {
        let code = match e {
            SccError::DeadlineExceeded => EXIT_TIMEOUT,
            SccError::Overloaded { .. } => EXIT_TEMPFAIL,
            SccError::Cancelled
            | SccError::NonConvergence { .. }
            | SccError::WorkerPanic { .. } => EXIT_INTERNAL,
        };
        CliError {
            code,
            message: e.to_string(),
        }
    }
}

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: impl Iterator<Item = String>) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut raw = raw.peekable();
        while let Some(a) = raw.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = if raw.peek().is_some_and(|v| !v.starts_with("--")) {
                    raw.next()
                } else {
                    None
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(a);
            }
        }
        Args { positional, flags }
    }

    fn flag_value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn flag_present(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn parsed_flag<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.flag_value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::config(format!("invalid value for --{name}: {v:?}"))),
        }
    }
}

fn load_input(spec: &str, scale: f64, seed: u64) -> Result<CsrGraph, CliError> {
    if let Some(name) = spec.strip_prefix("dataset:") {
        let d = Dataset::from_name(name).ok_or_else(|| {
            CliError::config(format!(
                "unknown dataset {name:?}; available: {}",
                Dataset::all().map(|d| d.name()).join(", ")
            ))
        })?;
        Ok(d.generate(scale, seed))
    } else if spec.ends_with(".bin") {
        io::load_binary(spec).map_err(|e| CliError::runtime(format!("cannot load {spec}: {e}")))
    } else {
        io::load_edge_list(spec).map_err(|e| CliError::runtime(format!("cannot load {spec}: {e}")))
    }
}

/// Parses `--inject-fault SITE[:NTH][:repeat]` — the serve daemon's
/// extended form: a trailing `:repeat` arms a persistent fault (fires at
/// every matching hit from NTH on), which is what the CI fault soak uses
/// to keep `serve-swap` failing across many recomputes.
fn parse_fault(spec: &str) -> Result<FaultPlan, CliError> {
    let (head, repeat) = match spec.strip_suffix(":repeat") {
        Some(head) => (head, true),
        None => (spec, false),
    };
    let (site, nth) = match head.rsplit_once(':') {
        Some((site, nth)) => {
            let nth: u64 = nth
                .parse()
                .map_err(|_| CliError::config(format!("invalid --inject-fault index: {spec:?}")))?;
            (site, nth)
        }
        None => (head, 0),
    };
    if site.is_empty() {
        return Err(CliError::config("empty --inject-fault site"));
    }
    // Fault sites are &'static str; a one-shot CLI arming leaks one small
    // allocation for the process lifetime.
    let site: &'static str = Box::leak(site.to_string().into_boxed_str());
    Ok(FaultPlan {
        site: Some(site),
        nth,
        kind: FaultKind::Panic,
        repeat,
    })
}

fn usage() -> String {
    "usage: swscc-serve <input> (--socket PATH | --listen ADDR) \
     [--algo NAME | --pipeline STAGES] [--threads N] [--compressed] \
     [--scale S] [--seed N] [--max-inflight N] [--deadline-ms MS] \
     [--max-deadline-ms MS] [--io-timeout-ms MS] [--retry-after-ms MS] \
     [--compact-threshold N] [--residue-limit N] \
     [--on-panic fallback|fail] [--inject-fault SITE[:NTH][:repeat]]"
        .to_string()
}

fn run(args: &Args) -> Result<(), CliError> {
    let input = args
        .positional
        .first()
        .ok_or_else(|| CliError::config(usage()))?;
    let endpoint = match (args.flag_value("socket"), args.flag_value("listen")) {
        (Some(path), None) => Endpoint::Unix(path.into()),
        (None, Some(addr)) => Endpoint::Tcp(addr.to_string()),
        (None, None) => {
            return Err(CliError::config(
                "one of --socket PATH or --listen ADDR is required",
            ))
        }
        (Some(_), Some(_)) => {
            return Err(CliError::config(
                "--socket and --listen are mutually exclusive",
            ))
        }
    };

    let scale: f64 = args.parsed_flag("scale", 0.25)?;
    let seed: u64 = args.parsed_flag("seed", 42)?;
    let pipeline = match args.flag_value("pipeline") {
        Some(spec) => {
            if args.flag_present("algo") {
                return Err(CliError::config(
                    "--pipeline and --algo are mutually exclusive; a pipeline IS the algorithm",
                ));
            }
            Pipeline::parse(spec)
                .map_err(|e| CliError::config(format!("invalid --pipeline: {e}")))?
        }
        None => {
            let algo_name = args.flag_value("algo").unwrap_or("method2");
            let algo = Algorithm::from_name(algo_name).ok_or_else(|| {
                CliError::config(format!(
                    "unknown algorithm {algo_name:?}; available: {}",
                    Algorithm::all().map(|a| a.name()).join(", ")
                ))
            })?;
            Pipeline::stock(algo).ok_or_else(|| {
                CliError::config(format!(
                    "algorithm {algo_name:?} has no pipeline form; the daemon \
                     recomputes under fault recovery, which needs the staged engine"
                ))
            })?
        }
    };

    let mut scc = SccConfig::with_threads(
        args.parsed_flag(
            "threads",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )?,
    );
    scc.incremental_residue_limit =
        args.parsed_flag("residue-limit", scc.incremental_residue_limit)?;
    scc.on_panic = match args.flag_value("on-panic").unwrap_or("fallback") {
        "fallback" => PanicPolicy::Fallback,
        "fail" => PanicPolicy::Fail,
        v => {
            return Err(CliError::config(format!(
                "invalid --on-panic {v:?} (fallback|fail)"
            )))
        }
    };

    let config = ServeConfig {
        pipeline,
        scc,
        max_inflight: args.parsed_flag("max-inflight", 64usize)?,
        default_deadline_ms: args.parsed_flag("deadline-ms", 1_000u32)?,
        max_deadline_ms: args.parsed_flag("max-deadline-ms", 60_000u32)?,
        io_timeout: Duration::from_millis(args.parsed_flag("io-timeout-ms", 5_000u64)?),
        retry_after_ms: args.parsed_flag("retry-after-ms", 25u32)?,
        compact_threshold: args.parsed_flag("compact-threshold", 4096usize)?,
    };

    // Armed before the initial build so the soak covers the daemon's whole
    // lifetime. serve-swap/serve-frame sites never fire during startup
    // (epoch 0 is installed without a publish); a pipeline-site fault hits
    // the initial build too, where PanicPolicy decides between recovery
    // and a loud startup failure — both intended.
    let _fault_guard = match args.flag_value("inject-fault") {
        Some(spec) => {
            // A soak fires injected panics by the dozen; keep the default
            // hook's backtrace spam out of the daemon's stderr so the CI
            // artifact stays readable. Real panics still print.
            let default_hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| info.payload().downcast_ref::<&str>().copied())
                    .is_some_and(|m| m.contains(fault::INJECTED_PANIC_PREFIX));
                if !injected {
                    default_hook(info);
                }
            }));
            Some(fault::arm(parse_fault(spec)?))
        }
        None => {
            if args.flag_present("inject-fault") {
                return Err(CliError::config(
                    "--inject-fault requires SITE[:NTH][:repeat]",
                ));
            }
            None
        }
    };

    let graph = load_input(input, scale, seed)?;
    let (nodes, edges) = (graph.num_nodes(), graph.num_edges());
    let served = if args.flag_present("compressed") {
        ServedGraph::Compressed(CompressedCsr::from_csr(&graph))
    } else {
        ServedGraph::Raw(graph)
    };

    let listener = Listener::bind(&endpoint)
        .map_err(|e| CliError::runtime(format!("cannot bind {endpoint}: {e}")))?;
    let bound = listener
        .local_endpoint()
        .unwrap_or_else(|_| endpoint.clone());

    let server = Server::new(served, config)?;
    println!(
        "swscc-serve: {nodes} nodes, {edges} edges, epoch {} on {bound}",
        server.epoch()
    );
    server
        .run(listener)
        .map_err(|e| CliError::runtime(format!("serve loop failed: {e}")))?;
    println!("swscc-serve: shutdown requested, exiting");
    Ok(())
}

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    if args.flag_present("help") || args.positional.first().is_some_and(|p| p == "help") {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("swscc-serve: {}", e.message);
            ExitCode::from(e.code)
        }
    }
}
