//! The rule catalog. Each rule lives in its own module; shared
//! token-stream helpers live here.
//!
//! Rules 1–6 are the token-aware re-implementations of the old
//! line-based `xtask audit`; the rest are the semantic rules the
//! line-based pass could not express. See DESIGN.md §13 for the catalog
//! with rationale.

pub mod decode;
pub mod delta;
pub mod engine_only;
pub mod facade;
pub mod graphview;
pub mod inventory;
pub mod must_use;
pub mod pipeline;
pub mod recovery;
pub mod relaxed;
pub mod safety_tag;
pub mod socket_timeout;
pub mod unsafe_rule;

use crate::engine::Finding;
use crate::source::SourceFile;

/// A cursor over the non-trivia tokens of one file, with the lookups
/// every rule needs: text, line, and path matching that tolerates
/// arbitrary trivia (newlines, comments) *between* path segments — the
/// evasion the line-based audit could not see.
pub struct Code<'f> {
    pub file: &'f SourceFile,
    /// Indices into `file.tokens` of non-trivia tokens.
    pub idx: Vec<usize>,
}

impl<'f> Code<'f> {
    pub fn new(file: &'f SourceFile) -> Code<'f> {
        Code {
            idx: file.code_token_indices(),
            file,
        }
    }

    pub fn len(&self) -> usize {
        self.idx.len()
    }

    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    pub fn text(&self, i: usize) -> &str {
        self.file.tokens[self.idx[i]].text(&self.file.text)
    }

    pub fn kind(&self, i: usize) -> crate::lexer::TokenKind {
        self.file.tokens[self.idx[i]].kind
    }

    pub fn line(&self, i: usize) -> usize {
        self.file.tokens[self.idx[i]].line as usize
    }

    pub fn offset(&self, i: usize) -> usize {
        self.file.tokens[self.idx[i]].start
    }

    /// Trimmed text of the physical source line holding code token `i`
    /// (the baseline anchor).
    pub fn anchor(&self, i: usize) -> String {
        let line = self.line(i);
        self.file
            .text
            .lines()
            .nth(line.saturating_sub(1))
            .unwrap_or("")
            .trim()
            .to_string()
    }

    /// Does the path `segments` (e.g. `["std", "sync", "atomic"]`) start
    /// at code token `i`? Segments must be separated by `::` (two `:`
    /// punct tokens); trivia between them is already gone.
    pub fn path_at(&self, i: usize, segments: &[&str]) -> bool {
        let mut at = i;
        for (n, seg) in segments.iter().enumerate() {
            if self.text_at(at) != Some(*seg) {
                return false;
            }
            at += 1;
            if n + 1 < segments.len() {
                if self.text_at(at) != Some(":") || self.text_at(at + 1) != Some(":") {
                    return false;
                }
                at += 2;
            }
        }
        true
    }

    /// Is code token `i` the ident `name` immediately invoked — i.e.
    /// followed by `(`? (`.foo(…)`, `foo(…)`, `path::foo(…)` all match;
    /// `use x::foo;` and a bare mention don't.)
    pub fn is_call(&self, i: usize, name: &str) -> bool {
        self.text_at(i) == Some(name) && self.text_at(i + 1) == Some("(")
    }

    /// Index of the code token holding the `)` matching the `(` at
    /// `open` (which must hold `(`), or `None` if unbalanced.
    pub fn matching_paren(&self, open: usize) -> Option<usize> {
        let mut depth = 0usize;
        for j in open..self.len() {
            match self.text_at(j)? {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
        None
    }

    fn text_at(&self, i: usize) -> Option<&str> {
        (i < self.len()).then(|| self.text(i))
    }
}

/// Builds a finding anchored at code token `i` of `code`.
pub fn finding_at(code: &Code<'_>, i: usize, rule: &'static str, message: String) -> Finding {
    Finding {
        rule,
        file: code.file.rel_path.clone(),
        line: code.line(i),
        message,
        anchor: code.anchor(i),
    }
}
