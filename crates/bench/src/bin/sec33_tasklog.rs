//! §3.3: the recursive FW-BW task log and work-queue depth.
//!
//! Reproduces the paper's diagnostic on the Flickr instance:
//!
//! * **Method 1** — "the recorded maximum queue depth with single threaded
//!   execution is only six"; the first tasks each identify a tiny SCC and
//!   produce empty FW/BW partitions (the printed log with columns
//!   `SCC FW BW Remain`).
//! * **Method 2** — "at the beginning of the recursive FW-BW phase there
//!   are about 10,000 work items in the queue".

use swscc_bench::{print_header, scale};
use swscc_core::{detect_scc, Algorithm, SccConfig};
use swscc_graph::datasets::Dataset;

fn main() {
    print_header("§3.3: recursive FW-BW task log (flickr analog, 1 thread)");
    let d = std::env::args()
        .nth(1)
        .and_then(|s| Dataset::from_name(&s))
        .unwrap_or(Dataset::Flickr);
    let g = d.load(scale(), 42);
    println!(
        "dataset: {} (N={}, M={})\n",
        d.name(),
        g.num_nodes(),
        g.num_edges()
    );

    for algo in [Algorithm::Method1, Algorithm::Method2] {
        let cfg = SccConfig {
            task_log_limit: 5,
            ..SccConfig::with_threads(1)
        };
        let (_, report) = detect_scc(&g, algo, &cfg);
        println!("--- {}", algo.name());
        println!("{:>8} {:>8} {:>8} {:>8}", "SCC", "FW", "BW", "Remain");
        for e in &report.task_log {
            println!("{:>8} {:>8} {:>8} {:>8}", e.scc, e.fw, e.bw, e.remain);
        }
        println!(
            "initial work items: {}   max queue depth: {}   max outstanding: {}   tasks executed: {}",
            report.initial_tasks,
            report.queue.max_global_depth,
            report.queue.max_outstanding,
            report.queue.tasks_executed
        );
        println!();
    }
    println!("paper: Method 1 max queue depth = 6; Method 2 initial items ≈ 10,000");
}
