//@ path: crates/core/src/ok_graphview_file.rs
//! Negative fixture: a module that is backend-bound by design.

// graphview(file): this stand-in partitions raw CSR rows by design, like
// the BSP simulation — the whole file is excused once, with an argument.

pub fn partitioned(g: &CsrGraph, v: u32) -> usize {
    g.out_neighbors(v).len() + g.in_neighbors(v).len()
}
