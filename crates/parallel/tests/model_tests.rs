//! Schedule-exploration battery for the lock-free substrate (build with
//! `RUSTFLAGS="--cfg model" cargo test -p swscc-parallel --test model_tests`;
//! the whole file compiles away otherwise).
//!
//! Each test drives one production protocol through the swscc-sync model
//! checker: the real code runs unmodified (the facade swaps in
//! instrumented atomics/locks/threads), while a deterministic scheduler
//! explores thousands of distinct interleavings per protocol, generating
//! the stale Relaxed reads the C11 memory model allows. A failing schedule
//! is shrunk to a minimal prefix and reported with a replayable seed.
//!
//! The protocols under test and the claims being checked:
//!
//! 1. **Work-queue termination** (`TwoLevelQueue`): the Relaxed
//!    `outstanding` increments paired with the Release decrement /
//!    Acquire termination load guarantee every handler side effect is
//!    visible once a worker observes `outstanding == 0` — no lost tasks,
//!    no double execution, no early exit.
//! 2. **Frontier double-buffer flip** (`Frontier::advance`): the
//!    swap + chunked scoped expansion + in-order concat preserves the
//!    level-synchronous contract under every worker interleaving.
//! 3. **ClaimSet claim-once** (`ClaimSet::claim`): among racing
//!    claimants of one index exactly one wins, under all schedules and
//!    all Relaxed-read staleness the model generates.
//! 4. **LiveSet lazy-delete monotonicity** (`LiveSet`): candidate
//!    snapshots taken concurrently with kills + compaction are always a
//!    superset of the still-alive vertices (dead vertices never
//!    resurrect, live ones never vanish).
//! 5. **Cancellation delivery** (`TwoLevelQueue::run_checked`): a cancel
//!    fired at a model-scheduled point is observed at the next boundary
//!    poll — clean finish or typed abort, never a hang or a duplicated
//!    task.
//! 6. **HashBag publish/claim handshake** (`HashBag`): the claim CAS
//!    advances the cursor only after observing the index below the
//!    published length under the read lock, so racing claimants
//!    interleaved with racing producers deliver every published block to
//!    exactly one claimant — no block lost, none delivered twice, no
//!    index burned ahead of publication.
//!
//! Plus the audit-layer self-test: the *pre-fix* termination protocol
//! (Relaxed decrement + Relaxed termination load — the bug the
//! Release/Acquire pair in `workqueue.rs` exists to prevent) is seeded
//! back in, and the checker must detect it within bounded schedules.
#![cfg(model)]

use swscc_parallel::{ClaimSet, Frontier, HashBag, LiveSet, TwoLevelQueue};
use swscc_sync::atomic::{AtomicUsize, Ordering};
use swscc_sync::model::{explore, replay, Options, Strategy};

fn opts(iterations: u64, base_seed: u64) -> Options {
    Options {
        iterations,
        base_seed,
        max_steps: 100_000,
        strategy: Strategy::Random,
    }
}

/// Protocol 1: two workers drain a task tree (task 0 fans out into 1 and
/// 2 through the worker-local queue) — every task must run exactly once
/// and every handler side effect must be visible after `run` returns,
/// under every schedule of the outstanding-counter termination protocol.
#[test]
fn workqueue_termination_never_loses_side_effects() {
    let report = explore(opts(1500, 0x57CC_0001), || {
        let q = TwoLevelQueue::new(2);
        let hits: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        q.push_global(0usize);
        let stats = q.run(2, |i, w| {
            // ordering: test assertion plumbing, checked after the run's
            // scope join.
            hits[i].fetch_add(1, Ordering::Relaxed);
            if i == 0 {
                w.push(1);
                w.push(2);
            }
        });
        assert_eq!(stats.tasks_executed, 3, "a task was lost or duplicated");
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(
                h.load(Ordering::Relaxed),
                1,
                "task {i} side effect invisible after termination"
            );
        }
    });
    assert!(
        report.failure.is_none(),
        "termination protocol violated: {}",
        report.failure.unwrap()
    );
    assert!(
        report.distinct_schedules >= 1000,
        "only {} distinct schedules explored",
        report.distinct_schedules
    );
}

/// Protocol 2: the double-buffer flip. Three workers expand a six-node
/// frontier (with a shared progress counter to give schedules something
/// to race on); the next frontier must be the in-order concatenation and
/// the previous level must survive the flip intact.
#[test]
fn frontier_flip_is_level_synchronous() {
    let report = explore(opts(2000, 0x57CC_0002), || {
        let mut f = Frontier::new();
        f.seed([0u32, 1, 2, 3, 4, 5]);
        let expanded = AtomicUsize::new(0);
        let expand = |chunk: &[u32], out: &mut Vec<u32>| {
            for &v in chunk {
                // ordering: cross-thread progress counter; the total is
                // asserted after the advance joins.
                expanded.fetch_add(1, Ordering::Relaxed);
                out.push(v + 10);
            }
        };
        f.advance(3, expand);
        assert_eq!(expanded.load(Ordering::Relaxed), 6);
        assert_eq!(f.as_slice(), &[10, 11, 12, 13, 14, 15]);
        assert_eq!(f.previous(), &[0, 1, 2, 3, 4, 5]);
        // Second level: the flip must recycle the old buffer cleanly.
        f.advance(3, expand);
        assert_eq!(expanded.load(Ordering::Relaxed), 12);
        assert_eq!(f.as_slice(), &[20, 21, 22, 23, 24, 25]);
        assert_eq!(f.previous(), &[10, 11, 12, 13, 14, 15]);
    });
    assert!(
        report.failure.is_none(),
        "frontier flip violated: {}",
        report.failure.unwrap()
    );
    assert!(
        report.distinct_schedules >= 1000,
        "only {} distinct schedules explored",
        report.distinct_schedules
    );
}

/// Protocol 3: claim-once. Three threads race to claim the same two
/// indices; each index must be won exactly once, and a claimed index must
/// test as contained.
#[test]
fn claimset_claims_exactly_once() {
    let report = explore(opts(2000, 0x57CC_0003), || {
        let cs = ClaimSet::new(8);
        let wins3 = AtomicUsize::new(0);
        let wins5 = AtomicUsize::new(0);
        swscc_sync::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    // ordering: test win counters, read after the scope
                    // join.
                    if cs.claim(3) {
                        wins3.fetch_add(1, Ordering::Relaxed);
                    }
                    if cs.claim(5) {
                        wins5.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(
            wins3.load(Ordering::Relaxed),
            1,
            "index 3 not claimed exactly once"
        );
        assert_eq!(
            wins5.load(Ordering::Relaxed),
            1,
            "index 5 not claimed exactly once"
        );
        assert!(cs.contains(3) && cs.contains(5));
        assert_eq!(cs.count(), 2);
    });
    assert!(
        report.failure.is_none(),
        "claim-once violated: {}",
        report.failure.unwrap()
    );
    assert!(
        report.distinct_schedules >= 1000,
        "only {} distinct schedules explored",
        report.distinct_schedules
    );
}

/// Protocol 4: lazy-delete monotonicity. One thread kills vertices and
/// compacts the live set while two readers snapshot the candidate list;
/// because deaths are monotone, any vertex still alive after a snapshot
/// must appear in that snapshot (candidates are always a superset of the
/// alive set), and the post-join compacted list is exact.
#[test]
fn liveset_candidates_stay_superset_of_alive() {
    let report = explore(opts(1500, 0x57CC_0004), || {
        swscc_parallel::pool::with_pool(2, || {
            let ls = LiveSet::new_dense(6);
            let dead = ClaimSet::new(6);
            let snapshot_check = |ls: &LiveSet, dead: &ClaimSet| {
                let snap = ls.candidate_vec();
                for v in 0..6u32 {
                    // Alive *after* the snapshot implies alive *at* the
                    // snapshot (deaths are monotone), so v must be in it.
                    if !dead.contains(v as usize) {
                        assert!(
                            snap.contains(&v),
                            "live vertex {v} missing from candidate snapshot"
                        );
                    }
                }
            };
            swscc_sync::thread::scope(|s| {
                s.spawn(|| {
                    dead.claim(0);
                    dead.claim(3);
                    ls.compact(|v| !dead.contains(v as usize));
                    dead.claim(4);
                });
                s.spawn(|| snapshot_check(&ls, &dead));
                snapshot_check(&ls, &dead);
            });
            // Post-join: compaction ran before the final kill, so vertex 4
            // may linger as a candidate (lazy delete) but 0 and 3 are gone.
            let final_candidates = ls.candidate_vec();
            assert!(!final_candidates.contains(&0));
            assert!(!final_candidates.contains(&3));
            for v in [1u32, 2, 5] {
                assert!(final_candidates.contains(&v), "alive vertex {v} dropped");
            }
        });
    });
    assert!(
        report.failure.is_none(),
        "lazy-delete monotonicity violated: {}",
        report.failure.unwrap()
    );
    assert!(
        report.distinct_schedules >= 1000,
        "only {} distinct schedules explored",
        report.distinct_schedules
    );
}

/// Audit-layer self-test (the "known-buggy protocol" canary): the
/// pre-fix termination protocol used a Relaxed decrement and a Relaxed
/// termination load, so a worker could observe `outstanding == 0` without
/// observing the finished handler's side effects. The checker must find
/// this within bounded schedules, report a replayable seed, and the fixed
/// (Release/Acquire) protocol must pass the same exploration.
#[test]
fn detects_seeded_relaxed_termination_bug() {
    let buggy = || {
        let outstanding = AtomicUsize::new(1);
        let data = AtomicUsize::new(0);
        swscc_sync::thread::scope(|s| {
            s.spawn(|| {
                // the "handler side effect" of the last task…
                data.store(42, Ordering::Relaxed);
                // …then the BUGGY pre-fix decrement: Relaxed, so it
                // publishes nothing.
                outstanding.fetch_sub(1, Ordering::Relaxed);
            });
            s.spawn(|| {
                // BUGGY pre-fix termination check: Relaxed load.
                if outstanding.load(Ordering::Relaxed) == 0 {
                    assert_eq!(
                        data.load(Ordering::Relaxed),
                        42,
                        "termination observed but handler side effect missing"
                    );
                }
            });
        });
    };
    let report = explore(opts(2000, 0x57CC_0005), buggy);
    let failure = report
        .failure
        .expect("the seeded Relaxed-termination bug must be detected");
    assert!(
        failure.message.contains("side effect missing"),
        "unexpected failure: {failure}"
    );
    println!("seeded-bug self-test: detected as expected — {failure}");
    println!(
        "replay with: swscc_sync::model::replay({:#x}, ..) [shrunk to {} of {} choices]",
        failure.seed, failure.shrunk_len, failure.trace_len
    );
    // The reported seed replays deterministically.
    let msg = replay(failure.seed, opts(1, 0x57CC_0005), buggy)
        .expect("reported seed must reproduce the failure");
    assert!(
        msg.contains("side effect missing"),
        "replayed a different failure: {msg}"
    );

    // And the fix — the exact orderings workqueue.rs uses — is clean.
    let fixed = || {
        let outstanding = AtomicUsize::new(1);
        let data = AtomicUsize::new(0);
        swscc_sync::thread::scope(|s| {
            s.spawn(|| {
                data.store(42, Ordering::Relaxed);
                outstanding.fetch_sub(1, Ordering::Release);
            });
            s.spawn(|| {
                if outstanding.load(Ordering::Acquire) == 0 {
                    assert_eq!(data.load(Ordering::Relaxed), 42);
                }
            });
        });
    };
    let report = explore(opts(2000, 0x57CC_0006), fixed);
    assert!(
        report.failure.is_none(),
        "Release/Acquire termination flagged spuriously: {}",
        report.failure.unwrap()
    );
}

/// The PCT strategy drives the same seeded bug out too (depth-bounded
/// priority schedules are the production-recommended hunting mode).
#[test]
fn pct_strategy_finds_seeded_bug() {
    let report = explore(
        Options {
            strategy: Strategy::Pct { change_points: 3 },
            ..opts(2000, 0x57CC_0007)
        },
        || {
            let outstanding = AtomicUsize::new(1);
            let data = AtomicUsize::new(0);
            swscc_sync::thread::scope(|s| {
                s.spawn(|| {
                    data.store(7, Ordering::Relaxed);
                    outstanding.fetch_sub(1, Ordering::Relaxed);
                });
                s.spawn(|| {
                    if outstanding.load(Ordering::Relaxed) == 0 {
                        assert_eq!(data.load(Ordering::Relaxed), 7);
                    }
                });
            });
        },
    );
    assert!(report.failure.is_some(), "PCT must find the seeded bug");
}

/// Protocol 5: cancellation delivery. Two workers drain a four-task
/// queue while a sibling thread fires `Interrupt::cancel` at a
/// model-scheduled point. Under every explored interleaving the run
/// either completes all four tasks (the cancel landed after the final
/// boundary poll) or aborts with `Interrupted(Cancelled)` — never a
/// hang in the idle loop, never a half-executed or duplicated task.
///
/// Structure note: `run_checked` executes on the model's main thread
/// (it opens its own worker scope), with only the canceller spawned
/// alongside — the model runtime does not support a scope opened
/// *inside* a spawned virtual thread.
#[test]
fn workqueue_cancel_delivered_at_every_yield_point() {
    use swscc_parallel::AbortCause;
    use swscc_sync::interrupt::{AbortReason, Interrupt};

    let report = explore(opts(2000, 0x57CC_0008), || {
        let interrupt = Interrupt::new();
        let q = TwoLevelQueue::new(1);
        for i in 0..4usize {
            q.push_global(i);
        }
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        swscc_sync::thread::scope(|s| {
            s.spawn(|| interrupt.cancel());
            let outcome = q.run_checked(2, &interrupt, |i, _| {
                // ordering: execution counter asserted after the scope
                // join.
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            match outcome {
                Ok(stats) => assert_eq!(stats.tasks_executed, 4, "clean finish ran everything"),
                Err(abort) => {
                    assert!(
                        matches!(abort.cause, AbortCause::Interrupted(AbortReason::Cancelled)),
                        "wrong abort cause: {:?}",
                        abort.cause
                    );
                    assert!(abort.stats.tasks_executed <= 4);
                }
            }
        });
        for (i, h) in hits.iter().enumerate() {
            assert!(
                h.load(Ordering::Relaxed) <= 1,
                "task {i} executed more than once under cancellation"
            );
        }
    });
    assert!(
        report.failure.is_none(),
        "cancellation delivery violated: {}",
        report.failure.unwrap()
    );
    assert!(
        report.distinct_schedules >= 1000,
        "only {} distinct schedules explored",
        report.distinct_schedules
    );
}

/// Protocol 6: the hash-bag publish/claim handshake. Two producers each
/// publish two small blocks while two claimants race the cursor CAS
/// against them (claimants may legitimately observe `None` before a late
/// publication — the model drives every such overlap). After the join
/// the main thread drains the remainder; across all explored schedules
/// the union of everything claimed must be exactly the published
/// multiset — no block lost to a burned cursor index, none delivered to
/// two claimants — and the item counter must be exact.
#[test]
fn hashbag_publish_claim_delivers_exactly_once() {
    let report = explore(opts(2000, 0x57CC_0009), || {
        let bag = HashBag::new();
        let claimed: Vec<swscc_sync::Mutex<Vec<u64>>> =
            (0..2).map(|_| swscc_sync::Mutex::new(Vec::new())).collect();
        swscc_sync::thread::scope(|s| {
            for p in 0..2u64 {
                let bag = &bag;
                s.spawn(move || {
                    let mut block = vec![p * 10, p * 10 + 1];
                    bag.publish(&mut block);
                    assert!(block.is_empty(), "publish must recycle the block");
                    block.extend([p * 10 + 2, p * 10 + 3]);
                    bag.publish(&mut block);
                });
            }
            for c in &claimed {
                let bag = &bag;
                s.spawn(move || {
                    let mut mine = c.lock();
                    while let Some(block) = bag.claim() {
                        mine.extend(block.iter().copied());
                    }
                });
            }
        });
        // The claimants may have raced ahead of a producer and stopped on
        // `None`; the leftover blocks are still claimable post-join.
        let mut all: Vec<u64> = claimed.iter().flat_map(|c| c.lock().clone()).collect();
        while let Some(block) = bag.claim() {
            all.extend(block.iter().copied());
        }
        all.sort_unstable();
        assert_eq!(
            all,
            vec![0, 1, 2, 3, 10, 11, 12, 13],
            "publish/claim lost or duplicated a block"
        );
        assert_eq!(bag.len(), 8, "item counter drifted");
        assert_eq!(bag.blocks_published(), 4);
        assert!(bag.claim().is_none(), "drained bag must stay drained");
    });
    assert!(
        report.failure.is_none(),
        "hash-bag handshake violated: {}",
        report.failure.unwrap()
    );
    assert!(
        report.distinct_schedules >= 1000,
        "only {} distinct schedules explored",
        report.distinct_schedules
    );
}
