//! Epoch-versioned snapshot publication: the arc-swap-style cell behind
//! the always-on SCC service (`swscc-serve`).
//!
//! An [`EpochCell`] holds one immutable value behind an `Arc`. Readers
//! call [`EpochCell::load`] and get a cheap clone of the current
//! `Arc<Versioned<T>>` — after that they hold the snapshot outright and
//! never synchronize with anyone again, so a reader can keep answering
//! queries from epoch *n* while a writer builds and publishes epoch
//! *n + 1*. Writers call [`EpochCell::publish`], which atomically
//! replaces the slot and bumps the epoch counter by exactly one under
//! the slot lock (lost-update-free: concurrent publishers serialize, and
//! every publish gets a distinct epoch).
//!
//! # Why a mutex and not a lock-free pointer swap
//!
//! The slot is held for two `Arc` operations — nanoseconds — and the
//! only writers are recompute completions (seconds apart). A seqlock or
//! hazard-pointer scheme would buy nothing measurable here and would
//! cost the one thing this workspace actually audits: model-checkable
//! semantics. With the facade `Mutex`, `--cfg model` builds explore the
//! full reader/writer interleaving space of the *real* publication code
//! (`crates/sync/tests/epoch_model.rs` drives ≥1000 schedules through
//! it), which is how "readers never observe a torn snapshot" is checked
//! rather than asserted.
//!
//! # Tearing is structurally impossible
//!
//! The epoch number and the payload travel inside one `Arc` allocation
//! ([`Versioned`]), so there is no schedule in which a reader sees epoch
//! *n + 1* paired with payload *n*: the pairing is frozen at
//! construction, before the `Arc` is ever shared. The model protocol
//! verifies exactly this — every `(epoch, value)` pair a reader observes
//! is a pair some publisher actually constructed.
//!
//! # Fault injection
//!
//! [`EpochCell::publish`] passes through the
//! [`crate::fault::SERVE_SWAP`] fault point *before* touching the slot,
//! so a chaos schedule that kills a recompute "mid-swap" aborts the
//! publish entirely: the cell still holds the previous epoch and every
//! reader keeps being served. There is deliberately no fault point
//! between the epoch bump and the slot store — that window does not
//! exist (both happen under the lock as one assignment).

use crate::fault;
use crate::Mutex;
use std::sync::Arc;

/// An immutable value stamped with the epoch it was published under.
///
/// The stamp and the payload share one allocation, so no reader can ever
/// observe them out of sync.
#[derive(Debug)]
pub struct Versioned<T> {
    epoch: u64,
    value: T,
}

impl<T> Versioned<T> {
    /// The epoch this value was published under (0 for the initial
    /// value a cell was constructed with).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The payload.
    pub fn value(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::Deref for Versioned<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

/// Epoch-versioned publication cell: wait-free-after-load readers, one
/// serialized writer at a time. See the module docs for the protocol.
pub struct EpochCell<T> {
    slot: Mutex<Arc<Versioned<T>>>,
}

impl<T> EpochCell<T> {
    /// A cell holding `value` at epoch 0.
    pub fn new(value: T) -> EpochCell<T> {
        EpochCell {
            slot: Mutex::new(Arc::new(Versioned { epoch: 0, value })),
        }
    }

    /// The current snapshot. After this returns, the caller holds the
    /// snapshot independently: later publishes do not affect it, and it
    /// stays alive until the last holder drops it.
    pub fn load(&self) -> Arc<Versioned<T>> {
        Arc::clone(&self.slot.lock())
    }

    /// The current epoch (equivalent to `load().epoch()` without keeping
    /// the snapshot alive).
    pub fn epoch(&self) -> u64 {
        self.slot.lock().epoch
    }

    /// Atomically publishes `value` as the next epoch and returns that
    /// epoch. Concurrent publishers serialize: each gets a distinct,
    /// consecutive epoch, and the cell ends at the last one — no publish
    /// is ever lost or overwritten out of order.
    ///
    /// Passes the [`fault::SERVE_SWAP`] fault point before committing,
    /// so an injected mid-swap kill leaves the previous epoch serving.
    pub fn publish(&self, value: T) -> u64 {
        fault::point(fault::SERVE_SWAP);
        let mut slot = self.slot.lock();
        let epoch = slot.epoch + 1;
        *slot = Arc::new(Versioned { epoch, value });
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An inert armed session: every test that calls `publish` (and so
    /// hits the `serve-swap` fault point) holds one, serializing it with
    /// the genuinely-armed test below so a single-shot plan can never be
    /// consumed by the wrong test's publish.
    fn quiesce() -> fault::FaultGuard {
        fault::arm(fault::FaultPlan {
            site: Some("epoch-test-inert"),
            nth: 0,
            kind: fault::FaultKind::Panic,
            repeat: false,
        })
    }

    #[test]
    fn initial_epoch_is_zero() {
        let cell = EpochCell::new(41u32);
        let snap = cell.load();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(*snap.value(), 41);
        assert_eq!(cell.epoch(), 0);
    }

    #[test]
    fn publish_bumps_epoch_and_replaces_value() {
        let _quiet = quiesce();
        let cell = EpochCell::new(String::from("a"));
        assert_eq!(cell.publish(String::from("b")), 1);
        assert_eq!(cell.publish(String::from("c")), 2);
        let snap = cell.load();
        assert_eq!(snap.epoch(), 2);
        assert_eq!(snap.value(), "c");
    }

    #[test]
    fn loaded_snapshot_survives_later_publishes() {
        let _quiet = quiesce();
        let cell = EpochCell::new(vec![1, 2, 3]);
        let old = cell.load();
        cell.publish(vec![9]);
        assert_eq!(old.epoch(), 0);
        assert_eq!(**old, vec![1, 2, 3]);
        assert_eq!(cell.epoch(), 1);
    }

    #[test]
    fn concurrent_publishers_never_lose_an_epoch() {
        let _quiet = quiesce();
        let cell = EpochCell::new(0usize);
        crate::thread::scope(|s| {
            for t in 0..4usize {
                let cell = &cell;
                s.spawn(move || {
                    for i in 0..25 {
                        cell.publish(t * 100 + i);
                    }
                });
            }
        });
        assert_eq!(cell.epoch(), 100);
    }

    #[test]
    fn readers_observe_monotone_epochs() {
        let _quiet = quiesce();
        let cell = EpochCell::new(0u64);
        crate::thread::scope(|s| {
            let reader = {
                let cell = &cell;
                s.spawn(move || {
                    let mut last = 0;
                    for _ in 0..200 {
                        let e = cell.load().epoch();
                        assert!(e >= last, "epoch went backwards: {e} < {last}");
                        last = e;
                    }
                })
            };
            for i in 1..=50 {
                cell.publish(i);
            }
            reader.join().unwrap();
        });
    }

    #[test]
    fn injected_swap_fault_aborts_before_commit() {
        let cell = EpochCell::new(7u8);
        let _g = fault::arm(fault::FaultPlan {
            site: Some(fault::SERVE_SWAP),
            nth: 0,
            kind: fault::FaultKind::Panic,
            repeat: false,
        });
        // recovery: the publish panics at the pre-commit fault point, so
        // the slot was never touched — the cell must still serve epoch 0.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cell.publish(8)));
        assert!(r.is_err());
        assert_eq!(cell.epoch(), 0);
        assert_eq!(*cell.load().value(), 7);
    }
}
